//! The iTag engine: everything of Fig. 2 wired together.
//!
//! `ITagEngine` runs the same Algorithm-1 loop as the pure simulator, but
//! each chosen resource becomes a **published platform task**: a worker
//! claims it, submits tags after their latency, the approval policy
//! decides, money moves through escrow, user approval rates update, and
//! only approved posts reach the rfd and the storage tables. This is the
//! system path the demo exercises; the `itag-strategy` simulator is the
//! algorithm path the figures sweep.

use crate::config::{EngineConfig, EnvOverrides, ReputationMode, StorageConfig};
use crate::monitor::{MonitorSnapshot, ResourceDetail, ResourceRow};
use crate::notify::{Notification, NotificationQueue};
use crate::project::{ProjectRecord, ProjectSpec, ProjectState};
use crate::quality_mgr::{ProjectQuality, QualityManager};
use crate::records::{DatasetRecord, UserRole};
use crate::resource_mgr::ResourceManager;
use crate::tag_mgr::TagManager;
use crate::user_mgr::{DecisionDeltas, ReputationLedger, ReputationSnapshot, UserManager};
use crate::{EngineError, Result};
use itag_crowd::approval::ApprovalPolicy;
use itag_crowd::behavior::TaggerBehavior;
use itag_crowd::payment::Ledger;
use itag_crowd::platform::{CrowdPlatform, SimPlatform};
use itag_crowd::worker::WorkerPool;
use itag_model::dataset::Dataset;
use itag_model::ids::{PostId, ProjectId, ResourceId, TagId, TaggerId};
use itag_model::post::Post;
use itag_store::codec::{FxHashMap, FxHashSet};
use itag_store::table::{Entity, KeyCodec};
use itag_store::{Store, StoreOptions, TypedTable, WriteBatch};
use itag_strategy::env::EnvView;
use itag_strategy::framework::{BudgetPoint, ChooseResources};
use itag_strategy::{StrategyKind, SwitchableStrategy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Read-only [`EnvView`] over a project's live quality state.
struct RuntimeView<'a> {
    pq: &'a ProjectQuality,
    popularity: &'a [f64],
}

impl EnvView for RuntimeView<'_> {
    fn num_resources(&self) -> usize {
        self.pq.counts.len()
    }
    fn post_count(&self, r: ResourceId) -> u32 {
        self.pq.counts[r.index()]
    }
    fn instability(&self, r: ResourceId) -> f64 {
        1.0 - self.pq.qualities[r.index()]
    }
    fn quality(&self, r: ResourceId) -> f64 {
        self.pq.qualities[r.index()]
    }
    fn mean_quality(&self) -> f64 {
        self.pq.mean_quality()
    }
    fn popularity_weight(&self, r: ResourceId) -> f64 {
        self.popularity[r.index()]
    }
    fn planning_marginal(&self, r: ResourceId, k: u32) -> f64 {
        self.pq.gains.planning_marginal(r.index(), k)
    }
}

/// Live state of one campaign.
struct ProjectRuntime {
    id: ProjectId,
    provider: u32,
    name: String,
    dataset: Dataset,
    pq: ProjectQuality,
    strategy: SwitchableStrategy,
    strategy_initialized: bool,
    platform: Box<dyn CrowdPlatform + Send>,
    /// Tasks published but not yet decided (drained by `collect_once`).
    pending: FxHashSet<u64>,
    ledger: Ledger,
    approval: ApprovalPolicy,
    pay_cents: u32,
    budget_total: u32,
    budget_spent: u32,
    state: ProjectState,
    series: Vec<BudgetPoint>,
    initial_quality: f64,
    last_milestone: f64,
    tasks_approved: u64,
    tasks_rejected: u64,
    next_record: u32,
    /// Per-project RNG stream for the parallel tick: seeded from the
    /// engine seed and the project id, so a project's trajectory is the
    /// same no matter which thread (or how many threads) runs it.
    rng: StdRng,
}

/// Outcome of one `run` call. Serializable so the server can hand it to
/// remote provider sessions unchanged.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunSummary {
    /// Tasks published against the budget.
    pub issued: u32,
    /// Submissions approved (posts created).
    pub approved: u32,
    /// Submissions rejected (budget consumed, escrow refunded).
    pub rejected: u32,
    /// `q(R)` after the run.
    pub quality: f64,
    /// `q(R)` improvement since the campaign started.
    pub improvement: f64,
}

/// One buffered decision from a parallel round, ready to be merged into
/// the shared tables on the main thread (where the global post id is
/// assigned).
struct DecisionRecord {
    worker: TaggerId,
    approved: bool,
    pay: u32,
    resource: ResourceId,
    tags: Vec<TagId>,
    submitted_at: u64,
    /// `pq.counts[r]` after the post was folded in (the post's ordinal).
    posts_after: u32,
    /// Quality right after folding (approved decisions only).
    quality_after: f64,
}

/// Everything one project produced during a parallel round.
struct ProjectOutcome {
    summary: RunSummary,
    decisions: Vec<DecisionRecord>,
    notifications: Vec<Notification>,
}

/// A ticked project waiting to be merged: its outcome plus the block of
/// global post ids assigned to its approved decisions (blocks are handed
/// out in project-id order, so ids are thread-count independent).
struct MergeJob {
    project: ProjectId,
    provider: u32,
    budget_spent: u32,
    state: ProjectState,
    post_base: u64,
    outcome: ProjectOutcome,
}

/// What one project's round ended as, in the merge phase's output.
enum RoundResult {
    /// The tick itself failed; nothing was staged or committed.
    TickFailed(EngineError),
    /// The merge ran: the committed summary plus the round's
    /// notifications, or the merge/staging error (no notifications then).
    Merged(Result<RunSummary>, Vec<Notification>),
    /// The project's frame was folded into a pending cross-project group
    /// commit; its outcome lands in [`GroupCommit::outcomes`] when the
    /// group flushes and is resolved in `run_all_with`'s assembly loop.
    Deferred,
}

/// One resource's accumulated effects over a parallel round.
struct ResourceRound {
    orig: Arc<crate::records::ResourceRecord>,
    approved: u32,
    last_posts: u32,
    last_quality: f64,
}

// The staging/merge half of a parallel round is determinism-contracted:
// the bytes it commits must be a pure function of (dataset, seed, order),
// never of wall-clock time. The repo lint rejects `Instant::now()` /
// `SystemTime::now()` inside this fence.
// lint: determinism

/// Stages one project's post, resource-count and quality-snapshot ops into
/// a fresh batch. Runs on a worker thread. The managers are stateless
/// views over the store; staging reads only this project's resource rows,
/// which nothing writes until this project's own merge — so staging is
/// safe to overlap with the merger committing *earlier* projects (the
/// round pipeline), and reads through [`ResourceManager::get_arc`], so it
/// never clones or decodes a row the entity cache already holds.
///
/// Post rows are staged per decision (each is a distinct key), but
/// resource records — post count, index position and quality snapshot —
/// are folded to **one final row per touched resource**: the intermediate
/// counts a batch would stage are overwritten inside the same atomic
/// commit anyway, so skipping them produces identical stored state for a
/// fraction of the encode and apply work. Finals are staged in
/// resource-id order (deterministic merge).
fn stage_project_effects(
    job: &mut MergeJob,
    tags: &TagManager,
    resources: &ResourceManager,
) -> Result<WriteBatch> {
    let mut batch = WriteBatch::with_capacity(job.outcome.decisions.len() * 3 + 8);
    let mut next_id = job.post_base;
    let mut touched: FxHashMap<u32, ResourceRound> = FxHashMap::default();
    for d in job.outcome.decisions.iter_mut() {
        if !d.approved {
            continue;
        }
        let post = Post::new(
            PostId(next_id),
            d.resource,
            d.worker,
            std::mem::take(&mut d.tags),
            d.posts_after,
            d.submitted_at,
        );
        next_id += 1;
        tags.stage_post(&mut batch, job.project, &post)?;
        let agg = match touched.entry(d.resource.0) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => v.insert(ResourceRound {
                orig: resources.get_arc(job.project, d.resource)?,
                approved: 0,
                last_posts: 0,
                last_quality: 0.0,
            }),
        };
        agg.approved += 1;
        agg.last_posts = d.posts_after;
        agg.last_quality = d.quality_after;
    }
    let mut rounds: Vec<(u32, ResourceRound)> = touched.into_iter().collect();
    rounds.sort_unstable_by_key(|(rid, _)| *rid);
    for (rid, agg) in rounds {
        let mut record = (*agg.orig).clone();
        let old_posts = record.posts;
        record.posts += agg.approved;
        debug_assert_eq!(
            record.posts, agg.last_posts,
            "record count and live count must agree"
        );
        let _ = rid;
        record.quality = agg.last_quality;
        resources.stage_finalize_posts(&mut batch, old_posts, record)?;
    }
    Ok(batch)
}

/// Hands a ticked project its block of global post ids off the shared
/// counter. Called in strict project-id order — the pipeline's ordered
/// handoff, or the barrier path's serial loop — so the blocks are
/// identical at every thread count and pipeline depth. Failed ticks
/// consume no ids. (`Relaxed` suffices: calls are already serialized by
/// the caller, and the final read happens after the scope joins.)
fn assign_post_base(
    next_post: &AtomicU64,
    id: u32,
    rt: &ProjectRuntime,
    outcome: Result<ProjectOutcome>,
) -> Result<MergeJob> {
    let outcome = outcome?;
    let approved = outcome.decisions.iter().filter(|d| d.approved).count() as u64;
    let post_base = next_post.load(Ordering::Relaxed);
    next_post.store(post_base + approved, Ordering::Relaxed);
    Ok(MergeJob {
        project: ProjectId(id),
        provider: rt.provider,
        budget_spent: rt.budget_spent,
        state: rt.state,
        post_base,
        outcome,
    })
}

/// One project's share of a (possibly grouped) commit: its summary and
/// notifications ride with the deltas the reputation ledger applies once
/// the frame holding the project's ops has durably committed.
struct GroupMember {
    project: u32,
    summary: RunSummary,
    deltas: DecisionDeltas,
    notifications: Vec<Notification>,
}

/// Stages one ticked project's **complete** frame: the round's staged
/// effects batch, the per-worker reputation deltas, and the project row.
/// The project row rides in the same frame as the round's effects:
/// budget/state can never run ahead of (or behind) the posts they paid
/// for. Shared by both commit schedules — per-project frames and the
/// cross-project group commit stage byte-identical ops through this one
/// function, so the two paths cannot drift.
///
/// On error the staged-record overlay may hold this project's partial
/// records; both callers clear (or flush-then-clear) it before the next
/// read.
fn stage_member_frame(
    users: &UserManager,
    projects: &TypedTable<ProjectRecord>,
    job: MergeJob,
    deltas: DecisionDeltas,
    batch: Result<WriteBatch>,
) -> std::result::Result<(WriteBatch, GroupMember), EngineError> {
    let MergeJob {
        project,
        provider,
        budget_spent,
        state,
        outcome,
        ..
    } = job;
    let ProjectOutcome {
        summary,
        notifications,
        ..
    } = outcome;
    let mut batch = batch?;
    users.stage_round_deltas(&mut batch, provider, &deltas)?;
    let mut record = projects
        .get(&project)?
        .ok_or(EngineError::UnknownProject(project))?;
    record.budget_spent = budget_spent;
    record.state = state;
    projects.stage_upsert_owned(&mut batch, record)?;
    Ok((
        batch,
        GroupMember {
            project: project.0,
            summary,
            deltas,
            notifications,
        },
    ))
}

/// The serial half of one project's round under the per-project commit
/// schedule (`commit_batch <= 1`): stage the complete frame, commit it,
/// and hand back the round's notifications. Runs in project-id order —
/// on the dedicated merger thread when the round pipeline is on, on the
/// calling thread otherwise — so the stored bytes are identical either
/// way. Once (and only once) the frame has committed, the same deltas
/// are applied to the incremental reputation ledger, so the ledger can
/// never run ahead of the durable tagger table — a failed merge leaves
/// both untouched.
fn merge_ticked_project(
    users: &UserManager,
    projects: &TypedTable<ProjectRecord>,
    store: &Store,
    ledger: Option<&ReputationLedger>,
    job: MergeJob,
    deltas: DecisionDeltas,
    batch: Result<WriteBatch>,
) -> (Result<RunSummary>, Vec<Notification>) {
    let merged =
        stage_member_frame(users, projects, job, deltas, batch).and_then(|(batch, member)| {
            store.commit(batch)?;
            Ok(member)
        });
    // The staged-record overlay only has to outlive the batch. Clearing
    // on the failure path matters just as much: records staged into a
    // batch that never committed must not keep answering reads.
    users.clear_staged();
    match merged {
        Ok(m) => {
            if let Some(ledger) = ledger {
                ledger.apply(&m.deltas);
            }
            (Ok(m.summary), m.notifications)
        }
        Err(e) => (Err(e), Vec::new()),
    }
}

/// Accumulator of the cross-project group commit (`commit_batch >= 2`):
/// the merger folds consecutive projects' frames into one [`WriteBatch`]
/// and commits them as **one** WAL frame + fsync. Ops are appended in
/// project-id order (the merge phase's calling order), so the applied
/// key/value sequence — and therefore every stored byte — is identical
/// to the per-project schedule; only the WAL framing (k projects per
/// LSN) differs. The staged-record overlay is *not* cleared between
/// members: a later member's delta staging must read the earlier
/// members' still-uncommitted user rows (read-your-own-writes), exactly
/// as it would have read them post-commit under the per-project
/// schedule.
#[derive(Default)]
struct GroupCommit {
    batch: WriteBatch,
    members: Vec<GroupMember>,
    /// Flush-resolved outcomes keyed by project id; `run_all_with`'s
    /// assembly loop consumes these for every `RoundResult::Deferred`.
    outcomes: FxHashMap<u32, (Result<RunSummary>, Vec<Notification>)>,
}

/// Folds one ticked project into the pending group, flushing when the
/// member budget or the byte ceiling is reached. A member that fails to
/// stage must not poison the projects already folded into the pending
/// frame: they are flushed (committed) first, which also clears the
/// overlay of the failed member's partial records.
#[allow(clippy::too_many_arguments)]
fn merge_into_group(
    users: &UserManager,
    projects: &TypedTable<ProjectRecord>,
    store: &Store,
    ledger: Option<&ReputationLedger>,
    budget: usize,
    group: &mut GroupCommit,
    job: MergeJob,
    deltas: DecisionDeltas,
    batch: Result<WriteBatch>,
) -> RoundResult {
    match stage_member_frame(users, projects, job, deltas, batch) {
        Ok((frame, member)) => {
            group.batch.append(frame);
            group.members.push(member);
            if group.members.len() >= budget
                || group.batch.ops_bytes() >= crate::config::COMMIT_BATCH_MAX_BYTES
            {
                flush_group(users, store, ledger, group);
            }
            RoundResult::Deferred
        }
        Err(e) => {
            flush_group(users, store, ledger, group);
            RoundResult::Merged(Err(e), Vec::new())
        }
    }
}

/// Commits the pending group as one frame and resolves every member's
/// outcome. On success each member's deltas are applied to the ledger in
/// member (project-id) order — deltas commute, so the folded counters
/// match the per-project schedule exactly. On a commit error the whole
/// frame is gone: the first member carries the root cause, the rest a
/// derived broken-commit error (storage faults either way, so the server
/// degrades exactly as it would for a failed per-project commit).
fn flush_group(
    users: &UserManager,
    store: &Store,
    ledger: Option<&ReputationLedger>,
    group: &mut GroupCommit,
) {
    let batch = std::mem::take(&mut group.batch);
    let members = std::mem::take(&mut group.members);
    let committed = if members.is_empty() {
        Ok(())
    } else {
        store.commit(batch)
    };
    // Cleared even with no members pending: the caller may have a failed
    // member's partial records sitting in the overlay.
    users.clear_staged();
    match committed {
        Ok(()) => {
            for m in members {
                if let Some(ledger) = ledger {
                    ledger.apply(&m.deltas);
                }
                group
                    .outcomes
                    .insert(m.project, (Ok(m.summary), m.notifications));
            }
        }
        Err(e) => {
            let derived = format!("round lost: its group commit failed: {e}");
            let mut root = Some(EngineError::Store(e));
            for m in members {
                let err = root.take().unwrap_or_else(|| {
                    EngineError::Store(itag_store::StoreError::Broken(derived.clone()))
                });
                group.outcomes.insert(m.project, (Err(err), Vec::new()));
            }
        }
    }
}

// lint: end determinism

/// Runs the full Algorithm-1 loop for one project using only project-local
/// state plus the round-start [`ReputationSnapshot`], buffering every
/// effect that touches shared tables. Mirrors [`ITagEngine::run`] step for
/// step; the merge in [`ITagEngine::run_all_with`] replays the buffers in
/// project-id order, so the stored bytes are identical across thread
/// counts. Reading reputation from the snapshot (never the live tables)
/// is what lets the merger commit earlier projects while this tick is
/// still running without breaking that contract.
fn tick_campaign(
    rt: &mut ProjectRuntime,
    config: &EngineConfig,
    rep: &ReputationSnapshot,
    max_tasks: u32,
) -> Result<ProjectOutcome> {
    let mut decisions = Vec::new();
    let mut notifications = Vec::new();
    // (approved, rejected) per worker in this round, layered over the
    // round-start snapshot for reliability gating: the gate sees the
    // pre-round base plus this project's own decisions — independent of
    // the thread count and of how far the merger has advanced.
    let mut overlay: FxHashMap<u32, (u32, u32)> = FxHashMap::default();

    let mut issued = 0u32;
    let mut approved_total = 0u32;
    let mut rejected_total = 0u32;

    loop {
        let want = config
            .batch_size
            .min((max_tasks - issued) as usize)
            .min((rt.budget_total - rt.budget_spent) as usize);
        if want == 0 {
            break;
        }

        if !rt.strategy_initialized {
            let view = RuntimeView {
                pq: &rt.pq,
                popularity: &rt.dataset.popularity,
            };
            rt.strategy.init(&view, rt.budget_total, &mut rt.rng);
            rt.strategy_initialized = true;
        }
        let chosen = {
            let view = RuntimeView {
                pq: &rt.pq,
                popularity: &rt.dataset.popularity,
            };
            rt.strategy.choose(&view, want, &mut rt.rng)
        };
        if chosen.is_empty() {
            break; // strategy has nothing left
        }
        for &r in &chosen {
            let task = rt.platform.publish(rt.id, r, rt.pay_cents);
            rt.ledger.escrow(rt.id, rt.pay_cents as u64);
            rt.pending.insert(task.0);
        }
        rt.budget_spent += chosen.len() as u32;
        issued += chosen.len() as u32;

        let mut ticks = 0u32;
        while !rt.pending.is_empty() && ticks < config.max_ticks_per_batch {
            ticks += 1;
            let results = rt.platform.step(&rt.dataset, &mut rt.rng);
            for result in results {
                rt.pending.remove(&result.task.0);
                let i = result.resource.index();
                let approve = rt.approval.decide(&result.tags, rt.pq.states[i].rfd());
                let (worker, pay) = rt.platform.decide(result.task, approve)?;
                let counts = overlay.entry(worker.0).or_insert((0, 0));
                let mut posts_after = 0u32;
                let mut quality_after = 0.0f64;
                if approve {
                    counts.0 += 1;
                    rt.ledger.release(rt.id, worker, pay as u64)?;
                    quality_after = rt.pq.apply_post(&rt.dataset, result.resource, &result.tags);
                    posts_after = rt.pq.counts[i];
                    rt.tasks_approved += 1;
                    approved_total += 1;
                } else {
                    counts.1 += 1;
                    rt.ledger.refund(rt.id, pay as u64)?;
                    rt.tasks_rejected += 1;
                    rejected_total += 1;
                }

                if config.enforce_reliability && !approve {
                    let (extra_a, extra_r) = overlay[&worker.0];
                    if !rep.is_reliable_with(worker.0, extra_a, extra_r) {
                        rt.platform.ban_worker(worker);
                    }
                }

                let view = RuntimeView {
                    pq: &rt.pq,
                    popularity: &rt.dataset.popularity,
                };
                rt.strategy.notify_update(&view, result.resource);

                notifications.push(Notification::TagDecided {
                    project: rt.id,
                    resource: result.resource,
                    tagger: worker,
                    approved: approve,
                });
                decisions.push(DecisionRecord {
                    worker,
                    approved: approve,
                    pay,
                    resource: result.resource,
                    tags: result.tags,
                    submitted_at: result.submitted_at,
                    posts_after,
                    quality_after,
                });
            }

            // Feedback: series point + quality milestones, once per tick
            // (the cadence of `collect_once`).
            if rt.budget_spent >= rt.next_record {
                rt.series.push(BudgetPoint {
                    spent: rt.budget_spent,
                    mean_quality: rt.pq.mean_quality(),
                });
                rt.next_record += config.record_every.max(1);
            }
            let q = rt.pq.mean_quality();
            while q >= rt.last_milestone + 0.1 {
                rt.last_milestone += 0.1;
                notifications.push(Notification::QualityMilestone {
                    project: rt.id,
                    quality: q,
                    milestone: rt.last_milestone,
                });
            }
        }
        if !rt.pending.is_empty() {
            break; // platform starvation — same bail-out as `run`
        }
    }

    // Close the series at the exact final spend.
    if rt.series.last().map(|p| p.spent) != Some(rt.budget_spent) {
        rt.series.push(BudgetPoint {
            spent: rt.budget_spent,
            mean_quality: rt.pq.mean_quality(),
        });
    }
    if rt.budget_spent >= rt.budget_total {
        rt.state = ProjectState::Completed;
        notifications.push(Notification::BudgetExhausted { project: rt.id });
    }

    let quality = rt.pq.mean_quality();
    Ok(ProjectOutcome {
        summary: RunSummary {
            issued,
            approved: approved_total,
            rejected: rejected_total,
            quality,
            improvement: quality - rt.initial_quality,
        },
        decisions,
        notifications,
    })
}

/// Version of the core record encodings stored in [`crate::tables::META`].
/// serbin is not self-describing, so any change to a stored record's
/// layout must bump this — an old database then fails cleanly at open
/// instead of mis-decoding. History: v2 folded the quality column into
/// [`crate::records::ResourceRecord`] and retired the quality table.
pub const SCHEMA_VERSION: u32 = 2;

const SCHEMA_KEY: &[u8] = b"schema_version";

/// The iTag system.
pub struct ITagEngine {
    store: Arc<Store>,
    resources: ResourceManager,
    tags: TagManager,
    users: UserManager,
    projects: TypedTable<ProjectRecord>,
    datasets: TypedTable<DatasetRecord>,
    runtimes: FxHashMap<u32, ProjectRuntime>,
    config: EngineConfig,
    /// Environment overrides, validated once at construction — garbage in
    /// `ITAG_THREADS`/`ITAG_PIPELINE`/`ITAG_NO_CACHE`/`ITAG_REPUTATION`
    /// fails `new` loudly.
    env: EnvOverrides,
    /// The incremental reputation ledger (`ITAG_REPUTATION=ledger`, the
    /// default): built from the tagger table once at open/recovery, kept
    /// current by the merger applying each committed round's deltas.
    /// `None` in rescan mode, and when reliability enforcement is off
    /// (the gate is never read, so nothing needs maintaining).
    reputation: Option<ReputationLedger>,
    rng: StdRng,
    notifications: NotificationQueue,
    next_post_id: u64,
    next_project_id: u32,
    next_provider_id: u32,
    next_tagger_id: u32,
}

impl ITagEngine {
    /// Opens (or creates) the engine per `config`. On a durable store this
    /// runs recovery; projects found on disk can then be resumed with
    /// [`ITagEngine::resume_project`].
    pub fn new(config: EngineConfig) -> Result<Self> {
        let env = EnvOverrides::from_env().map_err(EngineError::Config)?;
        // The engine owns its store, so the validated `ITAG_NO_CACHE`
        // override is applied here through `StoreOptions` — one parser,
        // one decision (the store's own env fallback only matters for
        // raw `Store` users).
        let entity_cache = config.entity_cache && !env.no_cache.unwrap_or(false);
        let store = Arc::new(match &config.storage {
            StorageConfig::InMemory => Store::in_memory_with(StoreOptions {
                entity_cache,
                ..StoreOptions::default()
            }),
            StorageConfig::Durable {
                dir,
                durability,
                sync_policy,
                checkpoint_every,
            } => Store::open(
                dir,
                StoreOptions {
                    durability: *durability,
                    sync_policy: *sync_policy,
                    checkpoint_every: *checkpoint_every,
                    entity_cache,
                    ..StoreOptions::default()
                },
            )?,
        });

        Self::check_schema(&store)?;

        let resources = ResourceManager::new(Arc::clone(&store));
        let tags = TagManager::new(Arc::clone(&store));
        let users = UserManager::new(Arc::clone(&store));
        let projects: TypedTable<ProjectRecord> = TypedTable::new(Arc::clone(&store));
        let datasets: TypedTable<DatasetRecord> = TypedTable::new(Arc::clone(&store));

        let next_post_id = tags.last_post_id().map(|p| p.0 + 1).unwrap_or(0);
        let next_project_id = store
            .last_key(ProjectRecord::TABLE)
            .and_then(|k| ProjectId::decode(&k).ok())
            .map(|p| p.0 + 1)
            .unwrap_or(0);
        let next_provider_id = users
            .providers()?
            .iter()
            .map(|u| u.id + 1)
            .max()
            .unwrap_or(0);
        let next_tagger_id = users.taggers()?.iter().map(|u| u.id + 1).max().unwrap_or(0);

        // Build-once for the incremental schedule: one tagger-range scan
        // here (which after a crash is the recovery rebuild — the WAL
        // replay restored the table, this restores the ledger), then the
        // merge phase's deltas keep it current; no per-round rescans.
        let reputation_mode = resolve_reputation_mode(&config, &env);
        let reputation = if config.enforce_reliability && reputation_mode == ReputationMode::Ledger
        {
            Some(users.reputation_ledger()?)
        } else {
            None
        };

        let rng = StdRng::seed_from_u64(config.seed);
        Ok(ITagEngine {
            store,
            resources,
            tags,
            users,
            projects,
            datasets,
            runtimes: FxHashMap::default(),
            config,
            env,
            reputation,
            rng,
            notifications: NotificationQueue::default(),
            next_post_id,
            next_project_id,
            next_provider_id,
            next_tagger_id,
        })
    }

    /// Verifies (or, on a fresh store, stamps) the record-schema version.
    /// A database written by a binary with a different record layout is
    /// rejected here with a clear message instead of mis-decoding later.
    fn check_schema(store: &Store) -> Result<()> {
        use itag_store::StoreError;
        match store.get(crate::tables::META, SCHEMA_KEY)? {
            Some(bytes) => {
                let found = <[u8; 4]>::try_from(bytes.as_ref())
                    .map(u32::from_be_bytes)
                    .map_err(|_| StoreError::Corrupt("unreadable schema-version row".into()))?;
                if found != SCHEMA_VERSION {
                    return Err(EngineError::Store(StoreError::Corrupt(format!(
                        "database schema v{found} does not match this binary's \
                         v{SCHEMA_VERSION}; no migration exists — re-ingest or \
                         use a matching build"
                    ))));
                }
                Ok(())
            }
            None if store.table_ids().is_empty() => {
                store.put(
                    crate::tables::META,
                    SCHEMA_KEY.to_vec(),
                    SCHEMA_VERSION.to_be_bytes().to_vec(),
                )?;
                Ok(())
            }
            None => Err(EngineError::Store(StoreError::Corrupt(format!(
                "database predates schema versioning (pre-v{SCHEMA_VERSION}); \
                 no migration exists — re-ingest or use a matching build"
            )))),
        }
    }

    /// Registers a provider account and returns its id.
    pub fn register_provider(&mut self, name: &str) -> Result<u32> {
        let id = self.next_provider_id;
        self.next_provider_id += 1;
        self.users.register(UserRole::Provider, id, name)?;
        Ok(id)
    }

    /// Registers a tagger account and returns its id — the server-side
    /// half of a remote tagger session's sign-up. Ids continue after both
    /// earlier registrations and [`ITagEngine::seed_taggers`] ranges.
    pub fn register_tagger(&mut self, name: &str) -> Result<u32> {
        let id = self.next_tagger_id;
        self.next_tagger_id += 1;
        self.users.register(UserRole::Tagger, id, name)?;
        Ok(id)
    }

    /// The Add-Project flow (Fig. 4): validates, persists, builds the
    /// runtime, and returns the new project id.
    pub fn add_project(
        &mut self,
        provider: u32,
        spec: ProjectSpec,
        dataset: Dataset,
    ) -> Result<ProjectId> {
        spec.validate().map_err(EngineError::InvalidDataset)?;
        validate_dataset(&dataset)?;

        let id = ProjectId(self.next_project_id);
        self.next_project_id += 1;

        let counts = dataset.initial_counts();
        let pq = ProjectQuality::from_dataset(&dataset, self.config.metric);
        self.resources
            .upload(id, &dataset.resources, &counts, &pq.qualities)?;
        self.tags.store_dictionary(&dataset.dictionary)?;
        let record = ProjectRecord {
            id,
            provider,
            spec: spec.clone(),
            state: ProjectState::Running,
            budget_total: spec.budget,
            budget_spent: 0,
            created_at: 0,
        };
        // Project row + dataset row commit atomically: a crash between the
        // two can no longer leave a project without its dataset.
        let mut batch = WriteBatch::new();
        self.projects.stage_upsert_cached(&mut batch, &record)?;
        self.datasets.stage_upsert(
            &mut batch,
            &DatasetRecord {
                project: id,
                dataset: dataset.clone(),
            },
        )?;
        self.store.commit(batch)?;

        let runtime = self.build_runtime(record, dataset, pq, None)?;
        self.runtimes.insert(id.0, runtime);
        Ok(id)
    }

    /// Like [`ITagEngine::add_project`], but with a caller-supplied
    /// platform — e.g. [`itag_crowd::audience::ManualPlatform`] for the
    /// demo's live audience mode, or an adapter to a real marketplace.
    pub fn add_project_with_platform(
        &mut self,
        provider: u32,
        spec: ProjectSpec,
        dataset: Dataset,
        platform: Box<dyn CrowdPlatform + Send>,
    ) -> Result<ProjectId> {
        spec.validate().map_err(EngineError::InvalidDataset)?;
        validate_dataset(&dataset)?;
        let id = ProjectId(self.next_project_id);
        self.next_project_id += 1;
        let counts = dataset.initial_counts();
        let pq = ProjectQuality::from_dataset(&dataset, self.config.metric);
        self.resources
            .upload(id, &dataset.resources, &counts, &pq.qualities)?;
        self.tags.store_dictionary(&dataset.dictionary)?;
        let record = ProjectRecord {
            id,
            provider,
            spec: spec.clone(),
            state: ProjectState::Running,
            budget_total: spec.budget,
            budget_spent: 0,
            created_at: 0,
        };
        let mut batch = WriteBatch::new();
        self.projects.stage_upsert_cached(&mut batch, &record)?;
        self.datasets.stage_upsert(
            &mut batch,
            &DatasetRecord {
                project: id,
                dataset: dataset.clone(),
            },
        )?;
        self.store.commit(batch)?;
        let runtime = self.build_runtime(record, dataset, pq, Some(platform))?;
        self.runtimes.insert(id.0, runtime);
        Ok(id)
    }

    /// Typed access to a project's platform (for audience submissions or
    /// adapter-specific control). Fails if the platform is of a different
    /// concrete type.
    pub fn platform_mut<P: CrowdPlatform + 'static>(
        &mut self,
        project: ProjectId,
    ) -> Result<&mut P> {
        let rt = self
            .runtimes
            .get_mut(&project.0)
            .ok_or(EngineError::UnknownProject(project))?;
        rt.platform
            .as_any_mut()
            .downcast_mut::<P>()
            .ok_or(EngineError::BadProjectState {
                project,
                state: "backed by a different platform type",
            })
    }

    /// Claimable tasks of an audience-platform project, oldest first —
    /// the server-side half of a remote tagger's task-pull (Fig. 8's
    /// tagging screen). Fails like [`ITagEngine::platform_mut`] when the
    /// project is not backed by a [`ManualPlatform`].
    pub fn audience_open_tasks(
        &mut self,
        project: ProjectId,
        limit: usize,
    ) -> Result<Vec<(u64, ResourceId)>> {
        use itag_crowd::audience::ManualPlatform;
        let platform: &mut ManualPlatform = self.platform_mut(project)?;
        let ids: Vec<_> = platform.open_task_ids().take(limit).collect();
        Ok(ids
            .into_iter()
            .filter_map(|t| platform.task(t).map(|task| (t.0, task.resource)))
            .collect())
    }

    /// A remote tagger claims `task` on an audience-platform project and
    /// submits `tags`; the decision lands at the next
    /// [`ITagEngine::collect_once`].
    pub fn audience_submit(
        &mut self,
        project: ProjectId,
        task: u64,
        tagger: TaggerId,
        tags: Vec<TagId>,
    ) -> Result<()> {
        use itag_crowd::audience::ManualPlatform;
        let platform: &mut ManualPlatform = self.platform_mut(project)?;
        platform.submit(itag_crowd::task::TaskId(task), tagger, tags)?;
        Ok(())
    }

    /// Rebuilds the runtime of a persisted project after a restart,
    /// replaying stored campaign posts onto the dataset's initial state.
    /// Platform worker session state (in-flight tasks) is not persisted —
    /// open tasks at crash time were never charged posts, matching the
    /// at-most-once semantics of the budget.
    pub fn resume_project(&mut self, id: ProjectId) -> Result<()> {
        let record = self
            .projects
            .get(&id)?
            .ok_or(EngineError::UnknownProject(id))?;
        let mut dataset = self
            .datasets
            .get(&id)?
            .ok_or(EngineError::UnknownProject(id))?
            .dataset;
        // Rebuild skipped serde fields.
        dataset.dictionary.rebuild_index();
        for latent in &mut dataset.latent {
            latent.rebuild_sampler();
        }

        let pq = ProjectQuality::from_dataset(&dataset, self.config.metric);
        let mut runtime = self.build_runtime(record, dataset, pq, None)?;
        for post in self.tags.all_posts(id)? {
            let r = post.resource;
            let q = runtime.pq.apply_post(&runtime.dataset, r, &post.tags);
            let _ = q;
            runtime.tasks_approved += 1;
        }
        runtime.initial_quality = runtime
            .series
            .first()
            .map(|p| p.mean_quality)
            .unwrap_or_else(|| runtime.pq.mean_quality());
        self.runtimes.insert(id.0, runtime);
        Ok(())
    }

    fn build_runtime(
        &mut self,
        record: ProjectRecord,
        dataset: Dataset,
        pq: ProjectQuality,
        platform: Option<Box<dyn CrowdPlatform + Send>>,
    ) -> Result<ProjectRuntime> {
        let platform = match platform {
            Some(p) => p,
            None => {
                let s = self.config.spammer_fraction.clamp(0.0, 1.0);
                let pool = WorkerPool::from_mix(
                    self.config.workers,
                    &[
                        (TaggerBehavior::casual(), 0.60 * (1.0 - s)),
                        (TaggerBehavior::diligent(), 0.25 * (1.0 - s)),
                        (TaggerBehavior::sloppy(), 0.15 * (1.0 - s)),
                        (TaggerBehavior::spammer(), s),
                    ],
                    &mut self.rng,
                );
                Box::new(SimPlatform::new(record.spec.platform, pool))
            }
        };
        let initial_quality = pq.mean_quality();
        let series = vec![BudgetPoint {
            spent: record.budget_spent,
            mean_quality: initial_quality,
        }];
        Ok(ProjectRuntime {
            id: record.id,
            provider: record.provider,
            name: record.spec.name.clone(),
            dataset,
            pq,
            strategy: SwitchableStrategy::new(record.spec.strategy.build()),
            strategy_initialized: false,
            platform,
            pending: FxHashSet::default(),
            ledger: Ledger::new(),
            approval: record.spec.approval,
            pay_cents: record.spec.pay_per_task_cents,
            budget_total: record.budget_total,
            budget_spent: record.budget_spent,
            state: record.state,
            series,
            initial_quality,
            last_milestone: initial_quality,
            tasks_approved: 0,
            tasks_rejected: 0,
            next_record: record.budget_spent + self.config.record_every.max(1),
            rng: StdRng::seed_from_u64(
                self.config.seed
                    ^ 0x51_7c_c1_b7_27_22_0a_95u64.wrapping_mul(record.id.0 as u64 + 1),
            ),
        })
    }

    /// Step 4 of Algorithm 1 as a standalone operation: CHOOSERESOURCES()
    /// picks up to `want` resources and their tagging tasks are published
    /// (escrowing pay, consuming budget). Returns the number published.
    ///
    /// `run` composes this with [`ITagEngine::collect_once`]; audience-
    /// platform projects call the two halves separately, submitting
    /// between them.
    pub fn publish_batch(&mut self, project: ProjectId, want: usize) -> Result<u32> {
        let rt = self
            .runtimes
            .get_mut(&project.0)
            .ok_or(EngineError::UnknownProject(project))?;
        if rt.state != ProjectState::Running {
            return Err(EngineError::BadProjectState {
                project,
                state: rt.state.label(),
            });
        }
        let want = want
            .min((rt.budget_total - rt.budget_spent) as usize)
            .min(self.config.batch_size.max(1) * 16); // sanity bound
        if want == 0 {
            return Ok(0);
        }

        if !rt.strategy_initialized {
            let view = RuntimeView {
                pq: &rt.pq,
                popularity: &rt.dataset.popularity,
            };
            rt.strategy.init(&view, rt.budget_total, &mut self.rng);
            rt.strategy_initialized = true;
        }
        let chosen = {
            let view = RuntimeView {
                pq: &rt.pq,
                popularity: &rt.dataset.popularity,
            };
            rt.strategy.choose(&view, want, &mut self.rng)
        };
        for &r in &chosen {
            let task = rt.platform.publish(rt.id, r, rt.pay_cents);
            rt.ledger.escrow(rt.id, rt.pay_cents as u64);
            rt.pending.insert(task.0);
        }
        rt.budget_spent += chosen.len() as u32;
        Ok(chosen.len() as u32)
    }

    /// Steps 5–6 of Algorithm 1 for one platform tick: collect finished
    /// submissions, decide approval, move money, fold approved posts into
    /// the statistics (UPDATE()), and emit feedback. Returns
    /// `(approved, rejected)` for this tick.
    pub fn collect_once(&mut self, project: ProjectId) -> Result<(u32, u32)> {
        let out = self.collect_once_inner(project);
        if out.is_err() {
            // A failed collection may have left records staged for a batch
            // that will never commit; they must not answer later reads.
            self.users.clear_staged();
        }
        out
    }

    fn collect_once_inner(&mut self, project: ProjectId) -> Result<(u32, u32)> {
        let rt = self
            .runtimes
            .get_mut(&project.0)
            .ok_or(EngineError::UnknownProject(project))?;
        let mut approved = 0u32;
        let mut rejected = 0u32;

        let results = rt.platform.step(&rt.dataset, &mut self.rng);
        for result in results {
            rt.pending.remove(&result.task.0);
            let i = result.resource.index();
            let approve = rt.approval.decide(&result.tags, rt.pq.states[i].rfd());
            let (worker, pay) = rt.platform.decide(result.task, approve)?;

            let mut batch = WriteBatch::new();
            self.users
                .stage_decision(&mut batch, rt.provider, worker.0, approve, pay)?;

            if approve {
                rt.ledger.release(rt.id, worker, pay as u64)?;
                let post = Post::new(
                    PostId(self.next_post_id),
                    result.resource,
                    worker,
                    result.tags.clone(),
                    rt.pq.counts[i] + 1,
                    result.submitted_at,
                );
                self.next_post_id += 1;
                self.tags.stage_post(&mut batch, rt.id, &post)?;
                let q = rt.pq.apply_post(&rt.dataset, result.resource, &post.tags);
                // The resource row carries count + quality together; the
                // fetched record moves straight into the staged batch.
                let mut rec = self.resources.get(rt.id, result.resource)?;
                rec.quality = q;
                let old_posts = rec.posts;
                rec.posts += 1;
                self.resources
                    .stage_finalize_posts(&mut batch, old_posts, rec)?;
                rt.tasks_approved += 1;
                approved += 1;
            } else {
                rt.ledger.refund(rt.id, pay as u64)?;
                rt.tasks_rejected += 1;
                rejected += 1;
            }
            self.store.commit(batch)?;
            // The decision is durable: the staged overlay has served its
            // read-your-own-writes purpose, and the reputation ledger
            // (when maintained) absorbs the same delta the table just did.
            self.users.clear_staged();
            if let Some(ledger) = self.reputation.as_mut() {
                ledger.bump(worker.0, approve as u32, !approve as u32);
            }

            // Reliability enforcement: a tagger whose received-approval
            // rate fell through the gate stops receiving assignments.
            if self.config.enforce_reliability && !approve && !self.users.is_reliable(worker.0)? {
                rt.platform.ban_worker(worker);
            }

            // The strategy observes every decision (MU re-queues the
            // resource with its refreshed instability).
            let view = RuntimeView {
                pq: &rt.pq,
                popularity: &rt.dataset.popularity,
            };
            rt.strategy.notify_update(&view, result.resource);

            self.notifications.push(Notification::TagDecided {
                project: rt.id,
                resource: result.resource,
                tagger: worker,
                approved: approve,
            });
        }

        // Feedback: series point + quality milestones.
        if rt.budget_spent >= rt.next_record {
            rt.series.push(BudgetPoint {
                spent: rt.budget_spent,
                mean_quality: rt.pq.mean_quality(),
            });
            rt.next_record += self.config.record_every.max(1);
        }
        let q = rt.pq.mean_quality();
        while q >= rt.last_milestone + 0.1 {
            rt.last_milestone += 0.1;
            self.notifications.push(Notification::QualityMilestone {
                project: rt.id,
                quality: q,
                milestone: rt.last_milestone,
            });
        }
        Ok((approved, rejected))
    }

    /// Tasks published but not yet decided.
    pub fn pending_tasks(&self, project: ProjectId) -> Result<usize> {
        Ok(self
            .runtimes
            .get(&project.0)
            .ok_or(EngineError::UnknownProject(project))?
            .pending
            .len())
    }

    /// Runs Algorithm 1 for up to `max_tasks` tasks (bounded by the
    /// remaining budget) through the crowdsourcing platform.
    // lint: allow(panic-path)
    pub fn run(&mut self, project: ProjectId, max_tasks: u32) -> Result<RunSummary> {
        {
            let rt = self
                .runtimes
                .get(&project.0)
                .ok_or(EngineError::UnknownProject(project))?;
            if rt.state != ProjectState::Running {
                return Err(EngineError::BadProjectState {
                    project,
                    state: rt.state.label(),
                });
            }
        }

        let mut issued = 0u32;
        let mut approved = 0u32;
        let mut rejected = 0u32;

        loop {
            let want = self.config.batch_size.min((max_tasks - issued) as usize);
            if want == 0 {
                break;
            }
            let published = self.publish_batch(project, want.max(1))?;
            if published == 0 {
                break; // budget exhausted or strategy has nothing left
            }
            issued += published;

            let mut ticks = 0u32;
            while self.pending_tasks(project)? > 0 && ticks < self.config.max_ticks_per_batch {
                ticks += 1;
                let (a, r) = self.collect_once(project)?;
                approved += a;
                rejected += r;
            }
            if self.pending_tasks(project)? > 0 {
                // Platform starvation: the published work cannot complete
                // (e.g. the reliability gate banned the whole pool after a
                // spam-poisoned consensus — the death spiral the
                // `gatekeeping` figure studies). Stop issuing; the stalled
                // tasks stay visible as open_tasks and their pay as held
                // escrow.
                break;
            }
        }

        let rt = self.runtimes.get_mut(&project.0).expect("checked at entry");
        // Close the series at the exact final spend.
        if rt.series.last().map(|p| p.spent) != Some(rt.budget_spent) {
            rt.series.push(BudgetPoint {
                spent: rt.budget_spent,
                mean_quality: rt.pq.mean_quality(),
            });
        }

        if rt.budget_spent >= rt.budget_total {
            rt.state = ProjectState::Completed;
            self.notifications
                .push(Notification::BudgetExhausted { project: rt.id });
        }

        // Persist the project row (budget/state) — read-modify-write
        // staged as one batch.
        let (budget_spent, state) = (rt.budget_spent, rt.state);
        self.projects
            .update(&project, |record| {
                record.budget_spent = budget_spent;
                record.state = state;
            })?
            .ok_or(EngineError::UnknownProject(project))?;

        let rt = self.runtimes.get(&project.0).expect("checked at entry");
        let quality = rt.pq.mean_quality();
        Ok(RunSummary {
            issued,
            approved,
            rejected,
            quality,
            improvement: quality - rt.initial_quality,
        })
    }

    /// Ticks every `Running` project concurrently — Algorithm 1 per
    /// project, up to `max_tasks` tasks each — across `threads` scoped
    /// worker threads, with the round pipeline at the resolved depth
    /// ([`ITagEngine::resolved_pipeline_depth`]). Non-running projects
    /// are skipped. Returns `(project, summary)` pairs in project-id
    /// order.
    pub fn run_all_on(
        &mut self,
        max_tasks: u32,
        threads: usize,
    ) -> Result<Vec<(ProjectId, RunSummary)>> {
        let depth = self.resolved_pipeline_depth();
        self.run_all_with(max_tasks, threads, depth)
    }

    /// [`ITagEngine::run_all_on`] with an explicit pipeline depth.
    ///
    /// `pipeline_depth = 0` runs the barrier schedule: tick every project,
    /// then stage every project, then merge+commit every project — each
    /// phase completes before the next begins. `pipeline_depth = n ≥ 1`
    /// overlaps them: worker threads tick and stage projects while a
    /// dedicated merger thread drains staged projects **in project-id
    /// order**, at most `n` projects behind the workers (back-pressure).
    /// The serial merge of project `k` thus runs concurrently with the
    /// ticking/staging of projects `> k` instead of stalling every thread
    /// at a round barrier.
    ///
    /// Determinism contract: each project consumes its own RNG stream;
    /// ticks read cross-project reputation from a **round-start snapshot**
    /// (never the live tables, which the merger may already be advancing);
    /// post-id blocks are assigned in project-id order at the pipeline's
    /// ordered handoff; staging reads only its own project's rows, which
    /// only its own (later) merge writes; and the merger commits one frame
    /// per project in project-id order. Monitor snapshots, ledgers and
    /// stored bytes are therefore **identical for every thread count and
    /// every pipeline depth**, including depth 0.
    pub fn run_all_with(
        &mut self,
        max_tasks: u32,
        threads: usize,
        pipeline_depth: usize,
    ) -> Result<Vec<(ProjectId, RunSummary)>> {
        let threads = threads.max(1);
        let mut ids: Vec<u32> = self
            .runtimes
            .iter()
            .filter(|(_, rt)| rt.state == ProjectState::Running)
            .map(|(id, _)| *id)
            .collect();
        ids.sort_unstable();
        let work: Vec<(u32, ProjectRuntime)> = ids
            .iter()
            .map(|id| (*id, self.runtimes.remove(id).expect("listed above")))
            .collect();
        if work.is_empty() {
            return Ok(Vec::new());
        }

        // The snapshot's only consumer is the reliability gate inside
        // `tick_campaign`, itself gated on `enforce_reliability` — skip
        // building one entirely when the gate is off. With the gate on,
        // ledger mode hands out the engine-held round-start view in O(1)
        // (an `Arc` of the maintained counters); rescan mode rebuilds it
        // from the tagger table — O(registered taggers) — as the
        // reference schedule.
        let rep = if self.config.enforce_reliability {
            match &self.reputation {
                Some(ledger) => ledger.snapshot(),
                None => self.users.reputation_snapshot()?,
            }
        } else {
            self.users.empty_reputation_snapshot()
        };
        // Cross-project group commit: budget > 1 folds consecutive merge
        // frames into one WAL frame + fsync. The mutex is uncontended —
        // only the merge phase touches it, and merges are serial — but it
        // makes the closure set `Sync` for the scoped threads.
        let commit_budget = self.resolved_commit_batch();
        let group = parking_lot::Mutex::named("core.engine.group_commit", GroupCommit::default());
        let results = {
            let rep = &rep;
            let config = &self.config;
            let tags_mgr = &self.tags;
            let resources_mgr = &self.resources;
            let users = &self.users;
            let ledger = self.reputation.as_ref();
            let projects_tbl = &self.projects;
            let store: &Store = &self.store;
            let next_post = &AtomicU64::new(self.next_post_id);
            let group = &group;

            // The four phases of one project's round. `tick` and `stage`
            // run on whichever worker claimed the project; `sequence` runs
            // in project-id order (the ordered handoff); `merge` runs in
            // project-id order on the merger thread (pipelined) or the
            // calling thread (barrier path).
            let tick = |_: usize, (id, mut rt): (u32, ProjectRuntime)| {
                let outcome = tick_campaign(&mut rt, config, rep, max_tasks);
                (id, rt, outcome)
            };
            let sequence =
                |_: usize, (id, rt, outcome): (u32, ProjectRuntime, Result<ProjectOutcome>)| {
                    let job = assign_post_base(next_post, id, &rt, outcome);
                    (id, rt, job)
                };
            let stage = |_: usize, (id, rt, job): (u32, ProjectRuntime, Result<MergeJob>)| {
                let staged = job.map(|mut job| {
                    // Fold the round's decisions into per-worker deltas on
                    // the worker thread (the parallel half of the user
                    // accounting); the merger just stages and applies them
                    // — the delta handoff rides the pipeline with the
                    // staged batch.
                    let deltas = DecisionDeltas::from_decisions(
                        job.outcome
                            .decisions
                            .iter()
                            .map(|d| (d.worker.0, d.approved, d.pay)),
                    );
                    let batch = stage_project_effects(&mut job, tags_mgr, resources_mgr);
                    (job, deltas, batch)
                });
                (id, rt, staged)
            };
            type Staged = (
                u32,
                ProjectRuntime,
                Result<(MergeJob, DecisionDeltas, Result<WriteBatch>)>,
            );
            let merge = |_: usize, (id, rt, staged): Staged| {
                let round = match staged {
                    Ok((job, deltas, batch)) => {
                        if commit_budget > 1 {
                            merge_into_group(
                                users,
                                projects_tbl,
                                store,
                                ledger,
                                commit_budget,
                                &mut group.lock(),
                                job,
                                deltas,
                                batch,
                            )
                        } else {
                            let (summary, notes) = merge_ticked_project(
                                users,
                                projects_tbl,
                                store,
                                ledger,
                                job,
                                deltas,
                                batch,
                            );
                            RoundResult::Merged(summary, notes)
                        }
                    }
                    Err(e) => RoundResult::TickFailed(e),
                };
                (id, rt, round)
            };

            let results: Vec<(u32, ProjectRuntime, RoundResult)> = if pipeline_depth == 0 {
                // Barrier schedule (the pipeline-off reference): each
                // phase completes for every project before the next one
                // starts; merges run on this thread.
                let ticked = itag_crowd::parallel::scoped_map(work, threads, tick);
                let sequenced: Vec<_> = ticked
                    .into_iter()
                    .enumerate()
                    .map(|(i, t)| sequence(i, t))
                    .collect();
                let staged = itag_crowd::parallel::scoped_map(sequenced, threads, stage);
                staged
                    .into_iter()
                    .enumerate()
                    .map(|(i, s)| merge(i, s))
                    .collect()
            } else {
                itag_crowd::parallel::pipelined_map(
                    work,
                    threads,
                    pipeline_depth,
                    tick,
                    sequence,
                    stage,
                    merge,
                )
            };
            // Flush the tail group — the last `< budget` projects of the
            // round, still pending after the final merge call.
            flush_group(users, store, ledger, &mut group.lock());
            self.next_post_id = next_post.load(Ordering::Relaxed);
            results
        };
        let mut group_outcomes = std::mem::take(&mut group.lock().outcomes);

        // The round is over and its snapshot is gone: fold the committed
        // deltas into the ledger's counters (in place — no snapshot holds
        // the map any more), so the next round starts from the exact
        // state a rescan would rebuild.
        drop(rep);
        if let Some(ledger) = self.reputation.as_mut() {
            ledger.fold_pending();
        }

        // Reinsert the runtimes (their RNG streams carry into the next
        // round) and fold the per-project results in project-id order.
        // Error precedence matches the pre-pipeline code: the first tick
        // error in project order wins over the first merge error.
        let mut summaries = Vec::with_capacity(results.len());
        let mut tick_err: Option<EngineError> = None;
        let mut merge_err: Option<EngineError> = None;
        for (id, rt, round) in results {
            self.runtimes.insert(id, rt);
            let round = match round {
                // Resolve a deferred (group-committed) project to its
                // flush outcome; every deferred member was resolved by
                // its group's flush or the tail flush above, so a miss
                // is a harness bug — surfaced as an error, never a
                // panic (dashboards ride on this path).
                RoundResult::Deferred => match group_outcomes.remove(&id) {
                    Some((outcome, notes)) => RoundResult::Merged(outcome, notes),
                    None => RoundResult::Merged(
                        Err(EngineError::Config(format!(
                            "project {id}: group-commit outcome missing"
                        ))),
                        Vec::new(),
                    ),
                },
                other => other,
            };
            match round {
                RoundResult::TickFailed(e) => tick_err = tick_err.or(Some(e)),
                RoundResult::Merged(Ok(s), notes) => {
                    for n in notes {
                        self.notifications.push(n);
                    }
                    summaries.push((ProjectId(id), s));
                }
                RoundResult::Merged(Err(e), _) => merge_err = merge_err.or(Some(e)),
                RoundResult::Deferred => unreachable!("resolved above"),
            }
        }
        match tick_err.or(merge_err) {
            Some(e) => Err(e),
            None => Ok(summaries),
        }
    }

    /// [`ITagEngine::run_all_on`] with the configured thread count
    /// ([`EngineConfig::threads`], else `ITAG_THREADS`, else auto).
    pub fn run_all(&mut self, max_tasks: u32) -> Result<Vec<(ProjectId, RunSummary)>> {
        let threads = self.resolved_threads();
        self.run_all_on(max_tasks, threads)
    }

    /// Thread count the parallel tick will use (a throughput knob only —
    /// results do not depend on it). `EngineConfig::threads`, else the
    /// `ITAG_THREADS` override validated at construction, else the
    /// machine's available parallelism capped at 8.
    pub fn resolved_threads(&self) -> usize {
        if self.config.threads > 0 {
            return self.config.threads;
        }
        if let Some(n) = self.env.threads {
            return n;
        }
        std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(1)
    }

    /// Round-pipeline depth [`ITagEngine::run_all`] will use (a
    /// throughput knob only — results do not depend on it; `0` = the
    /// barrier schedule). `EngineConfig::pipeline_depth`, else the
    /// `ITAG_PIPELINE` override validated at construction, else
    /// [`crate::config::DEFAULT_PIPELINE_DEPTH`].
    pub fn resolved_pipeline_depth(&self) -> usize {
        if let Some(d) = self.config.pipeline_depth {
            return d;
        }
        if let Some(d) = self.env.pipeline_depth {
            return d;
        }
        crate::config::DEFAULT_PIPELINE_DEPTH
    }

    /// Group-commit budget [`ITagEngine::run_all`] will use: up to this
    /// many projects' merge frames are folded into a single store commit
    /// (one WAL append + fsync) per flush, also bounded by
    /// [`crate::config::COMMIT_BATCH_MAX_BYTES`]. `0` and `1` both mean
    /// the per-project legacy schedule. Purely a throughput knob —
    /// results are bit-identical at every budget.
    /// `EngineConfig::commit_batch`, else the `ITAG_COMMIT_BATCH`
    /// override validated at construction, else
    /// [`crate::config::DEFAULT_COMMIT_BATCH`].
    pub fn resolved_commit_batch(&self) -> usize {
        if let Some(n) = self.config.commit_batch {
            return n;
        }
        if let Some(n) = self.env.commit_batch {
            return n;
        }
        crate::config::DEFAULT_COMMIT_BATCH
    }

    /// Reputation-snapshot schedule this engine runs
    /// ([`EngineConfig::reputation`], else the `ITAG_REPUTATION` override
    /// validated at construction, else
    /// [`crate::config::DEFAULT_REPUTATION_MODE`]). Purely a throughput
    /// knob: results are bit-identical in either mode.
    pub fn resolved_reputation_mode(&self) -> ReputationMode {
        resolve_reputation_mode(&self.config, &self.env)
    }

    /// Registers a population of tagger accounts in bulk (ids
    /// `start..start + count`) — the scale harness for scenarios where
    /// the registered population dwarfs any round's worker set. Existing
    /// records are left untouched. Zero-decision taggers answer the
    /// reliability gate exactly like unknown ones, so neither reputation
    /// schedule tracks them — only the rescan schedule pays to skip them
    /// every round.
    pub fn seed_taggers(&mut self, start: u32, count: u32) -> Result<()> {
        self.users
            .register_bulk(UserRole::Tagger, start, count, "tagger-")?;
        self.next_tagger_id = self.next_tagger_id.max(start.saturating_add(count));
        Ok(())
    }

    /// Worker payouts of a project's ledger, sorted by worker id.
    pub fn worker_balances(&self, project: ProjectId) -> Result<Vec<(u32, u64)>> {
        Ok(self
            .runtimes
            .get(&project.0)
            .ok_or(EngineError::UnknownProject(project))?
            .ledger
            .worker_balances())
    }

    /// Order-independent digest of every persisted table (see
    /// [`itag_store::Store::content_checksum`]).
    pub fn store_checksum(&self) -> u64 {
        self.store.content_checksum()
    }

    /// A shared handle to the engine's store. The server uses it for
    /// lock-free epoch probes ([`itag_store::Store::epoch`]) to decide
    /// whether a cached [`crate::snapshot::EngineSnapshot`] is current
    /// without taking the engine lock.
    pub fn store_handle(&self) -> Arc<Store> {
        Arc::clone(&self.store)
    }

    /// Captures a frozen analytics view: the store snapshot, the O(1)
    /// reputation snapshot, and one [`crate::snapshot::ProjectDigest`]
    /// per live runtime. The engine is borrowed (`&self`) for the whole
    /// capture and rounds require `&mut self`, so the captured store
    /// epoch and the digests describe the same round boundary. Cost is
    /// one shard-directory clone plus O(projects) digests — no table is
    /// copied ([`itag_store::Store::read_snapshot`]).
    pub fn snapshot(&self) -> crate::snapshot::EngineSnapshot {
        let store = self.store.read_snapshot();
        let reputation = match &self.reputation {
            Some(ledger) => ledger.snapshot(),
            None => self.users.empty_reputation_snapshot(),
        };
        let mut projects = std::collections::BTreeMap::new();
        for rt in self.runtimes.values() {
            let (escrowed, paid, refunded) = rt.ledger.totals();
            projects.insert(
                rt.id.0,
                crate::snapshot::ProjectDigest {
                    project: rt.id,
                    provider: rt.provider,
                    name: rt.name.clone(),
                    state: rt.state.label().to_string(),
                    strategy: rt.strategy.active_name().to_string(),
                    quality_mean: rt.pq.mean_quality(),
                    quality_initial: rt.initial_quality,
                    oracle_quality: rt.pq.oracle_mean_quality(&rt.dataset),
                    budget_total: rt.budget_total,
                    budget_spent: rt.budget_spent,
                    open_tasks: rt.platform.open_tasks(),
                    tasks_approved: rt.tasks_approved,
                    tasks_rejected: rt.tasks_rejected,
                    banned_taggers: rt.platform.banned_count(),
                    escrowed: escrowed - paid - refunded,
                    paid,
                    refunded,
                    pay_per_task_cents: rt.pay_cents,
                    series: rt.series.clone(),
                },
            );
        }
        crate::snapshot::EngineSnapshot::assemble(store, reputation, projects)
    }

    /// The Fig. 3 / Fig. 5 view of a project.
    pub fn monitor(&self, project: ProjectId) -> Result<MonitorSnapshot> {
        let rt = self
            .runtimes
            .get(&project.0)
            .ok_or(EngineError::UnknownProject(project))?;
        let (escrowed, paid, refunded) = rt.ledger.totals();
        let rows = self
            .resources
            .list(project)?
            .into_iter()
            .map(|r| ResourceRow {
                id: r.resource.id,
                uri: r.resource.uri,
                posts: rt.pq.counts[r.resource.id.index()],
                quality: rt.pq.qualities[r.resource.id.index()],
                stopped: r.stopped,
            })
            .collect();
        Ok(MonitorSnapshot {
            project,
            name: rt.name.clone(),
            state: rt.state.label().to_string(),
            strategy: rt.strategy.active_name().to_string(),
            quality_mean: rt.pq.mean_quality(),
            quality_initial: rt.initial_quality,
            oracle_quality: rt.pq.oracle_mean_quality(&rt.dataset),
            budget_total: rt.budget_total,
            budget_spent: rt.budget_spent,
            open_tasks: rt.platform.open_tasks(),
            tasks_approved: rt.tasks_approved,
            tasks_rejected: rt.tasks_rejected,
            banned_taggers: rt.platform.banned_count(),
            escrowed: escrowed - paid - refunded,
            paid,
            refunded,
            quality_summary: itag_quality::aggregate::QualitySummary::compute(&rt.pq.qualities),
            series: rt.series.clone(),
            rows,
        })
    }

    /// The Fig. 6 single-resource drill-down.
    pub fn resource_detail(&self, project: ProjectId, r: ResourceId) -> Result<ResourceDetail> {
        let rt = self
            .runtimes
            .get(&project.0)
            .ok_or(EngineError::UnknownProject(project))?;
        let record = self.resources.get(project, r)?;
        let state = &rt.pq.states[r.index()];
        let mut tag_counts: Vec<(itag_model::ids::TagId, u32)> = state.rfd().iter().collect();
        tag_counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let top_tags = tag_counts
            .into_iter()
            .take(20)
            .map(|(t, c)| (self.tags.text(t), c))
            .collect();
        Ok(ResourceDetail {
            id: r,
            uri: record.resource.uri,
            description: record.resource.description,
            posts: rt.pq.counts[r.index()],
            quality: rt.pq.qualities[r.index()],
            top_tags,
            series: state.series().to_vec(),
        })
    }

    /// The Promote button.
    pub fn promote(&mut self, project: ProjectId, r: ResourceId) -> Result<()> {
        let rt = self
            .runtimes
            .get_mut(&project.0)
            .ok_or(EngineError::UnknownProject(project))?;
        rt.strategy.promote(r);
        Ok(())
    }

    /// The per-resource Stop button (persisted).
    pub fn stop_resource(&mut self, project: ProjectId, r: ResourceId) -> Result<()> {
        let rt = self
            .runtimes
            .get_mut(&project.0)
            .ok_or(EngineError::UnknownProject(project))?;
        rt.strategy.stop_resource(r);
        self.resources.set_stopped(project, r, true)?;
        Ok(())
    }

    /// Re-allow a stopped resource.
    pub fn resume_resource(&mut self, project: ProjectId, r: ResourceId) -> Result<()> {
        let rt = self
            .runtimes
            .get_mut(&project.0)
            .ok_or(EngineError::UnknownProject(project))?;
        rt.strategy.resume_resource(r);
        self.resources.set_stopped(project, r, false)?;
        Ok(())
    }

    /// Mid-run strategy change (Fig. 5's strategy selector).
    pub fn switch_strategy(&mut self, project: ProjectId, kind: StrategyKind) -> Result<()> {
        let rt = self
            .runtimes
            .get_mut(&project.0)
            .ok_or(EngineError::UnknownProject(project))?;
        rt.strategy.switch_to(kind.build());
        rt.strategy_initialized = true; // SwitchableStrategy re-inits lazily
        self.projects.update(&project, |record| {
            record.spec.strategy = kind;
        })?;
        self.notifications.push(Notification::StrategySwitched {
            project,
            to: kind.label().to_string(),
        });
        Ok(())
    }

    /// "Providers may add budget to the project."
    ///
    /// The addition is checked: a wrap would leave `budget_total <
    /// budget_spent`, and the `(budget_total - budget_spent)` task-quota
    /// math in the tick would underflow to a near-infinite quota. The
    /// durable project row is updated **before** the in-memory runtime,
    /// so a store error can never leave memory ahead of disk.
    pub fn add_budget(&mut self, project: ProjectId, extra_tasks: u32) -> Result<()> {
        let rt = self
            .runtimes
            .get(&project.0)
            .ok_or(EngineError::UnknownProject(project))?;
        let new_total =
            rt.budget_total
                .checked_add(extra_tasks)
                .ok_or(EngineError::BudgetOverflow {
                    project,
                    current: rt.budget_total,
                    extra: extra_tasks,
                })?;
        let new_state = if rt.state == ProjectState::Completed {
            ProjectState::Running
        } else {
            rt.state
        };
        self.projects
            .update(&project, |record| {
                record.budget_total = new_total;
                record.state = new_state;
            })?
            // A runtime without its stored row means the durable update
            // silently applied to nothing — surface it instead of letting
            // memory and disk diverge.
            .ok_or(EngineError::UnknownProject(project))?;
        let rt = self
            .runtimes
            .get_mut(&project.0)
            .ok_or(EngineError::UnknownProject(project))?;
        rt.budget_total = new_total;
        rt.state = new_state;
        Ok(())
    }

    /// "If the quality has been good enough, providers can stop the
    /// project, minimize their budget invested."
    pub fn stop_project(&mut self, project: ProjectId) -> Result<()> {
        let rt = self
            .runtimes
            .get_mut(&project.0)
            .ok_or(EngineError::UnknownProject(project))?;
        rt.state = ProjectState::Stopped;
        self.projects.update(&project, |record| {
            record.state = ProjectState::Stopped;
        })?;
        self.notifications
            .push(Notification::ProjectStopped { project });
        Ok(())
    }

    /// "Export resources with the desired tags."
    pub fn export(&self, project: ProjectId) -> Result<crate::export::Export> {
        let rt = self
            .runtimes
            .get(&project.0)
            .ok_or(EngineError::UnknownProject(project))?;
        let mut resources = Vec::with_capacity(rt.dataset.len());
        for record in self.resources.list(project)? {
            let i = record.resource.id.index();
            let state = &rt.pq.states[i];
            let mut tag_counts: Vec<(itag_model::ids::TagId, u32)> = state.rfd().iter().collect();
            tag_counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            resources.push(crate::export::ExportedResource {
                uri: record.resource.uri,
                kind: record.resource.kind.label().to_string(),
                posts: rt.pq.counts[i],
                quality: rt.pq.qualities[i],
                tags: tag_counts
                    .into_iter()
                    .map(|(t, c)| (self.tags.text(t), c))
                    .collect(),
            });
        }
        Ok(crate::export::Export {
            project: rt.name.clone(),
            resources,
        })
    }

    /// "We will help providers choose the best strategy given the current
    /// resources and tags statistics."
    pub fn suggest_strategy(&self, project: ProjectId) -> Result<StrategyKind> {
        let rt = self
            .runtimes
            .get(&project.0)
            .ok_or(EngineError::UnknownProject(project))?;
        let window = match self.config.metric {
            itag_quality::metric::QualityMetric::Stability { window, .. }
            | itag_quality::metric::QualityMetric::SmoothedStability { window, .. } => window,
            itag_quality::metric::QualityMetric::Oracle => 5,
        };
        Ok(QualityManager::suggest_strategy(&rt.pq, window))
    }

    /// Drains pending notifications.
    pub fn take_notifications(&mut self) -> Vec<Notification> {
        self.notifications.drain()
    }

    /// Tagger approval rate, from the persisted User Manager counters.
    pub fn tagger_approval_rate(&self, tagger: u32) -> Result<f64> {
        self.users.tagger_approval_rate(tagger)
    }

    /// Provider generosity rate.
    pub fn provider_approval_rate(&self, provider: u32) -> Result<f64> {
        self.users.provider_approval_rate(provider)
    }

    /// The User Manager's reliability gate for a tagger.
    pub fn is_reliable_tagger(&self, tagger: u32) -> Result<bool> {
        self.users.is_reliable(tagger)
    }

    /// Number of known taggers currently failing the reliability gate.
    pub fn unreliable_tagger_count(&self) -> Result<usize> {
        let mut n = 0;
        for t in self.users.taggers()? {
            if !self.users.is_reliable(t.id)? {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Storage statistics (commits, keys, recovery info).
    pub fn store_stats(&self) -> itag_store::StoreStats {
        self.store.stats()
    }

    /// Forces a storage checkpoint (durable stores only).
    pub fn checkpoint(&self) -> Result<()> {
        self.store.checkpoint()?;
        Ok(())
    }

    /// The tagger-side project browser (Fig. 7), sorted the way taggers
    /// choose: "projects with high pay per task or projects from
    /// providers with good approval rate" — pay descending, provider
    /// generosity as tie-break.
    pub fn browse_projects(&self) -> Result<Vec<crate::monitor::ProjectListing>> {
        let mut listings = Vec::with_capacity(self.runtimes.len());
        for rt in self.runtimes.values() {
            listings.push(crate::monitor::ProjectListing {
                project: rt.id,
                name: rt.name.clone(),
                state: rt.state.label().to_string(),
                pay_per_task_cents: rt.pay_cents,
                provider_approval_rate: self.users.provider_approval_rate(rt.provider)?,
                open_tasks: rt.platform.open_tasks(),
            });
        }
        listings.sort_by(|a, b| {
            b.pay_per_task_cents
                .cmp(&a.pay_per_task_cents)
                .then(
                    b.provider_approval_rate
                        .total_cmp(&a.provider_approval_rate),
                )
                .then(a.project.cmp(&b.project))
        });
        Ok(listings)
    }

    /// A tagger's post history on a project (Fig. 8).
    pub fn tagger_history(
        &self,
        project: ProjectId,
        tagger: itag_model::ids::TaggerId,
    ) -> Result<Vec<Post>> {
        self.tags.posts_by_tagger(project, tagger)
    }

    /// Cross-checks the live runtime against the persisted tables:
    /// per-resource post counts must agree between the quality state, the
    /// resource records, the post-count index and the stored post log.
    /// Returns the number of resources checked.
    pub fn verify_integrity(&self, project: ProjectId) -> Result<usize> {
        let rt = self
            .runtimes
            .get(&project.0)
            .ok_or(EngineError::UnknownProject(project))?;
        let records = self.resources.list(project)?;
        if records.len() != rt.pq.counts.len() {
            return Err(EngineError::InvalidDataset(format!(
                "resource count mismatch: {} stored vs {} live",
                records.len(),
                rt.pq.counts.len()
            )));
        }
        let initial = rt.dataset.initial_counts();
        for record in &records {
            let i = record.resource.id.index();
            let live = rt.pq.counts[i];
            if record.posts != live {
                return Err(EngineError::InvalidDataset(format!(
                    "resource {}: stored posts {} != live {}",
                    record.resource.id, record.posts, live
                )));
            }
            let logged = self.tags.posts_of(project, record.resource.id)?.len() as u32;
            if initial[i] + logged != live {
                return Err(EngineError::InvalidDataset(format!(
                    "resource {}: initial {} + logged {} != live {}",
                    record.resource.id, initial[i], logged, live
                )));
            }
        }
        // The post-count index must enumerate exactly the resource set.
        let indexed = self.resources.below_posts(project, u32::MAX)?;
        if indexed.len() != records.len() {
            return Err(EngineError::InvalidDataset(format!(
                "index has {} entries, table has {}",
                indexed.len(),
                records.len()
            )));
        }
        Ok(records.len())
    }

    /// Ids of projects with live runtimes.
    pub fn active_projects(&self) -> Vec<ProjectId> {
        let mut ids: Vec<ProjectId> = self.runtimes.values().map(|rt| rt.id).collect();
        ids.sort();
        ids
    }

    /// Ids of all persisted projects (including not-yet-resumed ones).
    /// Streams the table — only the ids are materialized, not the records.
    pub fn stored_projects(&self) -> Result<Vec<ProjectId>> {
        let mut ids = Vec::new();
        self.projects.for_each(|p: ProjectRecord| {
            ids.push(p.id);
            true
        })?;
        Ok(ids)
    }
}

/// The one place the reputation schedule is resolved (config over env
/// over default) — `ITagEngine::new` decides whether to build the ledger
/// with it, and [`ITagEngine::resolved_reputation_mode`] reports it, so
/// the two can never drift.
fn resolve_reputation_mode(config: &EngineConfig, env: &EnvOverrides) -> ReputationMode {
    config
        .reputation
        .or(env.reputation)
        .unwrap_or(crate::config::DEFAULT_REPUTATION_MODE)
}

fn validate_dataset(dataset: &Dataset) -> Result<()> {
    if dataset.is_empty() {
        return Err(EngineError::InvalidDataset("no resources".into()));
    }
    if dataset.latent.len() != dataset.resources.len()
        || dataset.popularity.len() != dataset.resources.len()
    {
        return Err(EngineError::InvalidDataset(
            "latent/popularity arrays must match resources".into(),
        ));
    }
    for (i, r) in dataset.resources.iter().enumerate() {
        if r.id.index() != i {
            return Err(EngineError::InvalidDataset(format!(
                "resource ids must be dense: index {i} has {}",
                r.id
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use itag_model::delicious::DeliciousConfig;

    fn engine() -> ITagEngine {
        ITagEngine::new(EngineConfig::in_memory(77)).unwrap()
    }

    fn dataset(seed: u64) -> Dataset {
        DeliciousConfig::tiny(seed).generate().dataset
    }

    #[test]
    fn add_project_and_run_improves_quality() {
        let mut e = engine();
        let provider = e.register_provider("alice").unwrap();
        let p = e
            .add_project(provider, ProjectSpec::demo("demo", 300), dataset(1))
            .unwrap();
        let before = e.monitor(p).unwrap().quality_mean;
        let summary = e.run(p, 300).unwrap();
        assert_eq!(summary.issued, 300);
        assert_eq!(summary.approved + summary.rejected, 300);
        assert!(summary.approved > 0, "some submissions must be approved");
        let after = e.monitor(p).unwrap();
        assert!(
            after.quality_mean > before,
            "{before} → {}",
            after.quality_mean
        );
        assert_eq!(after.state, "completed");
        assert_eq!(after.budget_spent, 300);
    }

    #[test]
    fn money_is_conserved_through_the_pipeline() {
        let mut e = engine();
        let provider = e.register_provider("bob").unwrap();
        let p = e
            .add_project(provider, ProjectSpec::demo("money", 100), dataset(2))
            .unwrap();
        let _ = e.run(p, 100).unwrap();
        let m = e.monitor(p).unwrap();
        // 100 tasks at 5 cents: escrowed total = paid + refunded + held.
        assert_eq!(m.paid + m.refunded + m.escrowed, 500);
        assert_eq!(m.tasks_approved * 5, m.paid);
        assert_eq!(m.tasks_rejected * 5, m.refunded);
    }

    #[test]
    fn budget_is_a_hard_cap_and_projects_complete() {
        let mut e = engine();
        let provider = e.register_provider("carol").unwrap();
        let p = e
            .add_project(provider, ProjectSpec::demo("cap", 50), dataset(3))
            .unwrap();
        let s1 = e.run(p, 30).unwrap();
        assert_eq!(s1.issued, 30);
        let s2 = e.run(p, 100).unwrap();
        assert_eq!(s2.issued, 20, "only the remaining budget is spendable");
        // Running a completed project is a state error.
        assert!(matches!(
            e.run(p, 1),
            Err(EngineError::BadProjectState { .. })
        ));
        // Adding budget revives it.
        e.add_budget(p, 10).unwrap();
        let s3 = e.run(p, 100).unwrap();
        assert_eq!(s3.issued, 10);
    }

    #[test]
    fn add_budget_overflow_is_a_named_error_and_mutates_nothing() {
        let mut e = engine();
        let provider = e.register_provider("croesus").unwrap();
        let p = e
            .add_project(
                provider,
                ProjectSpec::demo("rich", u32::MAX - 5),
                dataset(3),
            )
            .unwrap();
        // Pre-fix this wrapped in release, leaving budget_total <
        // budget_spent and an underflowing task quota in the tick.
        let err = e.add_budget(p, 10).unwrap_err();
        assert!(
            matches!(
                err,
                EngineError::BudgetOverflow {
                    project,
                    current,
                    extra: 10,
                } if project == p && current == u32::MAX - 5
            ),
            "expected BudgetOverflow, got {err}"
        );
        // Neither the runtime nor the stored row moved.
        assert_eq!(e.monitor(p).unwrap().budget_total, u32::MAX - 5);
        assert_eq!(
            e.projects.get(&p).unwrap().unwrap().budget_total,
            u32::MAX - 5
        );
        // A non-overflowing top-up still works.
        e.add_budget(p, 5).unwrap();
        assert_eq!(e.monitor(p).unwrap().budget_total, u32::MAX);
    }

    #[test]
    fn add_budget_leaves_runtime_untouched_when_the_durable_update_fails() {
        let mut e = engine();
        let provider = e.register_provider("frank").unwrap();
        let p = e
            .add_project(provider, ProjectSpec::demo("torn", 50), dataset(3))
            .unwrap();
        // Sabotage the durable side: drop the project row behind the
        // engine's back, so `projects.update` has nothing to apply to.
        // Pre-fix the runtime was bumped first, leaving memory ahead of
        // disk (the update silently applied to nothing).
        assert!(e.projects.delete(&p).unwrap());
        assert!(matches!(
            e.add_budget(p, 10),
            Err(EngineError::UnknownProject(q)) if q == p
        ));
        assert_eq!(
            e.monitor(p).unwrap().budget_total,
            50,
            "runtime must not run ahead of the failed durable update"
        );
    }

    #[test]
    fn stop_project_blocks_runs() {
        let mut e = engine();
        let provider = e.register_provider("dave").unwrap();
        let p = e
            .add_project(provider, ProjectSpec::demo("stop", 100), dataset(4))
            .unwrap();
        e.stop_project(p).unwrap();
        assert!(matches!(
            e.run(p, 1),
            Err(EngineError::BadProjectState { .. })
        ));
    }

    #[test]
    fn promote_and_stop_resource_steer_allocation() {
        let mut e = engine();
        let provider = e.register_provider("erin").unwrap();
        let p = e
            .add_project(provider, ProjectSpec::demo("steer", 200), dataset(5))
            .unwrap();
        e.stop_resource(p, ResourceId(0)).unwrap();
        e.promote(p, ResourceId(1)).unwrap();
        let posts_before_r1 = e.monitor(p).unwrap().rows[1].posts;
        let _ = e.run(p, 60).unwrap();
        let m = e.monitor(p).unwrap();
        assert_eq!(
            m.rows[0].posts,
            dataset(5).initial_counts()[0],
            "stopped resource must not gain posts"
        );
        assert!(m.rows[0].stopped);
        assert!(
            m.rows[1].posts > posts_before_r1,
            "promoted resource must be tagged"
        );
    }

    #[test]
    fn switch_strategy_mid_run_and_notifications_flow() {
        let mut e = engine();
        let provider = e.register_provider("frank").unwrap();
        let p = e
            .add_project(provider, ProjectSpec::demo("switch", 400), dataset(6))
            .unwrap();
        let _ = e.run(p, 100).unwrap();
        e.switch_strategy(p, StrategyKind::MostUnstable).unwrap();
        let _ = e.run(p, 100).unwrap();
        let m = e.monitor(p).unwrap();
        assert_eq!(m.strategy, "MU");
        let notes = e.take_notifications();
        assert!(notes
            .iter()
            .any(|n| matches!(n, Notification::StrategySwitched { .. })));
        assert!(notes
            .iter()
            .any(|n| matches!(n, Notification::TagDecided { .. })));
        assert!(e.take_notifications().is_empty(), "drain empties the queue");
    }

    #[test]
    fn spammers_earn_less_than_honest_taggers() {
        let mut config = EngineConfig::in_memory(9);
        config.spammer_fraction = 0.3;
        let mut e = ITagEngine::new(config).unwrap();
        let provider = e.register_provider("grace").unwrap();
        let p = e
            .add_project(provider, ProjectSpec::demo("spam", 600), dataset(7))
            .unwrap();
        let summary = e.run(p, 600).unwrap();
        assert!(
            summary.rejected > 0,
            "with 30% spammers some submissions must be rejected"
        );
        // Aggregate earnings by behaviour through monitor + user manager.
        let taggers = e.users.taggers().unwrap();
        assert!(!taggers.is_empty());
        let unreliable = taggers
            .iter()
            .filter(|t| !e.is_reliable_tagger(t.id).unwrap())
            .count();
        assert!(unreliable > 0, "reliability gate must flag some taggers");
        let m = e.monitor(p).unwrap();
        assert!(
            m.banned_taggers > 0,
            "enforcement must ban flagged taggers from the platform"
        );
    }

    #[test]
    fn export_reflects_tagging_results() {
        let mut e = engine();
        let provider = e.register_provider("heidi").unwrap();
        let p = e
            .add_project(provider, ProjectSpec::demo("export", 150), dataset(8))
            .unwrap();
        let _ = e.run(p, 150).unwrap();
        let export = e.export(p).unwrap();
        assert_eq!(export.resources.len(), 50);
        assert!(export.resources.iter().any(|r| !r.tags.is_empty()));
        let csv = export.to_csv();
        assert!(csv.lines().count() == 51);
        let back = crate::export::Export::from_bytes(&export.to_bytes()).unwrap();
        assert_eq!(back, export);
    }

    #[test]
    fn suggestion_follows_statistics() {
        let mut e = engine();
        let provider = e.register_provider("ivan").unwrap();
        let p = e
            .add_project(provider, ProjectSpec::demo("suggest", 100), dataset(10))
            .unwrap();
        // The tiny corpus has many thin resources → hybrid.
        assert_eq!(
            e.suggest_strategy(p).unwrap(),
            StrategyKind::FpMu { min_posts: 5 }
        );
    }

    #[test]
    fn resource_detail_shows_consensus() {
        let mut e = engine();
        let provider = e.register_provider("judy").unwrap();
        let p = e
            .add_project(provider, ProjectSpec::demo("detail", 200), dataset(11))
            .unwrap();
        let _ = e.run(p, 200).unwrap();
        // Find a resource with posts.
        let m = e.monitor(p).unwrap();
        let busiest = m.rows.iter().max_by_key(|r| r.posts).unwrap();
        let detail = e.resource_detail(p, busiest.id).unwrap();
        assert_eq!(detail.posts, busiest.posts);
        assert!(!detail.top_tags.is_empty());
        assert!(!detail.series.is_empty());
        assert!(detail.top_tags[0].1 >= detail.top_tags.last().unwrap().1);
    }

    #[test]
    fn all_spam_pool_starves_instead_of_spinning() {
        // 100% spammers + reliability enforcement: the whole pool is
        // banned quickly; run() must stop issuing instead of burning
        // max_ticks per batch forever, and the stall must be observable.
        let mut config = EngineConfig::in_memory(0x5BAD);
        config.spammer_fraction = 1.0;
        config.workers = 8;
        config.max_ticks_per_batch = 2_000;
        let mut e = ITagEngine::new(config).unwrap();
        let provider = e.register_provider("spam-city").unwrap();
        let p = e
            .add_project(provider, ProjectSpec::demo("spam", 500), dataset(19))
            .unwrap();
        let summary = e.run(p, 500).unwrap();
        assert!(
            summary.issued < 500,
            "run must stop early under starvation, issued {}",
            summary.issued
        );
        let m = e.monitor(p).unwrap();
        assert!(m.banned_taggers > 0);
        // Stalled tasks and their escrow are visible, money conserved.
        assert!(m.open_tasks > 0 || m.tasks_rejected > 0);
        assert_eq!(m.paid + m.refunded + m.escrowed, summary.issued as u64 * 5);
    }

    #[test]
    fn audience_mode_drives_a_campaign_through_manual_submissions() {
        use itag_crowd::audience::ManualPlatform;
        use itag_crowd::platform::PlatformKind;
        use itag_model::ids::TaggerId;

        let mut e = engine();
        let provider = e.register_provider("audience-host").unwrap();
        let d = dataset(18);
        let latents = d.latent.clone();
        let p = e
            .add_project_with_platform(
                provider,
                ProjectSpec::demo("live-demo", 40),
                d,
                Box::new(ManualPlatform::new(PlatformKind::Facebook)),
            )
            .unwrap();

        // Publish a batch; nothing completes until the audience acts.
        let published = e.publish_batch(p, 10).unwrap();
        assert_eq!(published, 10);
        assert_eq!(e.pending_tasks(p).unwrap(), 10);
        let (a, r) = e.collect_once(p).unwrap();
        assert_eq!((a, r), (0, 0), "no submissions yet");

        // Audience members submit honest tags for every open task.
        let open: Vec<(itag_crowd::task::TaskId, ResourceId)> = {
            let platform: &mut ManualPlatform = e.platform_mut(p).unwrap();
            let ids: Vec<_> = platform.open_task_ids().collect();
            ids.iter()
                .map(|&t| (t, platform.task(t).unwrap().resource))
                .collect()
        };
        assert_eq!(open.len(), 10);
        for (idx, (task, resource)) in open.iter().enumerate() {
            let tags: Vec<itag_model::ids::TagId> = latents[resource.index()].top_k(2).to_vec();
            let platform: &mut ManualPlatform = e.platform_mut(p).unwrap();
            platform
                .submit(*task, TaggerId(idx as u32 % 3), tags)
                .unwrap();
        }

        // Collect: all ten flow through approval, payment and UPDATE().
        let (a, r) = e.collect_once(p).unwrap();
        assert_eq!(a + r, 10);
        assert!(a > 0, "honest top-tag posts should be approved");
        assert_eq!(e.pending_tasks(p).unwrap(), 0);
        let m = e.monitor(p).unwrap();
        assert_eq!(m.budget_spent, 10);
        assert_eq!(m.paid + m.refunded + m.escrowed, 10 * 5);
        assert_eq!(e.verify_integrity(p).unwrap(), 50);

        // The sim-platform accessor must refuse the wrong type.
        assert!(e
            .platform_mut::<itag_crowd::platform::SimPlatform>(p)
            .is_err());
    }

    #[test]
    fn tagger_history_and_project_browser() {
        let mut e = engine();
        let provider = e.register_provider("nina").unwrap();
        let cheap = e
            .add_project(provider, ProjectSpec::demo("cheap", 200), dataset(16))
            .unwrap();
        let mut rich_spec = ProjectSpec::demo("rich", 200);
        rich_spec.pay_per_task_cents = 50;
        let rich = e.add_project(provider, rich_spec, dataset(17)).unwrap();

        // Taggers browse by pay: the rich project lists first.
        let listings = e.browse_projects().unwrap();
        assert_eq!(listings[0].project, rich);
        assert_eq!(listings[0].pay_per_task_cents, 50);
        assert_eq!(listings[1].project, cheap);

        // Run the cheap project and fetch some tagger's history.
        let _ = e.run(cheap, 200).unwrap();
        let m = e.monitor(cheap).unwrap();
        assert!(m.tasks_approved > 0);
        // Find a tagger with approved posts by scanning known worker ids.
        let mut found = false;
        for w in 0..50u32 {
            let history = e
                .tagger_history(cheap, itag_model::ids::TaggerId(w))
                .unwrap();
            if !history.is_empty() {
                found = true;
                assert!(history.windows(2).all(|p| p[0].id < p[1].id));
                assert!(history.iter().all(|p| !p.tags.is_empty()));
                // History is project-scoped: the rich project saw no runs.
                assert!(e
                    .tagger_history(rich, itag_model::ids::TaggerId(w))
                    .unwrap()
                    .is_empty());
                break;
            }
        }
        assert!(found, "some tagger must have history after 200 tasks");
    }

    #[test]
    fn integrity_holds_after_a_campaign() {
        let mut e = engine();
        let provider = e.register_provider("vera").unwrap();
        let p = e
            .add_project(provider, ProjectSpec::demo("verify", 250), dataset(14))
            .unwrap();
        assert_eq!(e.verify_integrity(p).unwrap(), 50);
        let _ = e.run(p, 250).unwrap();
        assert_eq!(e.verify_integrity(p).unwrap(), 50);
    }

    #[test]
    fn monitor_summary_matches_rows() {
        let mut e = engine();
        let provider = e.register_provider("mallory").unwrap();
        let p = e
            .add_project(provider, ProjectSpec::demo("summary", 150), dataset(15))
            .unwrap();
        let _ = e.run(p, 150).unwrap();
        let m = e.monitor(p).unwrap();
        let mean_from_rows: f64 =
            m.rows.iter().map(|r| r.quality).sum::<f64>() / m.rows.len() as f64;
        assert!((m.quality_summary.mean - mean_from_rows).abs() < 1e-9);
        assert!((m.quality_summary.mean - m.quality_mean).abs() < 1e-9);
        assert!(m.quality_summary.min <= m.quality_summary.max);
    }

    #[test]
    fn invalid_dataset_is_rejected() {
        let mut e = engine();
        let provider = e.register_provider("kim").unwrap();
        let mut bad = dataset(12);
        bad.latent.pop();
        assert!(matches!(
            e.add_project(provider, ProjectSpec::demo("bad", 10), bad),
            Err(EngineError::InvalidDataset(_))
        ));
    }

    #[test]
    fn unknown_project_errors_everywhere() {
        let mut e = engine();
        let p = ProjectId(99);
        assert!(matches!(e.run(p, 1), Err(EngineError::UnknownProject(_))));
        assert!(matches!(e.monitor(p), Err(EngineError::UnknownProject(_))));
        assert!(matches!(e.export(p), Err(EngineError::UnknownProject(_))));
        assert!(matches!(
            e.promote(p, ResourceId(0)),
            Err(EngineError::UnknownProject(_))
        ));
    }

    #[test]
    fn run_all_drives_every_project_and_keeps_integrity() {
        let mut e = engine();
        let provider = e.register_provider("fleet").unwrap();
        let mut projects = Vec::new();
        for seed in 20..24u64 {
            projects.push(
                e.add_project(
                    provider,
                    ProjectSpec::demo(&format!("campaign-{seed}"), 80),
                    dataset(seed),
                )
                .unwrap(),
            );
        }
        let summaries = e.run_all_on(80, 4).unwrap();
        assert_eq!(summaries.len(), 4);
        let ids: Vec<ProjectId> = summaries.iter().map(|(p, _)| *p).collect();
        assert_eq!(ids, projects, "summaries come back in project-id order");
        for (p, s) in &summaries {
            assert_eq!(s.issued, 80);
            assert_eq!(s.approved + s.rejected, 80);
            let m = e.monitor(*p).unwrap();
            assert_eq!(m.state, "completed");
            assert_eq!(m.budget_spent, 80);
            assert_eq!(m.paid + m.refunded + m.escrowed, 80 * 5);
            assert_eq!(e.verify_integrity(*p).unwrap(), 50);
        }
        // A second round on completed projects is a clean no-op.
        assert!(e.run_all_on(10, 2).unwrap().is_empty());
        // Notifications from the round were merged (budget exhausted × 4).
        let notes = e.take_notifications();
        assert_eq!(
            notes
                .iter()
                .filter(|n| matches!(n, Notification::BudgetExhausted { .. }))
                .count(),
            4
        );
    }

    #[test]
    fn run_all_is_identical_across_thread_counts() {
        let outputs: Vec<_> = [1usize, 2, 8]
            .into_iter()
            .map(|threads| {
                let mut e = engine();
                let provider = e.register_provider("det").unwrap();
                let mut projects = Vec::new();
                for seed in 40..43u64 {
                    projects.push(
                        e.add_project(
                            provider,
                            ProjectSpec::demo(&format!("det-{seed}"), 60),
                            dataset(seed),
                        )
                        .unwrap(),
                    );
                }
                let summaries = e.run_all_on(60, threads).unwrap();
                let monitors: Vec<_> = projects.iter().map(|p| e.monitor(*p).unwrap()).collect();
                let balances: Vec<_> = projects
                    .iter()
                    .map(|p| e.worker_balances(*p).unwrap())
                    .collect();
                (summaries, monitors, balances, e.store_checksum())
            })
            .collect();
        assert_eq!(outputs[0], outputs[1], "1 vs 2 threads diverged");
        assert_eq!(outputs[0], outputs[2], "1 vs 8 threads diverged");
    }

    #[test]
    fn run_all_is_identical_across_pipeline_depths() {
        let outputs: Vec<_> = [0usize, 1, 2, 4]
            .into_iter()
            .map(|depth| {
                let mut e = engine();
                let provider = e.register_provider("pipe").unwrap();
                let mut projects = Vec::new();
                for seed in 50..53u64 {
                    projects.push(
                        e.add_project(
                            provider,
                            ProjectSpec::demo(&format!("pipe-{seed}"), 60),
                            dataset(seed),
                        )
                        .unwrap(),
                    );
                }
                let summaries = e.run_all_with(60, 4, depth).unwrap();
                let monitors: Vec<_> = projects.iter().map(|p| e.monitor(*p).unwrap()).collect();
                let notes = e.take_notifications().len();
                (summaries, monitors, notes, e.store_checksum())
            })
            .collect();
        assert_eq!(outputs[0], outputs[1], "barrier vs depth-1 diverged");
        assert_eq!(outputs[0], outputs[2], "barrier vs depth-2 diverged");
        assert_eq!(outputs[0], outputs[3], "barrier vs depth-4 diverged");
    }

    /// [`SimPlatform`] wrapper whose first `decide` fails — forces one
    /// deterministic tick error so the round's error routing can be
    /// pinned across pipeline depths.
    struct FailOncePlatform {
        inner: SimPlatform,
        failed: bool,
    }

    impl CrowdPlatform for FailOncePlatform {
        fn kind(&self) -> itag_crowd::platform::PlatformKind {
            self.inner.kind()
        }
        fn publish(
            &mut self,
            project: ProjectId,
            resource: ResourceId,
            pay_cents: u32,
        ) -> itag_crowd::task::TaskId {
            self.inner.publish(project, resource, pay_cents)
        }
        fn step(
            &mut self,
            source: &dyn itag_crowd::platform::TagSource,
            rng: &mut StdRng,
        ) -> Vec<itag_crowd::task::TaskResult> {
            self.inner.step(source, rng)
        }
        fn decide(
            &mut self,
            task: itag_crowd::task::TaskId,
            approve: bool,
        ) -> itag_crowd::Result<(TaggerId, u32)> {
            if !self.failed {
                self.failed = true;
                return Err(itag_crowd::CrowdError::UnknownTask(task));
            }
            self.inner.decide(task, approve)
        }
        fn task(&self, id: itag_crowd::task::TaskId) -> Option<&itag_crowd::task::TaggingTask> {
            self.inner.task(id)
        }
        fn workers(&self) -> &WorkerPool {
            self.inner.workers()
        }
        fn stats(&self) -> itag_crowd::platform::PlatformStats {
            self.inner.stats()
        }
        fn open_tasks(&self) -> usize {
            self.inner.open_tasks()
        }
        fn ban_worker(&mut self, worker: TaggerId) {
            self.inner.ban_worker(worker)
        }
        fn banned_count(&self) -> usize {
            self.inner.banned_count()
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn failing_tick_routes_identically_at_every_pipeline_depth() {
        use itag_crowd::platform::PlatformKind;
        // One of three projects fails its first round's tick (the first
        // `decide` errors). The error must surface from run_all_with, the
        // healthy projects must still commit, the failed project's
        // runtime must survive for later rounds, and — because failed
        // ticks consume no post-id block — the follow-up round must be
        // bit-identical at every pipeline depth.
        let outputs: Vec<_> = [0usize, 1, 2]
            .into_iter()
            .map(|depth| {
                let mut e = engine();
                let provider = e.register_provider("failing").unwrap();
                let p0 = e
                    .add_project(provider, ProjectSpec::demo("healthy-a", 120), dataset(60))
                    .unwrap();
                let mut rng = StdRng::seed_from_u64(0xFA11);
                let pool = WorkerPool::from_mix(8, &[(TaggerBehavior::diligent(), 1.0)], &mut rng);
                let p1 = e
                    .add_project_with_platform(
                        provider,
                        ProjectSpec::demo("fails-once", 120),
                        dataset(61),
                        Box::new(FailOncePlatform {
                            inner: SimPlatform::new(PlatformKind::MTurk, pool),
                            failed: false,
                        }),
                    )
                    .unwrap();
                let p2 = e
                    .add_project(provider, ProjectSpec::demo("healthy-b", 120), dataset(62))
                    .unwrap();

                let err = e.run_all_with(40, 4, depth).unwrap_err();
                assert!(
                    matches!(err, EngineError::Crowd(_)),
                    "tick error must surface (depth {depth}): {err}"
                );
                // Healthy projects committed their round despite the error.
                for p in [p0, p2] {
                    assert_eq!(e.monitor(p).unwrap().budget_spent, 40, "depth {depth}");
                    assert_eq!(e.verify_integrity(p).unwrap(), 50, "depth {depth}");
                }
                // The failed project's runtime survived the round.
                let failed_monitor = e.monitor(p1).unwrap();
                // A follow-up round runs clean (the platform fails once).
                let summaries = e.run_all_with(40, 4, depth).unwrap();
                assert_eq!(summaries.len(), 3, "depth {depth}");
                let monitors: Vec<_> = [p0, p1, p2]
                    .iter()
                    .map(|p| e.monitor(*p).unwrap())
                    .collect();
                (failed_monitor, summaries, monitors, e.store_checksum())
            })
            .collect();
        assert_eq!(
            outputs[0], outputs[1],
            "depth 0 vs 1 diverged after a tick error"
        );
        assert_eq!(
            outputs[0], outputs[2],
            "depth 0 vs 2 diverged after a tick error"
        );
    }

    #[test]
    fn reputation_ledger_and_rescan_schedules_are_bit_identical() {
        // The incremental ledger and the per-round rescan must produce
        // identical engines: multi-round (the fold between rounds feeds
        // the next round's snapshot) and with the serial `run` path mixed
        // in (collect_once feeds the ledger per decision).
        let outputs: Vec<_> = [ReputationMode::Ledger, ReputationMode::Rescan]
            .into_iter()
            .map(|mode| {
                let mut config = EngineConfig::in_memory(0x1ED6);
                config.workers = 16;
                config.spammer_fraction = 0.25;
                config.reputation = Some(mode);
                let mut e = ITagEngine::new(config).unwrap();
                assert_eq!(e.resolved_reputation_mode(), mode);
                let provider = e.register_provider("mode-equiv").unwrap();
                let mut projects = Vec::new();
                for seed in 80..83u64 {
                    projects.push(
                        e.add_project(
                            provider,
                            ProjectSpec::demo(&format!("mode-{seed}"), 220),
                            dataset(seed),
                        )
                        .unwrap(),
                    );
                }
                let mut summaries = Vec::new();
                summaries.extend(e.run_all_with(50, 4, 2).unwrap());
                // Serial path between parallel rounds: per-decision
                // commits must keep the ledger in lock-step.
                let s = e.run(projects[0], 20).unwrap();
                assert_eq!(s.issued, 20);
                summaries.extend(e.run_all_with(50, 4, 0).unwrap());
                summaries.extend(e.run_all_with(50, 4, 2).unwrap());
                let monitors: Vec<_> = projects.iter().map(|p| e.monitor(*p).unwrap()).collect();
                let unreliable = e.unreliable_tagger_count().unwrap();
                (summaries, monitors, unreliable, e.store_checksum())
            })
            .collect();
        assert_eq!(outputs[0], outputs[1], "ledger and rescan modes diverged");
    }

    #[test]
    fn staged_user_overlay_is_empty_after_runs() {
        // The read-your-own-writes overlay is scoped to a batch, not a
        // forever-growing cache: after serial and parallel campaigns over
        // a churny worker pool it must hold nothing.
        let mut config = EngineConfig::in_memory(0x0CAC);
        config.workers = 32;
        config.spammer_fraction = 0.2;
        let mut e = ITagEngine::new(config).unwrap();
        let provider = e.register_provider("bounded").unwrap();
        let p0 = e
            .add_project(provider, ProjectSpec::demo("serial", 150), dataset(90))
            .unwrap();
        let p1 = e
            .add_project(provider, ProjectSpec::demo("parallel", 150), dataset(91))
            .unwrap();
        let _ = e.run(p0, 150).unwrap();
        assert_eq!(
            e.users.staged_len(),
            0,
            "serial path must clear the overlay per commit"
        );
        let _ = e.run_all_with(150, 4, 2).unwrap();
        assert_eq!(
            e.users.staged_len(),
            0,
            "merge path must clear the overlay per project frame"
        );
        assert!(e.monitor(p1).unwrap().tasks_approved > 0);
    }

    /// Runs the boundary scenario: exact-boundary reputation counters are
    /// seeded behind the engine's back, the engine is reopened (which is
    /// what rebuilds the ledger from the table), and two parallel rounds
    /// run at the given depth/mode.
    fn boundary_round_output(
        mode: ReputationMode,
        depth: usize,
    ) -> (Vec<bool>, Vec<(ProjectId, RunSummary)>, usize, u64) {
        let dir = itag_store::testutil::TestDir::new(&format!("gate-boundary-{mode:?}-{depth}"));
        let seeded_config = || {
            let mut config = EngineConfig::durable(0xB0DA, dir.path().to_path_buf());
            config.workers = 12;
            config.spammer_fraction = 0.4;
            config
        };
        {
            let mut config = seeded_config();
            config.reputation = Some(ReputationMode::Rescan);
            let mut e = ITagEngine::new(config).unwrap();
            let provider = e.register_provider("boundary").unwrap();
            for (i, seed) in [70u64, 71].into_iter().enumerate() {
                e.add_project(
                    provider,
                    ProjectSpec::demo(&format!("boundary-{i}"), 200),
                    dataset(seed),
                )
                .unwrap();
            }
            // Exact gate boundaries (threshold 0.5, grace 5), committed
            // directly through the user manager: one decision short of
            // grace, exactly at grace, exactly at the threshold, and one
            // decision below it.
            let mut batch = WriteBatch::new();
            e.users
                .stage_decisions(&mut batch, provider, 0, 0, 4, 0)
                .unwrap();
            e.users
                .stage_decisions(&mut batch, provider, 1, 0, 5, 0)
                .unwrap();
            e.users
                .stage_decisions(&mut batch, provider, 2, 5, 5, 0)
                .unwrap();
            e.users
                .stage_decisions(&mut batch, provider, 3, 4, 5, 0)
                .unwrap();
            e.store.commit(batch).unwrap();
            e.users.clear_staged();
            for (tagger, reliable) in [(0u32, true), (1, false), (2, true), (3, false)] {
                assert_eq!(
                    e.is_reliable_tagger(tagger).unwrap(),
                    reliable,
                    "seeded boundary for tagger {tagger} is off"
                );
            }
        }
        let mut config = seeded_config();
        config.reputation = Some(mode);
        let mut e = ITagEngine::new(config).unwrap();
        for p in e.stored_projects().unwrap() {
            e.resume_project(p).unwrap();
        }
        let mut summaries = Vec::new();
        for _ in 0..2 {
            summaries.extend(e.run_all_with(50, 4, depth).unwrap());
        }
        let gates = (0..12u32)
            .map(|t| e.is_reliable_tagger(t).unwrap())
            .collect();
        let unreliable = e.unreliable_tagger_count().unwrap();
        (gates, summaries, unreliable, e.store_checksum())
    }

    #[test]
    fn gate_boundaries_pin_identically_across_depths_and_modes() {
        // Boundary counters (decided == grace, rate == threshold, one
        // step either side) must steer every schedule identically:
        // ledger vs rescan, pipeline depth 0 vs 2 — including the
        // ledger's reopen/rebuild path, which is how the boundary
        // counters reach it.
        let base = boundary_round_output(ReputationMode::Rescan, 0);
        for mode in [ReputationMode::Ledger, ReputationMode::Rescan] {
            for depth in [0usize, 2] {
                if (mode, depth) == (ReputationMode::Rescan, 0) {
                    continue; // the base cell itself
                }
                let other = boundary_round_output(mode, depth);
                assert_eq!(
                    base, other,
                    "boundary rounds diverged at mode {mode:?}, depth {depth}"
                );
            }
        }
    }

    #[test]
    fn pipeline_depth_resolution_prefers_config() {
        let mut config = EngineConfig::in_memory(1);
        config.pipeline_depth = Some(0);
        let e = ITagEngine::new(config).unwrap();
        assert_eq!(e.resolved_pipeline_depth(), 0);
        let mut config = EngineConfig::in_memory(1);
        config.pipeline_depth = Some(7);
        let e = ITagEngine::new(config).unwrap();
        assert_eq!(e.resolved_pipeline_depth(), 7);
    }

    #[test]
    fn schema_version_gate_rejects_foreign_databases() {
        use itag_store::{Store, StoreOptions};
        // A mismatched version row is rejected with a clear error.
        let dir = itag_store::testutil::TestDir::new("engine-schema-mismatch");
        {
            let store = Store::open(dir.path(), StoreOptions::default()).unwrap();
            store
                .put(
                    crate::tables::META,
                    SCHEMA_KEY.to_vec(),
                    (SCHEMA_VERSION + 1).to_be_bytes().to_vec(),
                )
                .unwrap();
            store.sync().unwrap();
        }
        let err = ITagEngine::new(EngineConfig::durable(1, dir.path().to_path_buf()))
            .err()
            .expect("mismatched schema must be rejected");
        assert!(err.to_string().contains("schema"), "got: {err}");

        // A pre-versioning database (core tables, no meta row) is rejected.
        let dir = itag_store::testutil::TestDir::new("engine-schema-legacy");
        {
            let store = Store::open(dir.path(), StoreOptions::default()).unwrap();
            store
                .put(crate::tables::PROJECTS, vec![0, 0, 0, 0], vec![1])
                .unwrap();
            store.sync().unwrap();
        }
        assert!(
            ITagEngine::new(EngineConfig::durable(1, dir.path().to_path_buf())).is_err(),
            "legacy database must be rejected"
        );

        // A fresh directory is stamped and reopens cleanly.
        let dir = itag_store::testutil::TestDir::new("engine-schema-fresh");
        drop(ITagEngine::new(EngineConfig::durable(1, dir.path().to_path_buf())).unwrap());
        drop(ITagEngine::new(EngineConfig::durable(1, dir.path().to_path_buf())).unwrap());
    }

    #[test]
    fn durable_engine_resumes_after_restart() {
        let dir = itag_store::testutil::TestDir::new("engine-resume");
        let (project, quality_before, counts_before) = {
            let mut e =
                ITagEngine::new(EngineConfig::durable(13, dir.path().to_path_buf())).unwrap();
            let provider = e.register_provider("leo").unwrap();
            let p = e
                .add_project(provider, ProjectSpec::demo("durable", 400), dataset(13))
                .unwrap();
            let _ = e.run(p, 200).unwrap();
            let m = e.monitor(p).unwrap();
            (
                p,
                m.quality_mean,
                m.rows.iter().map(|r| r.posts).collect::<Vec<_>>(),
            )
        };

        let mut e = ITagEngine::new(EngineConfig::durable(13, dir.path().to_path_buf())).unwrap();
        assert_eq!(e.stored_projects().unwrap(), vec![project]);
        e.resume_project(project).unwrap();
        let m = e.monitor(project).unwrap();
        let counts_after: Vec<u32> = m.rows.iter().map(|r| r.posts).collect();
        assert_eq!(counts_after, counts_before, "post counts survive restart");
        assert!(
            (m.quality_mean - quality_before).abs() < 1e-9,
            "replayed quality {} vs live {}",
            m.quality_mean,
            quality_before
        );
        // The resumed project can keep running.
        let s = e.run(project, 50).unwrap();
        assert_eq!(s.issued, 50);
    }
}
