//! Algorithm 1: the strategy framework.
//!
//! ```text
//! Require: Budget B, Resources R, Initial no. of posts c⃗
//!  1: for i ← 1 to n do x[i] ← 0
//!  2: while B > 0 do
//!  3:     Rc ← CHOOSERESOURCES()
//!  4:     assign Rc to taggers
//!  5:     ∀ri ∈ Rc. xi ← xi + 1, B ← B − 1
//!  6:     UPDATE()
//!  return x⃗
//! ```
//!
//! [`Framework::run`] is that loop verbatim; CHOOSERESOURCES() is the
//! [`ChooseResources`] object, steps 4–6 are [`AllocationEnv::tag_once`].

use crate::env::{AllocationEnv, EnvView};
use itag_model::ids::ResourceId;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// A strategy: the CHOOSERESOURCES() implementation of Algorithm 1.
pub trait ChooseResources {
    /// Display name (used in figures and reports).
    fn name(&self) -> &str;

    /// Called once before the loop with the initial statistics; build
    /// heaps / plans here. `budget` is the total task budget `B`.
    fn init(&mut self, env: &dyn EnvView, budget: u32, rng: &mut StdRng);

    /// Picks up to `batch` resources to tag next. Returning fewer than
    /// `batch` is allowed; returning an empty set ends the run early
    /// (e.g. every resource stopped by the provider).
    fn choose(&mut self, env: &dyn EnvView, batch: usize, rng: &mut StdRng) -> Vec<ResourceId>;

    /// Called after a task on `r` completed and UPDATE() refreshed the
    /// statistics.
    fn notify_update(&mut self, env: &dyn EnvView, r: ResourceId);
}

/// One point of a quality-vs-budget trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BudgetPoint {
    /// Tasks spent so far.
    pub spent: u32,
    /// `q(R, c⃗+x⃗)` at that point.
    pub mean_quality: f64,
}

/// Outcome of one framework run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Strategy display name.
    pub strategy: String,
    /// The assignment `x⃗` (tasks per resource).
    pub allocation: Vec<u32>,
    /// Quality trajectory, including the `spent = 0` starting point.
    pub series: Vec<BudgetPoint>,
    /// `q(R, c⃗)`.
    pub initial_quality: f64,
    /// `q(R, c⃗+x⃗)`.
    pub final_quality: f64,
    /// Tasks actually issued (≤ B when the strategy exhausts early).
    pub spent: u32,
}

impl RunReport {
    /// The objective of the paper: `q(R, c⃗+x⃗) − q(R, c⃗)`.
    pub fn improvement(&self) -> f64 {
        self.final_quality - self.initial_quality
    }
}

/// Loop driver configuration.
#[derive(Debug, Clone, Copy)]
pub struct Framework {
    /// Resources chosen per CHOOSERESOURCES() call (|Rc|).
    pub batch_size: usize,
    /// Record a [`BudgetPoint`] every this many tasks.
    pub record_every: u32,
}

impl Default for Framework {
    fn default() -> Self {
        Framework {
            batch_size: 10,
            record_every: 250,
        }
    }
}

impl Framework {
    /// Runs Algorithm 1 for `budget` tasks.
    pub fn run(
        &self,
        env: &mut dyn AllocationEnv,
        strategy: &mut dyn ChooseResources,
        budget: u32,
        rng: &mut StdRng,
    ) -> RunReport {
        let n = env.num_resources();
        let mut allocation = vec![0u32; n];
        let initial_quality = env.mean_quality();
        let mut series = vec![BudgetPoint {
            spent: 0,
            mean_quality: initial_quality,
        }];

        strategy.init(env.as_view(), budget, rng);

        let mut spent = 0u32;
        let mut next_record = self.record_every.max(1);
        while spent < budget {
            let want = self.batch_size.min((budget - spent) as usize).max(1);
            let chosen = strategy.choose(env.as_view(), want, rng);
            if chosen.is_empty() {
                break; // strategy has nothing left to allocate
            }
            for r in chosen {
                debug_assert!((r.index()) < n, "strategy chose unknown resource {r}");
                env.tag_once(r, rng);
                allocation[r.index()] += 1;
                spent += 1;
                strategy.notify_update(env.as_view(), r);
                if spent >= next_record {
                    series.push(BudgetPoint {
                        spent,
                        mean_quality: env.mean_quality(),
                    });
                    next_record += self.record_every.max(1);
                }
                if spent >= budget {
                    break;
                }
            }
        }

        let final_quality = env.mean_quality();
        if series.last().map(|p| p.spent) != Some(spent) {
            series.push(BudgetPoint {
                spent,
                mean_quality: final_quality,
            });
        }
        RunReport {
            strategy: strategy.name().to_string(),
            allocation,
            series,
            initial_quality,
            final_quality,
            spent,
        }
    }
}

/// Upcast helper: `&mut dyn AllocationEnv → &dyn EnvView`.
trait AsView {
    fn as_view(&self) -> &dyn EnvView;
}

impl AsView for dyn AllocationEnv + '_ {
    fn as_view(&self) -> &dyn EnvView {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// A deterministic toy world: quality of a resource is
    /// `min(1, posts/10)`; popularity uniform; no latent anything.
    struct ToyEnv {
        counts: Vec<u32>,
    }

    impl EnvView for ToyEnv {
        fn num_resources(&self) -> usize {
            self.counts.len()
        }
        fn post_count(&self, r: ResourceId) -> u32 {
            self.counts[r.index()]
        }
        fn instability(&self, r: ResourceId) -> f64 {
            1.0 - self.quality(r)
        }
        fn quality(&self, r: ResourceId) -> f64 {
            (self.counts[r.index()] as f64 / 10.0).min(1.0)
        }
        fn mean_quality(&self) -> f64 {
            let n = self.counts.len() as f64;
            self.counts
                .iter()
                .map(|&c| (c as f64 / 10.0).min(1.0))
                .sum::<f64>()
                / n
        }
        fn popularity_weight(&self, _r: ResourceId) -> f64 {
            1.0
        }
        fn planning_marginal(&self, _r: ResourceId, k: u32) -> f64 {
            if k < 10 {
                0.1
            } else {
                0.0
            }
        }
    }

    impl AllocationEnv for ToyEnv {
        fn tag_once(&mut self, r: ResourceId, _rng: &mut StdRng) {
            self.counts[r.index()] += 1;
        }
    }

    /// Round-robin strategy for framework tests.
    struct RoundRobin {
        next: u32,
    }

    impl ChooseResources for RoundRobin {
        fn name(&self) -> &str {
            "round-robin"
        }
        fn init(&mut self, _env: &dyn EnvView, _budget: u32, _rng: &mut StdRng) {
            self.next = 0;
        }
        fn choose(
            &mut self,
            env: &dyn EnvView,
            batch: usize,
            _rng: &mut StdRng,
        ) -> Vec<ResourceId> {
            let n = env.num_resources() as u32;
            (0..batch as u32)
                .map(|i| ResourceId((self.next + i) % n))
                .collect()
        }
        fn notify_update(&mut self, _env: &dyn EnvView, _r: ResourceId) {
            self.next += 1;
        }
    }

    #[test]
    fn run_spends_exactly_the_budget() {
        let mut env = ToyEnv { counts: vec![0; 7] };
        let mut strat = RoundRobin { next: 0 };
        let mut rng = StdRng::seed_from_u64(1);
        let report = Framework {
            batch_size: 3,
            record_every: 5,
        }
        .run(&mut env, &mut strat, 20, &mut rng);

        assert_eq!(report.spent, 20);
        assert_eq!(report.allocation.iter().sum::<u32>(), 20);
        assert_eq!(report.series.first().unwrap().spent, 0);
        assert_eq!(report.series.last().unwrap().spent, 20);
        assert!(report.improvement() > 0.0);
    }

    #[test]
    fn quality_series_is_monotone_for_monotone_world() {
        let mut env = ToyEnv { counts: vec![0; 4] };
        let mut strat = RoundRobin { next: 0 };
        let mut rng = StdRng::seed_from_u64(2);
        let report = Framework {
            batch_size: 1,
            record_every: 1,
        }
        .run(&mut env, &mut strat, 30, &mut rng);
        for w in report.series.windows(2) {
            assert!(w[1].mean_quality >= w[0].mean_quality);
        }
        // 30 tasks over 4 resources: quality = mean(min(1, c/10)).
        assert!((report.final_quality - 0.75).abs() < 1e-9);
    }

    /// A strategy that gives up immediately.
    struct GiveUp;
    impl ChooseResources for GiveUp {
        fn name(&self) -> &str {
            "give-up"
        }
        fn init(&mut self, _: &dyn EnvView, _: u32, _: &mut StdRng) {}
        fn choose(&mut self, _: &dyn EnvView, _: usize, _: &mut StdRng) -> Vec<ResourceId> {
            Vec::new()
        }
        fn notify_update(&mut self, _: &dyn EnvView, _: ResourceId) {}
    }

    #[test]
    fn empty_choice_ends_the_run_early() {
        let mut env = ToyEnv { counts: vec![5; 3] };
        let mut rng = StdRng::seed_from_u64(3);
        let report = Framework::default().run(&mut env, &mut GiveUp, 100, &mut rng);
        assert_eq!(report.spent, 0);
        assert_eq!(report.improvement(), 0.0);
        assert_eq!(report.series.len(), 1);
    }

    #[test]
    fn zero_budget_is_a_noop() {
        let mut env = ToyEnv { counts: vec![0; 3] };
        let mut strat = RoundRobin { next: 0 };
        let mut rng = StdRng::seed_from_u64(4);
        let report = Framework::default().run(&mut env, &mut strat, 0, &mut rng);
        assert_eq!(report.spent, 0);
        assert_eq!(report.allocation, vec![0, 0, 0]);
    }
}
