//! OPT — the optimal allocation.
//!
//! Section IV compares the Table-I strategies "with the optimal allocation
//! strategy". Two allocators:
//!
//! * [`OptGreedy`] — assigns each budget unit to the resource with the
//!   largest projected marginal gain (a lazy max-heap over
//!   [`EnvView::planning_marginal`]). For concave projected curves — which
//!   both the oracle `κ/√k` curves and the fitted curves are, by
//!   construction — this greedy is *exactly* optimal for the separable
//!   budget problem `max Σ_i g_i(x_i) s.t. Σ x_i = B`.
//! * [`OptDp`] — exact dynamic program over arbitrary (even non-concave)
//!   gain functions, `O(n·B²)` time. Used in tests to certify greedy and
//!   in the ablation bench; infeasible at paper scale, by design.

use crate::env::{resource_ids, EnvView};
use crate::framework::ChooseResources;
use crate::ord::F64Ord;
use itag_model::ids::ResourceId;
use rand::rngs::StdRng;
use std::collections::BinaryHeap;

/// Greedy optimal allocator (exact for concave gains).
#[derive(Debug, Clone, Default)]
pub struct OptGreedy {
    /// Max-heap of `(projected marginal, resource, posts assumed)`.
    heap: BinaryHeap<(F64Ord, u32, u32)>,
}

impl OptGreedy {
    pub fn new() -> Self {
        OptGreedy::default()
    }
}

impl ChooseResources for OptGreedy {
    fn name(&self) -> &str {
        "OPT"
    }

    fn init(&mut self, env: &dyn EnvView, _budget: u32, _rng: &mut StdRng) {
        self.heap.clear();
        for r in resource_ids(env) {
            let k = env.post_count(r);
            self.heap
                .push((F64Ord(env.planning_marginal(r, k)), r.0, k));
        }
    }

    fn choose(&mut self, env: &dyn EnvView, batch: usize, _rng: &mut StdRng) -> Vec<ResourceId> {
        let mut chosen = Vec::with_capacity(batch);
        while chosen.len() < batch {
            let Some((F64Ord(gain), rid, k)) = self.heap.pop() else {
                break;
            };
            if gain <= 0.0 {
                // Nothing anywhere projects positive gain; put it back so a
                // later refit could revive it, and stop allocating.
                self.heap.push((F64Ord(gain), rid, k));
                break;
            }
            let r = ResourceId(rid);
            chosen.push(r);
            self.heap
                .push((F64Ord(env.planning_marginal(r, k + 1)), rid, k + 1));
        }
        chosen
    }

    fn notify_update(&mut self, _env: &dyn EnvView, _r: ResourceId) {
        // Plan is open-loop in post counts (tracked in the heap); the gain
        // model itself is the environment's concern.
    }
}

/// Exact DP allocator for small instances.
///
/// Plans the entire allocation at [`ChooseResources::init`] time using the
/// environment's projected gains `g_i(x) = Σ_{j<x} marginal(c_i + j)`, then
/// dribbles the plan out batch by batch.
#[derive(Debug, Clone, Default)]
pub struct OptDp {
    plan: std::collections::VecDeque<ResourceId>,
}

impl OptDp {
    pub fn new() -> Self {
        OptDp::default()
    }

    /// Exact DP: `best[b]` = max gain using budget `b` over resources seen
    /// so far; `choice[i][b]` = units given to resource `i` in that
    /// optimum. Returns per-resource allocation.
    fn solve(env: &dyn EnvView, budget: u32) -> Vec<u32> {
        let n = env.num_resources();
        let b = budget as usize;
        // Cumulative gains g_i(x) for x = 0..=B.
        let mut gains: Vec<Vec<f64>> = Vec::with_capacity(n);
        for r in resource_ids(env) {
            let c = env.post_count(r);
            let mut g = Vec::with_capacity(b + 1);
            let mut acc = 0.0;
            g.push(0.0);
            for x in 0..b as u32 {
                acc += env.planning_marginal(r, c + x);
                g.push(acc);
            }
            gains.push(g);
        }

        let mut best = vec![0.0f64; b + 1];
        let mut choice = vec![vec![0u32; b + 1]; n];
        for i in 0..n {
            // Iterate budget descending so resource i is used at most once.
            for used in (0..=b).rev() {
                let mut best_here = best[used];
                let mut best_x = 0u32;
                for x in 1..=used {
                    let cand = best[used - x] + gains[i][x];
                    if cand > best_here + 1e-15 {
                        best_here = cand;
                        best_x = x as u32;
                    }
                }
                best[used] = best_here;
                choice[i][used] = best_x;
            }
        }

        // Backtrack.
        let mut alloc = vec![0u32; n];
        let mut remaining = b;
        for i in (0..n).rev() {
            let x = choice[i][remaining];
            alloc[i] = x;
            remaining -= x as usize;
        }
        alloc
    }
}

impl ChooseResources for OptDp {
    fn name(&self) -> &str {
        "OPT-DP"
    }

    fn init(&mut self, env: &dyn EnvView, budget: u32, _rng: &mut StdRng) {
        self.plan.clear();
        let alloc = Self::solve(env, budget);
        // Emit round-robin over resources with remaining units so the
        // quality series is comparable with the online strategies.
        let mut remaining = alloc;
        let mut any = true;
        while any {
            any = false;
            for (i, rem) in remaining.iter_mut().enumerate() {
                if *rem > 0 {
                    *rem -= 1;
                    self.plan.push_back(ResourceId(i as u32));
                    any = true;
                }
            }
        }
    }

    fn choose(&mut self, _env: &dyn EnvView, batch: usize, _rng: &mut StdRng) -> Vec<ResourceId> {
        let take = batch.min(self.plan.len());
        self.plan.drain(..take).collect()
    }

    fn notify_update(&mut self, _env: &dyn EnvView, _r: ResourceId) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::AllocationEnv;
    use itag_quality::curve::LearningCurve;
    use rand::SeedableRng;

    /// World whose projected gains come from real learning curves.
    struct CurveEnv {
        curves: Vec<LearningCurve>,
        counts: Vec<u32>,
    }

    impl EnvView for CurveEnv {
        fn num_resources(&self) -> usize {
            self.curves.len()
        }
        fn post_count(&self, r: ResourceId) -> u32 {
            self.counts[r.index()]
        }
        fn instability(&self, r: ResourceId) -> f64 {
            1.0 - self.quality(r)
        }
        fn quality(&self, r: ResourceId) -> f64 {
            self.curves[r.index()].predict(self.counts[r.index()])
        }
        fn mean_quality(&self) -> f64 {
            let n = self.curves.len() as f64;
            (0..self.curves.len())
                .map(|i| self.curves[i].predict(self.counts[i]))
                .sum::<f64>()
                / n
        }
        fn popularity_weight(&self, _r: ResourceId) -> f64 {
            1.0
        }
        fn planning_marginal(&self, r: ResourceId, k: u32) -> f64 {
            self.curves[r.index()].planning_marginal(k)
        }
    }

    impl AllocationEnv for CurveEnv {
        fn tag_once(&mut self, r: ResourceId, _rng: &mut StdRng) {
            self.counts[r.index()] += 1;
        }
    }

    fn env() -> CurveEnv {
        CurveEnv {
            curves: vec![
                LearningCurve::from_kappa(0.3),
                LearningCurve::from_kappa(2.0),
                LearningCurve::from_kappa(1.0),
            ],
            counts: vec![4, 0, 1],
        }
    }

    #[test]
    fn greedy_and_dp_agree_on_concave_curves() {
        let budget = 25u32;
        let mut rng = StdRng::seed_from_u64(1);
        let fw = crate::framework::Framework {
            batch_size: 1,
            record_every: 100,
        };

        let mut e1 = env();
        let r_greedy = fw.run(&mut e1, &mut OptGreedy::new(), budget, &mut rng);
        let mut e2 = env();
        let r_dp = fw.run(&mut e2, &mut OptDp::new(), budget, &mut rng);

        assert_eq!(r_greedy.spent, budget);
        assert_eq!(r_dp.spent, budget);
        assert!(
            (r_greedy.final_quality - r_dp.final_quality).abs() < 1e-9,
            "greedy {} vs dp {}",
            r_greedy.final_quality,
            r_dp.final_quality
        );
    }

    #[test]
    fn opt_prefers_high_gain_resources() {
        let mut e = env();
        let mut rng = StdRng::seed_from_u64(2);
        let fw = crate::framework::Framework {
            batch_size: 5,
            record_every: 100,
        };
        let report = fw.run(&mut e, &mut OptGreedy::new(), 30, &mut rng);
        // Resource 1 (κ=2, zero posts) has the steepest curve: most tasks.
        assert!(
            report.allocation[1] > report.allocation[0],
            "{:?}",
            report.allocation
        );
        assert!(
            report.allocation[1] > report.allocation[2],
            "{:?}",
            report.allocation
        );
    }

    #[test]
    fn opt_stops_when_no_projected_gain_remains() {
        let mut e = CurveEnv {
            curves: vec![LearningCurve::flat(0.9), LearningCurve::flat(0.2)],
            counts: vec![0, 0],
        };
        let mut rng = StdRng::seed_from_u64(3);
        let report =
            crate::framework::Framework::default().run(&mut e, &mut OptGreedy::new(), 50, &mut rng);
        assert_eq!(report.spent, 0, "flat curves project zero gain");
    }

    #[test]
    fn dp_beats_greedy_on_a_crafted_nonconcave_instance() {
        /// Gains with a threshold effect: resource 0 pays off only at the
        /// 3rd unit (0, 0, 0.9); resource 1 pays 0.2 per unit.
        struct Trap {
            counts: Vec<u32>,
        }
        impl EnvView for Trap {
            fn num_resources(&self) -> usize {
                2
            }
            fn post_count(&self, r: ResourceId) -> u32 {
                self.counts[r.index()]
            }
            fn instability(&self, _r: ResourceId) -> f64 {
                1.0
            }
            fn quality(&self, _r: ResourceId) -> f64 {
                0.0
            }
            fn mean_quality(&self) -> f64 {
                0.0
            }
            fn popularity_weight(&self, _r: ResourceId) -> f64 {
                1.0
            }
            fn planning_marginal(&self, r: ResourceId, k: u32) -> f64 {
                match (r.0, k) {
                    (0, 2) => 0.9,
                    (0, _) => 0.0,
                    (1, _) => 0.2,
                    _ => unreachable!(),
                }
            }
        }

        let env = Trap { counts: vec![0, 0] };
        let alloc = OptDp::solve(&env, 3);
        // DP sees that 3 units on resource 0 yield 0.9 > 3 × 0.2.
        assert_eq!(alloc, vec![3, 0]);

        // Greedy falls into the trap: first marginal of resource 0 is 0.
        let mut g = OptGreedy::new();
        let mut rng = StdRng::seed_from_u64(4);
        g.init(&env, 3, &mut rng);
        let chosen = g.choose(&env, 3, &mut rng);
        assert!(chosen.iter().all(|&r| r == ResourceId(1)));
    }

    #[test]
    fn dp_respects_budget_exactly() {
        let e = env();
        for b in [0u32, 1, 7, 13] {
            let alloc = OptDp::solve(&e, b);
            assert_eq!(alloc.iter().sum::<u32>(), b, "budget {b}");
        }
    }
}
