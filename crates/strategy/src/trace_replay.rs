//! Trace-replay free choice.
//!
//! Section IV evaluates strategies against the *recorded* Delicious
//! stream: the post-split trace is what free-choice taggers actually did.
//! [`TraceReplay`] follows that stream's resource order verbatim — the
//! ground-truth FC — while [`crate::fc::FreeChoice`] samples from the
//! fitted popularity law. Comparing the two (`figures -- trace-replay`)
//! validates that the synthetic FC is statistically faithful.

use crate::env::EnvView;
use crate::framework::ChooseResources;
use itag_model::ids::ResourceId;
use itag_model::trace::Trace;
use rand::rngs::StdRng;
use std::collections::VecDeque;

/// Replays a recorded tagging stream as the allocation order.
#[derive(Debug, Clone)]
pub struct TraceReplay {
    order: VecDeque<ResourceId>,
    consumed: usize,
}

impl TraceReplay {
    /// Builds the replay order from a trace (time order).
    pub fn from_trace(trace: &Trace) -> Self {
        TraceReplay {
            order: trace.events().iter().map(|e| e.resource).collect(),
            consumed: 0,
        }
    }

    /// Events consumed so far.
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    /// Events left in the stream.
    pub fn remaining(&self) -> usize {
        self.order.len()
    }
}

impl ChooseResources for TraceReplay {
    fn name(&self) -> &str {
        "FC-trace"
    }

    fn init(&mut self, _env: &dyn EnvView, _budget: u32, _rng: &mut StdRng) {}

    fn choose(&mut self, env: &dyn EnvView, batch: usize, _rng: &mut StdRng) -> Vec<ResourceId> {
        let n = env.num_resources() as u32;
        let mut out = Vec::with_capacity(batch);
        while out.len() < batch {
            let Some(r) = self.order.pop_front() else {
                break; // trace exhausted: the run ends early, like §IV's
                       // finite evaluation stream
            };
            self.consumed += 1;
            if r.0 < n {
                out.push(r);
            }
        }
        out
    }

    fn notify_update(&mut self, _env: &dyn EnvView, _r: ResourceId) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use itag_model::ids::{TagId, TaggerId};
    use itag_model::trace::TraceEvent;
    use rand::SeedableRng;

    struct N(usize);
    impl EnvView for N {
        fn num_resources(&self) -> usize {
            self.0
        }
        fn post_count(&self, _r: ResourceId) -> u32 {
            0
        }
        fn instability(&self, _r: ResourceId) -> f64 {
            1.0
        }
        fn quality(&self, _r: ResourceId) -> f64 {
            0.0
        }
        fn mean_quality(&self) -> f64 {
            0.0
        }
        fn popularity_weight(&self, _r: ResourceId) -> f64 {
            1.0
        }
        fn planning_marginal(&self, _r: ResourceId, _k: u32) -> f64 {
            0.0
        }
    }

    fn trace(resources: &[u32]) -> Trace {
        Trace::new(
            resources
                .iter()
                .enumerate()
                .map(|(at, &r)| TraceEvent {
                    at: at as u64,
                    resource: ResourceId(r),
                    tagger: TaggerId(0),
                    tags: vec![TagId(0)],
                })
                .collect(),
        )
    }

    #[test]
    fn replays_in_trace_order() {
        let mut s = TraceReplay::from_trace(&trace(&[3, 1, 4, 1, 5]));
        let env = N(10);
        let mut rng = StdRng::seed_from_u64(1);
        s.init(&env, 100, &mut rng);
        assert_eq!(
            s.choose(&env, 3, &mut rng),
            vec![ResourceId(3), ResourceId(1), ResourceId(4)]
        );
        assert_eq!(
            s.choose(&env, 3, &mut rng),
            vec![ResourceId(1), ResourceId(5)]
        );
        assert!(s.choose(&env, 3, &mut rng).is_empty(), "trace exhausted");
        assert_eq!(s.consumed(), 5);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn skips_resources_outside_the_project() {
        // The trace may mention resources the project did not upload.
        let mut s = TraceReplay::from_trace(&trace(&[0, 99, 1]));
        let env = N(2);
        let mut rng = StdRng::seed_from_u64(2);
        let picks = s.choose(&env, 3, &mut rng);
        assert_eq!(picks, vec![ResourceId(0), ResourceId(1)]);
    }

    #[test]
    fn full_run_through_framework_ends_at_trace_end() {
        use crate::framework::Framework;
        use crate::simenv::SimWorld;
        use itag_model::delicious::DeliciousConfig;
        use itag_quality::metric::QualityMetric;

        let corpus = DeliciousConfig::tiny(5).generate();
        let mut world = SimWorld::new(corpus.dataset, QualityMetric::default());
        let mut s = TraceReplay::from_trace(&corpus.eval_trace);
        let mut rng = StdRng::seed_from_u64(3);
        let budget = corpus.eval_trace.len() as u32 + 500; // more than the trace holds
        let report = Framework::default().run(&mut world, &mut s, budget, &mut rng);
        assert_eq!(report.spent, corpus.eval_trace.len() as u32);
        assert!(report.improvement() > 0.0);
    }
}
