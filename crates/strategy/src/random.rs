//! RAND — uniform random allocation.
//!
//! Not in Table I, but the natural null baseline between FC (popularity-
//! skewed) and the informed strategies: it spreads budget evenly in
//! expectation without using any statistics.

use crate::env::EnvView;
use crate::framework::ChooseResources;
use itag_model::ids::ResourceId;
use rand::rngs::StdRng;
use rand::Rng;

/// The uniform-random strategy.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformRandom;

impl ChooseResources for UniformRandom {
    fn name(&self) -> &str {
        "RAND"
    }

    fn init(&mut self, _env: &dyn EnvView, _budget: u32, _rng: &mut StdRng) {}

    fn choose(&mut self, env: &dyn EnvView, batch: usize, rng: &mut StdRng) -> Vec<ResourceId> {
        let n = env.num_resources();
        if n == 0 {
            return Vec::new();
        }
        (0..batch)
            .map(|_| ResourceId(rng.gen_range(0..n as u32)))
            .collect()
    }

    fn notify_update(&mut self, _env: &dyn EnvView, _r: ResourceId) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    struct NEnv(usize);
    impl EnvView for NEnv {
        fn num_resources(&self) -> usize {
            self.0
        }
        fn post_count(&self, _r: ResourceId) -> u32 {
            0
        }
        fn instability(&self, _r: ResourceId) -> f64 {
            1.0
        }
        fn quality(&self, _r: ResourceId) -> f64 {
            0.0
        }
        fn mean_quality(&self) -> f64 {
            0.0
        }
        fn popularity_weight(&self, _r: ResourceId) -> f64 {
            1.0
        }
        fn planning_marginal(&self, _r: ResourceId, _k: u32) -> f64 {
            0.0
        }
    }

    #[test]
    fn spreads_roughly_uniformly() {
        let env = NEnv(10);
        let mut s = UniformRandom;
        let mut rng = StdRng::seed_from_u64(1);
        let mut hits = [0u32; 10];
        for _ in 0..1000 {
            for r in s.choose(&env, 10, &mut rng) {
                hits[r.index()] += 1;
            }
        }
        let (min, max) = (
            *hits.iter().min().unwrap() as f64,
            *hits.iter().max().unwrap() as f64,
        );
        assert!(max / min < 1.3, "min {min}, max {max}");
    }

    #[test]
    fn empty_env_returns_empty() {
        let env = NEnv(0);
        let mut s = UniformRandom;
        let mut rng = StdRng::seed_from_u64(2);
        assert!(s.choose(&env, 5, &mut rng).is_empty());
    }
}
