//! Provider controls: mid-run strategy switching and per-resource
//! promote/stop overrides.
//!
//! The demo UI (Figs. 3/5) lets providers "change allocation strategies if
//! they are not satisfied with the current tagging progress", promote a
//! resource ("ensuring that the resource will be chosen by the next
//! CHOOSERESOURCES() step") and stop investing in a resource. This wrapper
//! adds those controls around any inner strategy.

use crate::env::EnvView;
use crate::framework::ChooseResources;
use itag_model::ids::ResourceId;
use itag_store::codec::FxHashSet;
use rand::rngs::StdRng;
use std::collections::VecDeque;

/// A strategy wrapper with provider overrides.
pub struct SwitchableStrategy {
    inner: Box<dyn ChooseResources + Send>,
    /// Promoted resources, served before anything the inner strategy picks.
    promoted: VecDeque<ResourceId>,
    /// Resources the provider stopped; never selected.
    stopped: FxHashSet<u32>,
    /// Set when `switch_to` replaced the inner strategy; the replacement is
    /// re-initialized on the next choose() against current statistics.
    needs_init: bool,
    budget_hint: u32,
    switches: u32,
}

impl SwitchableStrategy {
    /// Wraps `inner`.
    pub fn new(inner: Box<dyn ChooseResources + Send>) -> Self {
        SwitchableStrategy {
            inner,
            promoted: VecDeque::new(),
            stopped: FxHashSet::default(),
            needs_init: false,
            budget_hint: 0,
            switches: 0,
        }
    }

    /// The Promote button: `r` will be chosen by the next
    /// CHOOSERESOURCES() step (unless stopped).
    pub fn promote(&mut self, r: ResourceId) {
        if !self.stopped.contains(&r.0) && !self.promoted.contains(&r) {
            self.promoted.push_back(r);
        }
    }

    /// The Stop button: stop investing in `r`.
    pub fn stop_resource(&mut self, r: ResourceId) {
        self.stopped.insert(r.0);
        self.promoted.retain(|&p| p != r);
    }

    /// Re-allow a stopped resource.
    pub fn resume_resource(&mut self, r: ResourceId) {
        self.stopped.remove(&r.0);
    }

    /// Replaces the allocation strategy mid-run; it re-initializes from
    /// current statistics on the next choose().
    pub fn switch_to(&mut self, strategy: Box<dyn ChooseResources + Send>) {
        self.inner = strategy;
        self.needs_init = true;
        self.switches += 1;
    }

    /// Number of mid-run switches performed.
    pub fn switches(&self) -> u32 {
        self.switches
    }

    /// Name of the currently active inner strategy.
    pub fn active_name(&self) -> &str {
        self.inner.name()
    }

    /// True if `r` is currently stopped.
    pub fn is_stopped(&self, r: ResourceId) -> bool {
        self.stopped.contains(&r.0)
    }
}

impl ChooseResources for SwitchableStrategy {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn init(&mut self, env: &dyn EnvView, budget: u32, rng: &mut StdRng) {
        self.budget_hint = budget;
        self.needs_init = false;
        self.inner.init(env, budget, rng);
    }

    fn choose(&mut self, env: &dyn EnvView, batch: usize, rng: &mut StdRng) -> Vec<ResourceId> {
        if self.needs_init {
            self.needs_init = false;
            self.inner.init(env, self.budget_hint, rng);
        }
        let mut out = Vec::with_capacity(batch);
        while out.len() < batch {
            let Some(r) = self.promoted.pop_front() else {
                break;
            };
            if !self.stopped.contains(&r.0) {
                out.push(r);
            }
        }
        // Fill the remainder from the inner strategy, dropping stopped
        // resources. Bounded retries: an inner strategy that only proposes
        // stopped resources must not spin forever.
        let mut attempts = 0;
        while out.len() < batch && attempts < 8 {
            attempts += 1;
            let want = batch - out.len();
            let picks = self.inner.choose(env, want, rng);
            if picks.is_empty() {
                break;
            }
            for r in picks {
                if !self.stopped.contains(&r.0) && out.len() < batch {
                    out.push(r);
                }
            }
        }
        out
    }

    fn notify_update(&mut self, env: &dyn EnvView, r: ResourceId) {
        self.inner.notify_update(env, r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp::FewestPosts;
    use crate::mu::MostUnstable;
    use crate::random::UniformRandom;
    use rand::SeedableRng;

    struct Flat(usize);
    impl EnvView for Flat {
        fn num_resources(&self) -> usize {
            self.0
        }
        fn post_count(&self, _r: ResourceId) -> u32 {
            0
        }
        fn instability(&self, r: ResourceId) -> f64 {
            1.0 - (r.0 as f64) / 100.0 // resource 0 most unstable
        }
        fn quality(&self, _r: ResourceId) -> f64 {
            0.0
        }
        fn mean_quality(&self) -> f64 {
            0.0
        }
        fn popularity_weight(&self, _r: ResourceId) -> f64 {
            1.0
        }
        fn planning_marginal(&self, _r: ResourceId, _k: u32) -> f64 {
            0.1
        }
    }

    #[test]
    fn promoted_resources_come_first() {
        let env = Flat(10);
        let mut s = SwitchableStrategy::new(Box::new(MostUnstable::new()));
        let mut rng = StdRng::seed_from_u64(1);
        s.init(&env, 100, &mut rng);
        s.promote(ResourceId(7));
        s.promote(ResourceId(3));
        let picks = s.choose(&env, 3, &mut rng);
        assert_eq!(picks[0], ResourceId(7));
        assert_eq!(picks[1], ResourceId(3));
        // Third pick comes from MU: resource 0 is the most unstable.
        assert_eq!(picks[2], ResourceId(0));
    }

    #[test]
    fn stopped_resources_are_filtered_everywhere() {
        let env = Flat(3);
        let mut s = SwitchableStrategy::new(Box::new(MostUnstable::new()));
        let mut rng = StdRng::seed_from_u64(2);
        s.init(&env, 100, &mut rng);
        s.promote(ResourceId(1));
        s.stop_resource(ResourceId(1)); // un-promotes too
        s.stop_resource(ResourceId(0)); // MU's favourite
        for _ in 0..5 {
            for r in s.choose(&env, 2, &mut rng) {
                assert!(r != ResourceId(0) && r != ResourceId(1), "picked {r}");
                s.notify_update(&env, r);
            }
        }
        assert!(s.is_stopped(ResourceId(0)));
        s.resume_resource(ResourceId(0));
        assert!(!s.is_stopped(ResourceId(0)));
    }

    #[test]
    fn switching_reinitializes_against_current_stats() {
        let env = Flat(5);
        let mut s = SwitchableStrategy::new(Box::new(UniformRandom));
        let mut rng = StdRng::seed_from_u64(3);
        s.init(&env, 10, &mut rng);
        assert_eq!(s.active_name(), "RAND");
        s.switch_to(Box::new(FewestPosts::new()));
        assert_eq!(s.active_name(), "FP");
        assert_eq!(s.switches(), 1);
        // Must not panic even though FP's init has not run explicitly —
        // choose() runs it lazily.
        let picks = s.choose(&env, 3, &mut rng);
        assert_eq!(picks.len(), 3);
    }

    #[test]
    fn all_stopped_ends_allocation() {
        let env = Flat(2);
        let mut s = SwitchableStrategy::new(Box::new(MostUnstable::new()));
        let mut rng = StdRng::seed_from_u64(4);
        s.init(&env, 10, &mut rng);
        s.stop_resource(ResourceId(0));
        s.stop_resource(ResourceId(1));
        assert!(s.choose(&env, 4, &mut rng).is_empty());
    }
}
