//! FP — Fewest Posts First.
//!
//! Table I: "Prioritize resources with fewest posts. Pro: reduce the
//! number of resources with low tag quality."
//!
//! A lazy min-heap over `(post count, resource)`. Entries may go stale
//! when posts land (including posts from other strategies after a
//! mid-run switch); stale entries are re-keyed on pop. When a resource is
//! chosen, it is re-inserted with `count + 1` immediately, so a batch
//! spreads over the `batch` least-posted resources instead of hammering
//! one.

use crate::env::{resource_ids, EnvView};
use crate::framework::ChooseResources;
use itag_model::ids::ResourceId;
use rand::rngs::StdRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The FP strategy.
#[derive(Debug, Clone, Default)]
pub struct FewestPosts {
    /// Min-heap of `(assumed post count, resource id)`; id as tie-break
    /// keeps runs deterministic.
    heap: BinaryHeap<Reverse<(u32, u32)>>,
}

impl FewestPosts {
    pub fn new() -> Self {
        FewestPosts::default()
    }
}

impl ChooseResources for FewestPosts {
    fn name(&self) -> &str {
        "FP"
    }

    fn init(&mut self, env: &dyn EnvView, _budget: u32, _rng: &mut StdRng) {
        self.heap.clear();
        for r in resource_ids(env) {
            self.heap.push(Reverse((env.post_count(r), r.0)));
        }
    }

    fn choose(&mut self, env: &dyn EnvView, batch: usize, _rng: &mut StdRng) -> Vec<ResourceId> {
        let mut chosen = Vec::with_capacity(batch);
        // Each pop either yields a fresh entry (chosen) or re-keys a stale
        // one; staleness is bounded by posts landed since init, so this
        // terminates.
        let mut guard = 0usize;
        let max_iter = 4 * (env.num_resources() + batch) + 64;
        while chosen.len() < batch && guard < max_iter {
            guard += 1;
            let Some(Reverse((assumed, rid))) = self.heap.pop() else {
                break;
            };
            let r = ResourceId(rid);
            let actual = env.post_count(r);
            if assumed < actual {
                // Stale: a post landed since this entry was pushed.
                self.heap.push(Reverse((actual, rid)));
                continue;
            }
            chosen.push(r);
            // Optimistically account the task we are about to issue.
            self.heap.push(Reverse((actual + 1, rid)));
        }
        chosen
    }

    fn notify_update(&mut self, _env: &dyn EnvView, _r: ResourceId) {
        // The optimistic re-insert in choose() already accounted the post.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::AllocationEnv;
    use rand::SeedableRng;

    struct CountEnv {
        counts: Vec<u32>,
    }

    impl EnvView for CountEnv {
        fn num_resources(&self) -> usize {
            self.counts.len()
        }
        fn post_count(&self, r: ResourceId) -> u32 {
            self.counts[r.index()]
        }
        fn instability(&self, _r: ResourceId) -> f64 {
            1.0
        }
        fn quality(&self, _r: ResourceId) -> f64 {
            0.0
        }
        fn mean_quality(&self) -> f64 {
            0.0
        }
        fn popularity_weight(&self, _r: ResourceId) -> f64 {
            1.0
        }
        fn planning_marginal(&self, _r: ResourceId, _k: u32) -> f64 {
            0.0
        }
    }

    impl AllocationEnv for CountEnv {
        fn tag_once(&mut self, r: ResourceId, _rng: &mut StdRng) {
            self.counts[r.index()] += 1;
        }
    }

    #[test]
    fn picks_the_least_posted_resources_first() {
        let env = CountEnv {
            counts: vec![5, 0, 3, 0, 9],
        };
        let mut fp = FewestPosts::new();
        let mut rng = StdRng::seed_from_u64(1);
        fp.init(&env, 0, &mut rng);
        let chosen = fp.choose(&env, 2, &mut rng);
        let mut ids: Vec<u32> = chosen.iter().map(|r| r.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    fn batch_spreads_rather_than_hammers() {
        let env = CountEnv {
            counts: vec![0, 0, 0, 0],
        };
        let mut fp = FewestPosts::new();
        let mut rng = StdRng::seed_from_u64(2);
        fp.init(&env, 0, &mut rng);
        let chosen = fp.choose(&env, 4, &mut rng);
        let mut ids: Vec<u32> = chosen.iter().map(|r| r.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4, "each resource at most once per batch here");
    }

    #[test]
    fn equalizes_post_counts_over_a_full_run() {
        let mut env = CountEnv {
            counts: vec![10, 0, 5, 2],
        };
        let mut fp = FewestPosts::new();
        let mut rng = StdRng::seed_from_u64(3);
        let report = crate::framework::Framework {
            batch_size: 1,
            record_every: 100,
        }
        .run(&mut env, &mut fp, 23, &mut rng);
        // 10+0+5+2+23 = 40 total → perfectly levelled at 10 each.
        assert_eq!(env.counts, vec![10, 10, 10, 10]);
        assert_eq!(report.spent, 23);
    }

    #[test]
    fn stale_entries_self_heal_after_external_posts() {
        let mut env = CountEnv { counts: vec![0, 1] };
        let mut fp = FewestPosts::new();
        let mut rng = StdRng::seed_from_u64(4);
        fp.init(&env, 0, &mut rng);
        // Posts land outside the strategy (e.g. FC phase of a switch).
        env.counts[0] = 7;
        let chosen = fp.choose(&env, 1, &mut rng);
        assert_eq!(chosen, vec![ResourceId(1)], "must re-key the stale 0");
    }

    #[test]
    fn empty_env_returns_empty() {
        let env = CountEnv { counts: vec![] };
        let mut fp = FewestPosts::new();
        let mut rng = StdRng::seed_from_u64(5);
        fp.init(&env, 0, &mut rng);
        assert!(fp.choose(&env, 3, &mut rng).is_empty());
    }
}
