//! FC — Free Choice.
//!
//! Table I: "Let taggers freely choose resources to tag. Pro: get taggers'
//! preferences and popularity of resources. Con: may not improve tag
//! quality of R significantly."
//!
//! Taggers left to themselves pick popular resources, so FC samples
//! proportionally to popularity. Two flavours:
//!
//! * [`FcMode::StaticPopularity`] — the dataset's intrinsic popularity
//!   (replays the observed Delicious arrival skew);
//! * [`FcMode::PreferentialAttachment`] — weight `k_i + 1`, the
//!   rich-get-richer dynamic where visible tags attract more taggers.

use crate::env::EnvView;
use crate::framework::ChooseResources;
use itag_model::ids::ResourceId;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How free-choice taggers weigh resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FcMode {
    /// Sample ∝ the dataset's static popularity.
    StaticPopularity,
    /// Sample ∝ `post_count + 1` (rich-get-richer).
    PreferentialAttachment,
}

/// The FC strategy.
#[derive(Debug, Clone)]
pub struct FreeChoice {
    mode: FcMode,
    /// Cached cumulative weights (rebuilt per batch for the preferential
    /// mode, once at init for the static mode).
    cumulative: Vec<f64>,
}

impl FreeChoice {
    pub fn new(mode: FcMode) -> Self {
        FreeChoice {
            mode,
            cumulative: Vec::new(),
        }
    }

    fn rebuild(&mut self, env: &dyn EnvView) {
        let n = env.num_resources();
        self.cumulative.clear();
        self.cumulative.reserve(n);
        let mut acc = 0.0;
        for i in 0..n as u32 {
            let r = ResourceId(i);
            let w = match self.mode {
                FcMode::StaticPopularity => env.popularity_weight(r).max(0.0),
                FcMode::PreferentialAttachment => env.post_count(r) as f64 + 1.0,
            };
            acc += w;
            self.cumulative.push(acc);
        }
    }

    // lint: allow(panic-path)
    fn sample(&self, rng: &mut StdRng) -> ResourceId {
        let total = *self.cumulative.last().expect("rebuilt before sampling");
        let u: f64 = rng.gen::<f64>() * total;
        let idx = self.cumulative.partition_point(|&c| c < u);
        ResourceId(idx.min(self.cumulative.len() - 1) as u32)
    }
}

impl ChooseResources for FreeChoice {
    fn name(&self) -> &str {
        match self.mode {
            FcMode::StaticPopularity => "FC",
            FcMode::PreferentialAttachment => "FC-pref",
        }
    }

    fn init(&mut self, env: &dyn EnvView, _budget: u32, _rng: &mut StdRng) {
        self.rebuild(env);
    }

    fn choose(&mut self, env: &dyn EnvView, batch: usize, rng: &mut StdRng) -> Vec<ResourceId> {
        if env.num_resources() == 0 {
            return Vec::new();
        }
        if self.mode == FcMode::PreferentialAttachment {
            // Post counts moved since the last batch; refresh the weights.
            self.rebuild(env);
        }
        (0..batch).map(|_| self.sample(rng)).collect()
    }

    fn notify_update(&mut self, _env: &dyn EnvView, _r: ResourceId) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::AllocationEnv;
    use rand::SeedableRng;

    struct PopEnv {
        pop: Vec<f64>,
        counts: Vec<u32>,
    }

    impl EnvView for PopEnv {
        fn num_resources(&self) -> usize {
            self.pop.len()
        }
        fn post_count(&self, r: ResourceId) -> u32 {
            self.counts[r.index()]
        }
        fn instability(&self, _r: ResourceId) -> f64 {
            1.0
        }
        fn quality(&self, _r: ResourceId) -> f64 {
            0.0
        }
        fn mean_quality(&self) -> f64 {
            0.0
        }
        fn popularity_weight(&self, r: ResourceId) -> f64 {
            self.pop[r.index()]
        }
        fn planning_marginal(&self, _r: ResourceId, _k: u32) -> f64 {
            0.0
        }
    }

    impl AllocationEnv for PopEnv {
        fn tag_once(&mut self, r: ResourceId, _rng: &mut StdRng) {
            self.counts[r.index()] += 1;
        }
    }

    #[test]
    fn static_mode_follows_popularity() {
        let env = PopEnv {
            pop: vec![8.0, 1.0, 1.0],
            counts: vec![0; 3],
        };
        let mut fc = FreeChoice::new(FcMode::StaticPopularity);
        let mut rng = StdRng::seed_from_u64(5);
        fc.init(&env, 0, &mut rng);
        let mut hits = [0u32; 3];
        for _ in 0..200 {
            for r in fc.choose(&env, 10, &mut rng) {
                hits[r.index()] += 1;
            }
        }
        let f0 = hits[0] as f64 / 2000.0;
        assert!((f0 - 0.8).abs() < 0.05, "resource 0 share: {f0}");
    }

    #[test]
    fn preferential_mode_reinforces_the_leader() {
        let mut env = PopEnv {
            pop: vec![1.0; 4],
            counts: vec![0, 0, 0, 50], // resource 3 starts far ahead
        };
        let mut fc = FreeChoice::new(FcMode::PreferentialAttachment);
        let mut rng = StdRng::seed_from_u64(6);
        fc.init(&env, 0, &mut rng);
        let mut hits = [0u32; 4];
        for _ in 0..100 {
            for r in fc.choose(&env, 5, &mut rng) {
                hits[r.index()] += 1;
                env.tag_once(r, &mut rng);
            }
        }
        assert!(
            hits[3] > hits[0] + hits[1] + hits[2],
            "leader should dominate: {hits:?}"
        );
    }

    #[test]
    fn zero_weight_resources_are_never_chosen() {
        let env = PopEnv {
            pop: vec![0.0, 1.0],
            counts: vec![0; 2],
        };
        let mut fc = FreeChoice::new(FcMode::StaticPopularity);
        let mut rng = StdRng::seed_from_u64(7);
        fc.init(&env, 0, &mut rng);
        for _ in 0..500 {
            for r in fc.choose(&env, 2, &mut rng) {
                assert_ne!(r, ResourceId(0));
            }
        }
    }

    #[test]
    fn empty_env_yields_empty_choice() {
        let env = PopEnv {
            pop: vec![],
            counts: vec![],
        };
        let mut fc = FreeChoice::new(FcMode::StaticPopularity);
        let mut rng = StdRng::seed_from_u64(8);
        fc.init(&env, 0, &mut rng);
        assert!(fc.choose(&env, 3, &mut rng).is_empty());
    }
}
