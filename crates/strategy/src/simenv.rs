//! `SimWorld` — the pure-simulation allocation environment.
//!
//! Wraps a [`Dataset`] with live quality states. `tag_once` draws a post
//! from the resource's latent distribution (optionally corrupted by tagger
//! noise) and folds it into the rfd — the whole "assign to tagger /
//! UPDATE()" round-trip without the crowdsourcing machinery. This is what
//! the figure harness runs; `itag-core` provides the full-system
//! environment with workers, approvals and payments on the same traits.

use crate::env::{AllocationEnv, EnvView};
use itag_model::dataset::Dataset;
use itag_model::ids::{ResourceId, TagId};
use itag_model::vocab::TagsPerPost;
use itag_quality::gain::GainEstimator;
use itag_quality::history::ResourceQuality;
use itag_quality::metric::QualityMetric;
use rand::rngs::StdRng;
use rand::Rng;

/// Pure-simulation environment.
pub struct SimWorld {
    dataset: Dataset,
    states: Vec<ResourceQuality>,
    metric: QualityMetric,
    gains: GainEstimator,
    counts: Vec<u32>,
    qualities: Vec<f64>,
    quality_sum: f64,
    tags_per_post: TagsPerPost,
    /// Per-tag probability that a tag is replaced by a uniform random
    /// vocabulary tag (the paper's "noisy" taggers).
    noise_rate: f64,
    posts_issued: u64,
}

impl SimWorld {
    /// Builds the world and replays the dataset's initial posts into the
    /// quality states (the provider's pre-campaign statistics).
    pub fn new(dataset: Dataset, metric: QualityMetric) -> Self {
        let n = dataset.len();
        let max_lag = match metric {
            QualityMetric::Stability { window, .. }
            | QualityMetric::SmoothedStability { window, .. } => window.max(1) as usize,
            QualityMetric::Oracle => 1,
        };
        let mut states: Vec<ResourceQuality> =
            (0..n).map(|_| ResourceQuality::new(max_lag)).collect();
        for post in &dataset.initial_posts {
            states[post.resource.index()].push_post(&post.tags);
        }
        let counts: Vec<u32> = states.iter().map(|s| s.posts()).collect();
        let gains = GainEstimator::oracle(&dataset.latent);
        let qualities: Vec<f64> = states
            .iter()
            .enumerate()
            .map(|(i, s)| metric.eval(s, Some(&dataset.latent[i])))
            .collect();
        let quality_sum = qualities.iter().sum();
        let mut world = SimWorld {
            dataset,
            states,
            metric,
            gains,
            counts,
            qualities,
            quality_sum,
            tags_per_post: TagsPerPost::default(),
            noise_rate: 0.0,
            posts_issued: 0,
        };
        // Record the starting quality so learning-curve fitting has a
        // baseline sample for every resource.
        for i in 0..world.states.len() {
            let q = world.qualities[i];
            world.states[i].record(q);
        }
        world
    }

    /// Sets the tagger noise rate (0.0 = honest crowd, toward 1.0 = junk).
    pub fn with_noise(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "noise rate in [0,1]");
        self.noise_rate = rate;
        self
    }

    /// Sets the tags-per-post distribution.
    pub fn with_tags_per_post(mut self, tpp: TagsPerPost) -> Self {
        self.tags_per_post = tpp;
        self
    }

    /// Replaces the oracle gain model with curves fitted online — the
    /// "deployable OPT" ablation.
    pub fn with_fitted_gains(mut self) -> Self {
        self.gains = GainEstimator::with_prior(
            self.dataset.len(),
            itag_quality::curve::LearningCurve::default_prior(),
        );
        self
    }

    /// The wrapped dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Current post counts (`c⃗ + x⃗` so far).
    pub fn counts(&self) -> &[u32] {
        self.counts.as_slice()
    }

    /// Posts issued through `tag_once` (excludes initial posts).
    pub fn posts_issued(&self) -> u64 {
        self.posts_issued
    }

    /// The active quality metric.
    pub fn metric(&self) -> QualityMetric {
        self.metric
    }

    /// Ground-truth dataset quality under the oracle metric, regardless of
    /// the configured metric — the evaluation harness reports both.
    pub fn oracle_mean_quality(&self) -> f64 {
        let n = self.states.len().max(1) as f64;
        self.states
            .iter()
            .enumerate()
            .map(|(i, s)| QualityMetric::Oracle.eval(s, Some(&self.dataset.latent[i])))
            .sum::<f64>()
            / n
    }

    /// Number of resources with fewer than `t` posts (the FP figure).
    pub fn count_below_posts(&self, t: u32) -> usize {
        self.counts.iter().filter(|&&c| c < t).count()
    }

    /// Number of resources with quality ≥ `tau` (the MU figure).
    pub fn count_quality_at_least(&self, tau: f64) -> usize {
        self.qualities.iter().filter(|&&q| q >= tau).count()
    }

    /// Generates a post's tags for `r`: honest draws from the latent
    /// distribution with per-tag noise substitution.
    fn gen_post_tags(&self, r: ResourceId, rng: &mut StdRng) -> Vec<TagId> {
        let mut tags = self.dataset.sample_honest_tags(r, self.tags_per_post, rng);
        if self.noise_rate > 0.0 {
            let vocab = self.dataset.dictionary.len() as u32;
            for t in tags.iter_mut() {
                if rng.gen::<f64>() < self.noise_rate {
                    *t = TagId(rng.gen_range(0..vocab));
                }
            }
            // The noise substitution may introduce duplicates; posts are
            // sets, so dedupe (keeping order).
            let mut seen = Vec::with_capacity(tags.len());
            tags.retain(|t| {
                if seen.contains(t) {
                    false
                } else {
                    seen.push(*t);
                    true
                }
            });
        }
        tags
    }

    fn refresh_quality(&mut self, i: usize) {
        let q = self
            .metric
            .eval(&self.states[i], Some(&self.dataset.latent[i]));
        self.quality_sum += q - self.qualities[i];
        self.qualities[i] = q;
        self.states[i].record(q);
    }
}

impl EnvView for SimWorld {
    fn num_resources(&self) -> usize {
        self.dataset.len()
    }

    fn post_count(&self, r: ResourceId) -> u32 {
        self.counts[r.index()]
    }

    fn instability(&self, r: ResourceId) -> f64 {
        1.0 - self.qualities[r.index()]
    }

    fn quality(&self, r: ResourceId) -> f64 {
        self.qualities[r.index()]
    }

    fn mean_quality(&self) -> f64 {
        if self.qualities.is_empty() {
            0.0
        } else {
            self.quality_sum / self.qualities.len() as f64
        }
    }

    fn popularity_weight(&self, r: ResourceId) -> f64 {
        self.dataset.popularity[r.index()]
    }

    fn planning_marginal(&self, r: ResourceId, k: u32) -> f64 {
        self.gains.planning_marginal(r.index(), k)
    }
}

impl AllocationEnv for SimWorld {
    fn tag_once(&mut self, r: ResourceId, rng: &mut StdRng) {
        let tags = self.gen_post_tags(r, rng);
        let i = r.index();
        self.states[i].push_post(&tags);
        self.counts[i] += 1;
        self.posts_issued += 1;
        self.refresh_quality(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::Framework;
    use crate::kind::StrategyKind;
    use itag_model::delicious::DeliciousConfig;
    use rand::SeedableRng;

    fn world(seed: u64) -> SimWorld {
        let d = DeliciousConfig::tiny(seed).generate();
        SimWorld::new(d.dataset, QualityMetric::default())
    }

    #[test]
    fn initial_state_reflects_dataset() {
        let d = DeliciousConfig::tiny(1).generate();
        let expected = d.dataset.initial_counts();
        let w = SimWorld::new(d.dataset, QualityMetric::default());
        assert_eq!(w.counts(), expected.as_slice());
        let q = w.mean_quality();
        assert!((0.0..=1.0).contains(&q));
    }

    #[test]
    fn tag_once_updates_counts_and_quality_cache() {
        let mut w = world(2);
        let mut rng = StdRng::seed_from_u64(3);
        let r = ResourceId(0);
        let before = w.post_count(r);
        w.tag_once(r, &mut rng);
        assert_eq!(w.post_count(r), before + 1);
        assert_eq!(w.posts_issued(), 1);
        // Cached mean equals recomputed mean.
        let mean: f64 = (0..w.num_resources())
            .map(|i| w.quality(ResourceId(i as u32)))
            .sum::<f64>()
            / w.num_resources() as f64;
        assert!((w.mean_quality() - mean).abs() < 1e-12);
    }

    #[test]
    fn quality_improves_under_any_informed_strategy() {
        for kind in [
            StrategyKind::FewestPosts,
            StrategyKind::MostUnstable,
            StrategyKind::FpMu { min_posts: 5 },
            StrategyKind::Optimal,
        ] {
            let mut w = world(4);
            let mut strat = kind.build();
            let mut rng = StdRng::seed_from_u64(5);
            let report = Framework {
                batch_size: 5,
                record_every: 200,
            }
            .run(&mut w, strat.as_mut(), 500, &mut rng);
            assert!(
                report.improvement() > 0.05,
                "{} should improve quality, got {}",
                report.strategy,
                report.improvement()
            );
        }
    }

    #[test]
    fn oracle_quality_rises_with_honest_posts() {
        let mut w = world(6);
        let before = w.oracle_mean_quality();
        let mut strat = StrategyKind::FewestPosts.build();
        let mut rng = StdRng::seed_from_u64(7);
        let _ = Framework::default().run(&mut w, strat.as_mut(), 400, &mut rng);
        let after = w.oracle_mean_quality();
        assert!(after > before, "oracle: {before} → {after}");
    }

    #[test]
    fn noise_slows_quality_improvement() {
        let run = |noise: f64| {
            let d = DeliciousConfig::tiny(8).generate();
            let mut w = SimWorld::new(d.dataset, QualityMetric::default()).with_noise(noise);
            let mut strat = StrategyKind::FewestPosts.build();
            let mut rng = StdRng::seed_from_u64(9);
            Framework::default()
                .run(&mut w, strat.as_mut(), 400, &mut rng)
                .improvement()
        };
        let clean = run(0.0);
        let noisy = run(0.8);
        assert!(
            clean > noisy,
            "noise should hurt: clean {clean}, noisy {noisy}"
        );
    }

    #[test]
    fn counters_track_threshold_figures() {
        let mut w = world(10);
        let below_before = w.count_below_posts(10);
        let mut strat = StrategyKind::FewestPosts.build();
        let mut rng = StdRng::seed_from_u64(11);
        let _ = Framework::default().run(&mut w, strat.as_mut(), 300, &mut rng);
        let below_after = w.count_below_posts(10);
        assert!(
            below_after < below_before,
            "FP must reduce low-post resources: {below_before} → {below_after}"
        );
        // Sanity for the tau counter.
        assert!(w.count_quality_at_least(0.0) == w.num_resources());
        assert!(w.count_quality_at_least(1.01) == 0);
    }

    #[test]
    fn deterministic_given_seeds() {
        let run = || {
            let mut w = world(12);
            let mut strat = StrategyKind::MostUnstable.build();
            let mut rng = StdRng::seed_from_u64(13);
            Framework::default()
                .run(&mut w, strat.as_mut(), 200, &mut rng)
                .final_quality
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "noise rate")]
    fn invalid_noise_rejected() {
        let _ = world(1).with_noise(1.5);
    }
}
