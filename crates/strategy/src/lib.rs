//! # itag-strategy — budgeted task-allocation strategies
//!
//! Implements Algorithm 1 of the paper (the "choose resources – update
//! model" framework) and every allocation strategy of Table I:
//!
//! | Strategy | Module | CHOOSERESOURCES() |
//! |----------|--------|--------------------|
//! | FC       | [`fc`] | taggers choose freely (popularity-weighted) |
//! | FP       | [`fp`] | fewest posts first |
//! | MU       | [`mu`] | most unstable rfd first |
//! | FP-MU    | [`hybrid`] | FP phase, then MU |
//! | RAND     | [`random`] | uniform baseline |
//! | OPT      | [`optimal`] | greedy/DP over projected marginal gains — the "optimal allocation strategy" of Section IV |
//!
//! Strategies see the world only through [`env::EnvView`]: post counts,
//! observable instability, popularity and projected gains. They never touch
//! latent distributions (except OPT, whose whole point is to be the oracle
//! upper bound).
//!
//! [`simenv::SimWorld`] is the pure-simulation environment used by the
//! figure harness; `itag-core` provides the full-system environment that
//! routes tasks through the crowdsourcing platform.
//!
//! ```
//! use itag_model::delicious::DeliciousConfig;
//! use itag_quality::metric::QualityMetric;
//! use itag_strategy::{Framework, SimWorld, StrategyKind};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let corpus = DeliciousConfig::tiny(1).generate();
//! let mut world = SimWorld::new(corpus.dataset, QualityMetric::default());
//! let mut strategy = StrategyKind::FpMu { min_posts: 5 }.build();
//! let mut rng = StdRng::seed_from_u64(1);
//! let report = Framework::default().run(&mut world, strategy.as_mut(), 200, &mut rng);
//! assert_eq!(report.spent, 200);
//! assert!(report.improvement() > 0.0);
//! ```

pub mod env;
pub mod fc;
pub mod fp;
pub mod framework;
pub mod hybrid;
pub mod kind;
pub mod mu;
pub mod optimal;
pub mod ord;
pub mod random;
pub mod simenv;
pub mod switch;
pub mod trace_replay;

pub use env::{AllocationEnv, EnvView};
pub use framework::{BudgetPoint, ChooseResources, Framework, RunReport};
pub use kind::StrategyKind;
pub use simenv::SimWorld;
pub use switch::SwitchableStrategy;
