//! Serializable strategy selector — what a provider picks on the
//! Add-Project screen (Fig. 4), and what the engine's "we will help
//! providers choose the best strategy" suggestion returns.

use crate::fc::{FcMode, FreeChoice};
use crate::fp::FewestPosts;
use crate::framework::ChooseResources;
use crate::hybrid::{FpMu, SwitchRule};
use crate::mu::MostUnstable;
use crate::optimal::{OptDp, OptGreedy};
use crate::random::UniformRandom;
use serde::{Deserialize, Serialize};

/// The strategy menu.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StrategyKind {
    /// Free choice, dataset popularity.
    FreeChoice,
    /// Free choice with rich-get-richer dynamics.
    FreeChoicePreferential,
    /// Fewest posts first.
    FewestPosts,
    /// Most unstable first.
    MostUnstable,
    /// FP then MU; switch when every resource has `min_posts` posts.
    FpMu { min_posts: u32 },
    /// FP then MU; switch after a budget fraction.
    FpMuBudget { fraction: f64 },
    /// Uniform random baseline.
    Random,
    /// Greedy optimal over projected gains.
    Optimal,
    /// Exact DP optimal (small instances only).
    OptimalDp,
}

impl StrategyKind {
    /// Instantiates the strategy.
    pub fn build(&self) -> Box<dyn ChooseResources + Send> {
        match *self {
            StrategyKind::FreeChoice => Box::new(FreeChoice::new(FcMode::StaticPopularity)),
            StrategyKind::FreeChoicePreferential => {
                Box::new(FreeChoice::new(FcMode::PreferentialAttachment))
            }
            StrategyKind::FewestPosts => Box::new(FewestPosts::new()),
            StrategyKind::MostUnstable => Box::new(MostUnstable::new()),
            StrategyKind::FpMu { min_posts } => {
                Box::new(FpMu::new(SwitchRule::MinPosts(min_posts)))
            }
            StrategyKind::FpMuBudget { fraction } => {
                Box::new(FpMu::new(SwitchRule::BudgetFraction(fraction)))
            }
            StrategyKind::Random => Box::new(UniformRandom),
            StrategyKind::Optimal => Box::new(OptGreedy::new()),
            StrategyKind::OptimalDp => Box::new(OptDp::new()),
        }
    }

    /// Display name matching the paper's Table I.
    pub fn label(&self) -> &'static str {
        match self {
            StrategyKind::FreeChoice => "FC",
            StrategyKind::FreeChoicePreferential => "FC-pref",
            StrategyKind::FewestPosts => "FP",
            StrategyKind::MostUnstable => "MU",
            StrategyKind::FpMu { .. } | StrategyKind::FpMuBudget { .. } => "FP-MU",
            StrategyKind::Random => "RAND",
            StrategyKind::Optimal => "OPT",
            StrategyKind::OptimalDp => "OPT-DP",
        }
    }

    /// The strategy line-up of the paper's evaluation (Section IV):
    /// the four Table-I strategies, the random baseline and the optimal.
    pub fn paper_lineup(window: u32) -> Vec<StrategyKind> {
        vec![
            StrategyKind::FreeChoice,
            StrategyKind::Random,
            StrategyKind::FewestPosts,
            StrategyKind::MostUnstable,
            StrategyKind::FpMu { min_posts: window },
            StrategyKind::Optimal,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_builds_and_labels() {
        let kinds = [
            StrategyKind::FreeChoice,
            StrategyKind::FreeChoicePreferential,
            StrategyKind::FewestPosts,
            StrategyKind::MostUnstable,
            StrategyKind::FpMu { min_posts: 5 },
            StrategyKind::FpMuBudget { fraction: 0.4 },
            StrategyKind::Random,
            StrategyKind::Optimal,
            StrategyKind::OptimalDp,
        ];
        for k in kinds {
            let s = k.build();
            assert!(!s.name().is_empty());
            assert!(!k.label().is_empty());
        }
    }

    #[test]
    fn lineup_matches_section_four() {
        let lineup = StrategyKind::paper_lineup(5);
        let labels: Vec<&str> = lineup.iter().map(|k| k.label()).collect();
        assert_eq!(labels, vec!["FC", "RAND", "FP", "MU", "FP-MU", "OPT"]);
    }

    #[test]
    fn kind_serializes_for_configs() {
        let k = StrategyKind::FpMu { min_posts: 7 };
        let bytes = itag_store::serbin::to_bytes(&k).unwrap();
        let back: StrategyKind = itag_store::serbin::from_bytes(&bytes).unwrap();
        assert_eq!(back, k);
    }
}
