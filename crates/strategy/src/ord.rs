//! A totally-ordered `f64` wrapper for priority queues.

/// `f64` with `Ord` via IEEE total ordering. Heap keys in this crate are
/// qualities/gains in `[0, ∞)`, for which total order equals numeric order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F64Ord(pub f64);

impl Eq for F64Ord {}

impl PartialOrd for F64Ord {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for F64Ord {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn heap_pops_maximum_first() {
        let mut h = BinaryHeap::new();
        for v in [0.3, 0.9, 0.1, 0.5] {
            h.push(F64Ord(v));
        }
        assert_eq!(h.pop(), Some(F64Ord(0.9)));
        assert_eq!(h.pop(), Some(F64Ord(0.5)));
    }

    #[test]
    fn tuple_ordering_breaks_ties_on_second_field() {
        let mut h = BinaryHeap::new();
        h.push((F64Ord(0.5), 1u32));
        h.push((F64Ord(0.5), 9u32));
        assert_eq!(h.pop(), Some((F64Ord(0.5), 9)));
    }
}
