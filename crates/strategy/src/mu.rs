//! MU — Most Unstable First.
//!
//! Table I: "Prioritize resources with most unstable rfds. Pro: increase
//! the number of resources that can satisfy a certain quality
//! requirement."
//!
//! A lazy max-heap over `(instability, resource)`. A resource's
//! instability only changes when *it* receives a post, so entries are
//! refreshed through [`ChooseResources::notify_update`]; a small epsilon
//! guards against float drift on pop-validation. Resources chosen in the
//! current batch are parked in a pending set until their post lands, so a
//! batch never double-selects one resource.

use crate::env::{resource_ids, EnvView};
use crate::framework::ChooseResources;
use crate::ord::F64Ord;
use itag_model::ids::ResourceId;
use itag_store::codec::FxHashSet;
use rand::rngs::StdRng;
use std::collections::BinaryHeap;

/// Tolerance when validating a popped instability against the live value.
const EPS: f64 = 1e-9;

/// The MU strategy.
#[derive(Debug, Clone, Default)]
pub struct MostUnstable {
    /// Max-heap of `(instability, resource id)`.
    heap: BinaryHeap<(F64Ord, u32)>,
    /// Resources with an in-flight task (chosen, post not yet landed).
    pending: FxHashSet<u32>,
}

impl MostUnstable {
    pub fn new() -> Self {
        MostUnstable::default()
    }
}

impl ChooseResources for MostUnstable {
    fn name(&self) -> &str {
        "MU"
    }

    fn init(&mut self, env: &dyn EnvView, _budget: u32, _rng: &mut StdRng) {
        self.heap.clear();
        self.pending.clear();
        for r in resource_ids(env) {
            self.heap.push((F64Ord(env.instability(r)), r.0));
        }
    }

    fn choose(&mut self, env: &dyn EnvView, batch: usize, _rng: &mut StdRng) -> Vec<ResourceId> {
        let mut chosen = Vec::with_capacity(batch);
        let mut guard = 0usize;
        let max_iter = 4 * (env.num_resources() + batch) + 64;
        while chosen.len() < batch && guard < max_iter {
            guard += 1;
            let Some((F64Ord(assumed), rid)) = self.heap.pop() else {
                break;
            };
            if self.pending.contains(&rid) {
                // Duplicate heap entry for an in-flight resource; drop it —
                // notify_update will push a fresh one.
                continue;
            }
            let r = ResourceId(rid);
            let actual = env.instability(r);
            if (assumed - actual).abs() > EPS {
                self.heap.push((F64Ord(actual), rid));
                continue;
            }
            self.pending.insert(rid);
            chosen.push(r);
        }
        chosen
    }

    fn notify_update(&mut self, env: &dyn EnvView, r: ResourceId) {
        self.pending.remove(&r.0);
        self.heap.push((F64Ord(env.instability(r)), r.0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::AllocationEnv;
    use rand::SeedableRng;

    /// Instability decreases by a fixed decay per post:
    /// `inst = base · decay^posts`.
    struct DecayEnv {
        base: Vec<f64>,
        counts: Vec<u32>,
        decay: f64,
    }

    impl DecayEnv {
        fn inst(&self, i: usize) -> f64 {
            self.base[i] * self.decay.powi(self.counts[i] as i32)
        }
    }

    impl EnvView for DecayEnv {
        fn num_resources(&self) -> usize {
            self.base.len()
        }
        fn post_count(&self, r: ResourceId) -> u32 {
            self.counts[r.index()]
        }
        fn instability(&self, r: ResourceId) -> f64 {
            self.inst(r.index())
        }
        fn quality(&self, r: ResourceId) -> f64 {
            1.0 - self.inst(r.index())
        }
        fn mean_quality(&self) -> f64 {
            let n = self.base.len() as f64;
            (0..self.base.len())
                .map(|i| 1.0 - self.inst(i))
                .sum::<f64>()
                / n
        }
        fn popularity_weight(&self, _r: ResourceId) -> f64 {
            1.0
        }
        fn planning_marginal(&self, _r: ResourceId, _k: u32) -> f64 {
            0.0
        }
    }

    impl AllocationEnv for DecayEnv {
        fn tag_once(&mut self, r: ResourceId, _rng: &mut StdRng) {
            self.counts[r.index()] += 1;
        }
    }

    #[test]
    fn picks_most_unstable_first() {
        let env = DecayEnv {
            base: vec![0.2, 0.9, 0.5],
            counts: vec![0; 3],
            decay: 0.5,
        };
        let mut mu = MostUnstable::new();
        let mut rng = StdRng::seed_from_u64(1);
        mu.init(&env, 0, &mut rng);
        assert_eq!(mu.choose(&env, 1, &mut rng), vec![ResourceId(1)]);
    }

    #[test]
    fn batch_does_not_double_select_one_resource() {
        let env = DecayEnv {
            base: vec![0.9, 0.8, 0.7],
            counts: vec![0; 3],
            decay: 0.5,
        };
        let mut mu = MostUnstable::new();
        let mut rng = StdRng::seed_from_u64(2);
        mu.init(&env, 0, &mut rng);
        let chosen = mu.choose(&env, 3, &mut rng);
        let mut ids: Vec<u32> = chosen.iter().map(|r| r.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn refreshed_instability_reorders_the_queue() {
        let mut env = DecayEnv {
            base: vec![0.9, 0.6],
            counts: vec![0; 2],
            decay: 0.1, // one post crushes instability
        };
        let mut mu = MostUnstable::new();
        let mut rng = StdRng::seed_from_u64(3);
        mu.init(&env, 0, &mut rng);

        let first = mu.choose(&env, 1, &mut rng);
        assert_eq!(first, vec![ResourceId(0)]);
        env.tag_once(ResourceId(0), &mut rng);
        mu.notify_update(&env, ResourceId(0));

        // Resource 0 now has instability 0.09 < resource 1's 0.6.
        let second = mu.choose(&env, 1, &mut rng);
        assert_eq!(second, vec![ResourceId(1)]);
    }

    #[test]
    fn full_run_equalizes_instability_better_than_neglect() {
        let mut env = DecayEnv {
            base: vec![0.9, 0.9, 0.9, 0.1],
            counts: vec![0; 4],
            decay: 0.7,
        };
        let mut mu = MostUnstable::new();
        let mut rng = StdRng::seed_from_u64(4);
        let report = crate::framework::Framework {
            batch_size: 2,
            record_every: 10,
        }
        .run(&mut env, &mut mu, 30, &mut rng);
        assert_eq!(report.spent, 30);
        // The already-stable resource must receive the fewest tasks.
        let alloc = &report.allocation;
        assert!(alloc[3] < alloc[0] && alloc[3] < alloc[1] && alloc[3] < alloc[2]);
        // Quality must improve (monotone decay world).
        assert!(report.improvement() > 0.0);
    }

    #[test]
    fn empty_env_returns_empty() {
        let env = DecayEnv {
            base: vec![],
            counts: vec![],
            decay: 0.5,
        };
        let mut mu = MostUnstable::new();
        let mut rng = StdRng::seed_from_u64(5);
        mu.init(&env, 0, &mut rng);
        assert!(mu.choose(&env, 2, &mut rng).is_empty());
    }
}
