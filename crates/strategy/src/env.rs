//! The environment traits strategies operate against.
//!
//! [`EnvView`] is the read-only face: exactly the statistics UPDATE()
//! maintains in Algorithm 1. [`AllocationEnv`] adds the one mutation the
//! framework performs — issuing a tagging task and folding in its result.
//! Both the pure simulator ([`crate::simenv::SimWorld`]) and the full iTag
//! engine implement them, so every strategy runs unchanged in either.

use itag_model::ids::ResourceId;
use rand::rngs::StdRng;

/// Read-only view of the tagging state.
pub trait EnvView {
    /// Number of resources `n`.
    fn num_resources(&self) -> usize;

    /// Current post count `k_i` of `r` (initial `c_i` plus allocated).
    fn post_count(&self, r: ResourceId) -> u32;

    /// Observable instability `1 − q_i(k_i)` under the configured metric.
    fn instability(&self, r: ResourceId) -> f64;

    /// Current quality `q_i(k_i)`.
    fn quality(&self, r: ResourceId) -> f64;

    /// Dataset quality `q(R, k⃗)` (mean over resources).
    fn mean_quality(&self) -> f64;

    /// Relative weight with which free-choice taggers pick `r`.
    fn popularity_weight(&self, r: ResourceId) -> f64;

    /// Projected quality gain of giving `r` its `(k+1)`-th post, per the
    /// environment's gain model (oracle curves in simulation benchmarks,
    /// fitted curves in deployable mode). Only OPT consumes this.
    fn planning_marginal(&self, r: ResourceId, k: u32) -> f64;
}

/// A world the framework can act on.
pub trait AllocationEnv: EnvView {
    /// Issues one tagging task for `r` and folds the resulting post into
    /// the statistics (Algorithm 1 steps 4–6 for a single resource).
    fn tag_once(&mut self, r: ResourceId, rng: &mut StdRng);
}

/// Iterator over all resource ids of an environment.
pub fn resource_ids(env: &dyn EnvView) -> impl Iterator<Item = ResourceId> + '_ {
    (0..env.num_resources() as u32).map(ResourceId)
}
