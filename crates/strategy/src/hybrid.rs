//! FP-MU — the hybrid strategy.
//!
//! Table I: "use FP first, then use MU. Pro: most effective in improving
//! tag quality of R."
//!
//! The FP phase levels the field (every resource reaches a base of posts
//! so its rfd is *measurable*); the MU phase then spends the rest of the
//! budget where the rfd is still moving. The switch rule is configurable —
//! the DESIGN.md ablation sweeps it.

use crate::env::{resource_ids, EnvView};
use crate::fp::FewestPosts;
use crate::framework::ChooseResources;
use crate::mu::MostUnstable;
use itag_model::ids::ResourceId;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// When to hand over from FP to MU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SwitchRule {
    /// Switch once every resource has at least this many posts (the
    /// natural choice: a stability window's worth).
    MinPosts(u32),
    /// Switch after this fraction of the budget is spent (0.0–1.0).
    BudgetFraction(f64),
}

/// The FP-MU strategy.
#[derive(Debug, Clone)]
pub struct FpMu {
    fp: FewestPosts,
    mu: MostUnstable,
    rule: SwitchRule,
    switched: bool,
    issued: u32,
    budget: u32,
}

impl FpMu {
    pub fn new(rule: SwitchRule) -> Self {
        if let SwitchRule::BudgetFraction(f) = rule {
            assert!((0.0..=1.0).contains(&f), "budget fraction must be in [0,1]");
        }
        FpMu {
            fp: FewestPosts::new(),
            mu: MostUnstable::new(),
            rule,
            switched: false,
            issued: 0,
            budget: 0,
        }
    }

    /// Default rule: FP until every resource has `window`-many posts —
    /// i.e. until every rfd is measurable by the stability metric.
    pub fn with_min_posts(min_posts: u32) -> Self {
        FpMu::new(SwitchRule::MinPosts(min_posts))
    }

    /// True once MU has taken over (exposed for monitoring).
    pub fn in_mu_phase(&self) -> bool {
        self.switched
    }

    fn should_switch(&self, env: &dyn EnvView) -> bool {
        match self.rule {
            SwitchRule::MinPosts(t) => resource_ids(env).all(|r| env.post_count(r) >= t),
            SwitchRule::BudgetFraction(f) => {
                self.budget > 0 && (self.issued as f64) >= f * self.budget as f64
            }
        }
    }
}

impl ChooseResources for FpMu {
    fn name(&self) -> &str {
        "FP-MU"
    }

    fn init(&mut self, env: &dyn EnvView, budget: u32, rng: &mut StdRng) {
        self.switched = false;
        self.issued = 0;
        self.budget = budget;
        self.fp.init(env, budget, rng);
        self.mu.init(env, budget, rng);
    }

    fn choose(&mut self, env: &dyn EnvView, batch: usize, rng: &mut StdRng) -> Vec<ResourceId> {
        if !self.switched && self.should_switch(env) {
            self.switched = true;
            // MU's heap was fed by notify_update throughout the FP phase,
            // so it takes over with fresh instabilities.
        }
        let chosen = if self.switched {
            self.mu.choose(env, batch, rng)
        } else {
            self.fp.choose(env, batch, rng)
        };
        self.issued += chosen.len() as u32;
        chosen
    }

    fn notify_update(&mut self, env: &dyn EnvView, r: ResourceId) {
        // Both phases observe every landed post so the inactive heap stays
        // warm for (or after) the handover.
        self.fp.notify_update(env, r);
        self.mu.notify_update(env, r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::AllocationEnv;
    use rand::SeedableRng;

    /// Instability 1 until 3 posts, then decays with posts.
    struct World {
        counts: Vec<u32>,
    }

    impl EnvView for World {
        fn num_resources(&self) -> usize {
            self.counts.len()
        }
        fn post_count(&self, r: ResourceId) -> u32 {
            self.counts[r.index()]
        }
        fn instability(&self, r: ResourceId) -> f64 {
            let c = self.counts[r.index()];
            if c < 3 {
                1.0
            } else {
                1.0 / (c as f64 - 1.0)
            }
        }
        fn quality(&self, r: ResourceId) -> f64 {
            1.0 - self.instability(r)
        }
        fn mean_quality(&self) -> f64 {
            let n = self.counts.len() as f64;
            (0..self.counts.len())
                .map(|i| 1.0 - self.instability(ResourceId(i as u32)))
                .sum::<f64>()
                / n
        }
        fn popularity_weight(&self, _r: ResourceId) -> f64 {
            1.0
        }
        fn planning_marginal(&self, _r: ResourceId, _k: u32) -> f64 {
            0.0
        }
    }

    impl AllocationEnv for World {
        fn tag_once(&mut self, r: ResourceId, _rng: &mut StdRng) {
            self.counts[r.index()] += 1;
        }
    }

    #[test]
    fn fp_phase_levels_before_mu_takes_over() {
        let mut env = World {
            counts: vec![0, 6, 0, 2],
        };
        let mut s = FpMu::with_min_posts(3);
        let mut rng = StdRng::seed_from_u64(1);
        let fw = crate::framework::Framework {
            batch_size: 1,
            record_every: 100,
        };
        // 7 tasks level the (0,2)-post resources to 3; the 8th is the first
        // choose() after levelling, which is when the switch rule is
        // evaluated (switching happens at batch boundaries).
        let _ = fw.run(&mut env, &mut s, 8, &mut rng);
        assert!(env.counts.iter().all(|&c| c >= 3), "{:?}", env.counts);
        assert!(s.in_mu_phase());
    }

    #[test]
    fn budget_fraction_rule_switches_mid_run() {
        let mut env = World { counts: vec![0; 4] };
        let mut s = FpMu::new(SwitchRule::BudgetFraction(0.5));
        let mut rng = StdRng::seed_from_u64(2);
        let fw = crate::framework::Framework {
            batch_size: 1,
            record_every: 100,
        };
        let _ = fw.run(&mut env, &mut s, 20, &mut rng);
        assert!(s.in_mu_phase());
    }

    #[test]
    fn never_switches_when_threshold_unreachable() {
        let mut env = World {
            counts: vec![0; 10],
        };
        let mut s = FpMu::with_min_posts(100);
        let mut rng = StdRng::seed_from_u64(3);
        let fw = crate::framework::Framework {
            batch_size: 2,
            record_every: 100,
        };
        let _ = fw.run(&mut env, &mut s, 30, &mut rng);
        assert!(!s.in_mu_phase());
        // Pure-FP behaviour: counts levelled to 3 each.
        assert!(env.counts.iter().all(|&c| c == 3), "{:?}", env.counts);
    }

    #[test]
    #[should_panic(expected = "budget fraction")]
    fn invalid_fraction_rejected() {
        let _ = FpMu::new(SwitchRule::BudgetFraction(1.5));
    }
}
