//! Schedule-explorer models of the repo's two hand-rolled blocking
//! protocols: the `pipelined_map` handoff/back-pressure/poisoning
//! machinery in `itag_crowd::parallel`, and the store's group-commit
//! leader election (`itag_store`'s `commit`/`lead_group`).
//!
//! Each test re-states the protocol's state machine over the model
//! primitives from [`itag_crowd::model`] and lets the explorer run every
//! schedule within a preemption bound. The models are shape-faithful,
//! not line-faithful: the same locks, the same wait predicates, the same
//! notify points — with the pure computation between them elided, since
//! it cannot affect scheduling.
//!
//! Panic-driven unwinds are modeled as "set the poison/broken flag,
//! notify, and stop cooperating" (what `PoisonOnPanic` / `LeaderAbort`
//! do in their `Drop`), because in model-land a panic *is* the failure
//! signal. A thread that would really propagate the panic instead
//! `return`s; the invariant under test is that every surviving thread
//! terminates — any wait loop missing its poison check shows up as a
//! deadlock, which the explorer reports.

use itag_crowd::model::{explore, Config, Env};

fn cfg(preemption_bound: usize) -> Config {
    Config {
        preemption_bound,
        ..Config::default()
    }
}

// ---------------------------------------------------------------------
// pipelined_map
// ---------------------------------------------------------------------

/// Shared pipeline state, exactly the fields of `PipelineState` plus the
/// logs the invariants are asserted over.
struct PipeState {
    staged: Vec<Option<usize>>,
    next_merge: usize,
    next_order: usize,
    poisoned: bool,
    order_log: Vec<usize>,
    merge_log: Vec<usize>,
}

#[derive(Clone, Copy, PartialEq)]
enum Death {
    None,
    /// The worker that claimed this item unwinds during `work(i, ..)`.
    Worker(usize),
    /// The merger unwinds before merging this item.
    Merger(usize),
}

/// Builds the pipeline model inside `env`: `workers` worker threads with
/// a static item split (thread `w` owns items `w, w+workers, ...` — the
/// claim cursor is elided so the explorer spends its schedules on the
/// handoff, not on symmetric claim races) and one merger, over `n` items
/// with back-pressure window `depth`.
fn run_pipeline_model(env: &Env, n: usize, workers: usize, depth: usize, die: Death) {
    let state = env.mutex(PipeState {
        staged: (0..n).map(|_| None).collect(),
        next_merge: 0,
        next_order: 0,
        poisoned: false,
        order_log: Vec::new(),
        merge_log: Vec::new(),
    });
    let cv = env.condvar();

    let mut joins = Vec::new();

    // Merger: drain items in input order, windowed by `depth`.
    {
        let state = state.clone();
        let cv = cv.clone();
        joins.push(env.spawn(move || {
            for i in 0..n {
                if die == Death::Merger(i) {
                    // PoisonOnPanic on the merger thread.
                    state.lock().poisoned = true;
                    cv.notify_all();
                    return;
                }
                {
                    let mut s = state.lock();
                    loop {
                        if s.poisoned {
                            return;
                        }
                        if s.staged[i].take().is_some() {
                            s.next_merge = i + 1;
                            s.merge_log.push(i);
                            break;
                        }
                        cv.wait(&mut s);
                    }
                }
                // Workers blocked on back-pressure can move again.
                cv.notify_all();
            }
        }));
    }

    for w in 0..workers {
        let state = state.clone();
        let cv = cv.clone();
        joins.push(env.spawn(move || {
            let mut i = w;
            while i < n {
                if die == Death::Worker(i) {
                    // PoisonOnPanic on a worker thread.
                    state.lock().poisoned = true;
                    cv.notify_all();
                    return;
                }
                // Ordered handoff: wait for our turn through `order`.
                {
                    let mut s = state.lock();
                    while s.next_order != i {
                        if s.poisoned {
                            return;
                        }
                        cv.wait(&mut s);
                    }
                    if s.poisoned {
                        return;
                    }
                    s.order_log.push(i);
                    s.next_order += 1;
                }
                cv.notify_all();
                // (`post` runs here in the real code — pure computation.)
                // Deposit, at most `depth` items ahead of the merger.
                {
                    let mut s = state.lock();
                    while i >= s.next_merge + depth {
                        if s.poisoned {
                            return;
                        }
                        cv.wait(&mut s);
                    }
                    if s.poisoned {
                        return;
                    }
                    s.staged[i] = Some(i);
                    let backlog = s.staged.iter().filter(|x| x.is_some()).count();
                    assert!(
                        backlog <= depth,
                        "staged backlog {backlog} exceeds depth {depth}"
                    );
                }
                cv.notify_all();
                i += workers;
            }
        }));
    }

    // Every thread must terminate under every schedule — a missed poison
    // check or lost notify here is a deadlock the explorer reports.
    for j in joins {
        j.join();
    }

    let s = state.lock();
    match die {
        Death::None => {
            assert!(!s.poisoned);
            let want: Vec<usize> = (0..n).collect();
            assert_eq!(s.order_log, want, "order() must run in strict input order");
            assert_eq!(s.merge_log, want, "merge() must run in strict input order");
            assert!(s.staged.iter().all(Option::is_none));
        }
        Death::Worker(_) | Death::Merger(_) => {
            assert!(s.poisoned, "a death must raise the poison flag");
            // Whatever did get ordered/merged still happened in order.
            assert!(s.order_log.windows(2).all(|w| w[1] == w[0] + 1));
            assert!(s.merge_log.windows(2).all(|w| w[1] == w[0] + 1));
        }
    }
}

#[test]
fn pipeline_handoff_is_ordered_and_bounded_under_every_schedule() {
    // 2 workers + merger over 2 items at depth 1, exhaustive at
    // preemption bound 2: strict order/merge order and the back-pressure
    // window hold on every schedule, and everything terminates. (Both
    // contended mechanisms engage even at this size: worker 1 must wait
    // for its order turn, and its deposit is blocked until the merger
    // consumes item 0.)
    let r = explore(cfg(2), |env| run_pipeline_model(env, 2, 2, 1, Death::None));
    assert!(r.complete, "schedule space not exhausted: {r:?}");
    assert!(r.executions > 10, "model too small to mean anything: {r:?}");
}

#[test]
fn pipeline_worker_death_poisons_and_every_peer_terminates() {
    // Worker dies on item 1: the merger waits for a deposit that will
    // never come and the other worker waits for an order turn that will
    // never come. The poison checks in both wait loops must wake and
    // release them on every schedule.
    let r = explore(cfg(2), |env| {
        run_pipeline_model(env, 3, 2, 1, Death::Worker(1))
    });
    assert!(r.complete, "schedule space not exhausted: {r:?}");
}

#[test]
fn pipeline_merger_death_poisons_and_every_worker_terminates() {
    // Merger dies before item 1: a worker stuck in the back-pressure
    // wait (`i >= next_merge + depth` stays true forever) must be
    // released by the poison check on every schedule.
    let r = explore(cfg(2), |env| {
        run_pipeline_model(env, 2, 2, 1, Death::Merger(1))
    });
    assert!(r.complete, "schedule space not exhausted: {r:?}");
}

// ---------------------------------------------------------------------
// Group commit
// ---------------------------------------------------------------------

/// The commit-mutex state, mirroring the store's `CommitState`.
struct GcState {
    next_lsn: u64,
    queue: Vec<u64>,
    leader_active: bool,
    broken: bool,
    applied_lsn: u64,
    applied_log: Vec<u64>,
    ok: usize,
    err: usize,
}

#[derive(Clone, Copy, PartialEq)]
enum LeaderFate {
    Lives,
    /// The leader whose group contains this LSN unwinds between draining
    /// the queue and the fsync — with the `LeaderAbort` guard running.
    DiesWithGuard(u64),
    /// Same death, but the guard is elided (the pre-guard bug).
    DiesBare(u64),
}

/// Models `Store::commit` for `committers` concurrent callers: enqueue
/// under the commit mutex, then loop — return once applied, error once
/// broken, wait while a leader is active, else become the leader, drain
/// the queue, "fsync" outside the lock, apply, report back, wake all.
fn run_group_commit_model(env: &Env, committers: usize, fate: LeaderFate) {
    let state = env.mutex(GcState {
        next_lsn: 1,
        queue: Vec::new(),
        leader_active: false,
        broken: false,
        applied_lsn: 0,
        applied_log: Vec::new(),
        ok: 0,
        err: 0,
    });
    let cv = env.condvar();

    let mut joins = Vec::new();
    for _ in 0..committers {
        let state = state.clone();
        let cv = cv.clone();
        let env2 = env.clone();
        joins.push(env.spawn(move || {
            let lsn = {
                let mut s = state.lock();
                let l = s.next_lsn;
                s.next_lsn += 1;
                s.queue.push(l);
                l
            };
            loop {
                let group: Vec<u64> = {
                    let mut s = state.lock();
                    loop {
                        // applied beats broken: a batch durably applied by
                        // an earlier group succeeded even if a later group
                        // broke the store.
                        if s.applied_lsn >= lsn {
                            s.ok += 1;
                            return;
                        }
                        if s.broken {
                            s.err += 1;
                            return;
                        }
                        if s.leader_active {
                            cv.wait(&mut s);
                            continue;
                        }
                        break;
                    }
                    s.leader_active = true;
                    s.queue.drain(..).collect()
                };
                assert!(
                    !group.is_empty(),
                    "a leader elected with applied_lsn < lsn must find its own entry queued"
                );

                // -- leader is between drain and fsync --
                match fate {
                    LeaderFate::DiesWithGuard(victim) if group.contains(&victim) => {
                        // LeaderAbort::drop: un-elect, break the store,
                        // wake everyone, then let the panic leave commit.
                        {
                            let mut s = state.lock();
                            s.leader_active = false;
                            s.broken = true;
                        }
                        cv.notify_all();
                        return;
                    }
                    LeaderFate::DiesBare(victim) if group.contains(&victim) => {
                        // The unguarded bug: the leader unwinds with
                        // leader_active still set. Followers wait forever.
                        return;
                    }
                    _ => {}
                }
                // The fsync + apply, outside the commit mutex.
                env2.yield_now();

                let mut s = state.lock();
                s.leader_active = false;
                for &l in &group {
                    assert!(
                        !s.applied_log.contains(&l),
                        "lsn {l} drained by two different groups"
                    );
                    s.applied_log.push(l);
                }
                let last = *group.last().expect("checked non-empty");
                s.applied_lsn = s.applied_lsn.max(last);
                drop(s);
                cv.notify_all();
                // Loop back: the applied check returns Ok for our lsn.
            }
        }));
    }

    for j in joins {
        j.join();
    }

    let s = state.lock();
    // Applied LSNs are strictly increasing: groups drain in enqueue
    // order and leaders serialize on `leader_active`.
    assert!(
        s.applied_log.windows(2).all(|w| w[0] < w[1]),
        "applies went backwards: {:?}",
        s.applied_log
    );
    match fate {
        LeaderFate::Lives => {
            assert!(!s.broken);
            assert_eq!(s.ok, committers, "every committer must succeed");
            assert_eq!(s.applied_log.len(), committers, "every lsn applied once");
        }
        LeaderFate::DiesWithGuard(_) => {
            // One committer died as leader; every survivor must have come
            // back with a definite outcome (no thread left waiting).
            assert_eq!(s.ok + s.err, committers - 1);
            assert!(s.broken, "the abort guard must break the store");
        }
        LeaderFate::DiesBare(_) => unreachable!("the bare death always deadlocks"),
    }
}

#[test]
fn group_commit_applies_every_batch_exactly_once_in_lsn_order() {
    // 3 committers, exhaustive at preemption bound 2: exactly one leader
    // at a time, no LSN drained twice, applies monotone, everyone
    // returns. This covers both the solo-group and batched-group shapes
    // (which one happens is a pure scheduling outcome).
    let r = explore(cfg(2), |env| {
        run_group_commit_model(env, 3, LeaderFate::Lives)
    });
    assert!(r.complete, "schedule space not exhausted: {r:?}");
    assert!(r.executions > 10, "model too small to mean anything: {r:?}");
}

#[test]
fn group_commit_leader_death_with_abort_guard_releases_followers() {
    // The leader that drained LSN 1 dies between drain and fsync, with
    // the LeaderAbort protocol. On every schedule the followers must
    // observe `broken` and return an error instead of waiting on
    // `leader_active` forever.
    let r = explore(cfg(2), |env| {
        run_group_commit_model(env, 3, LeaderFate::DiesWithGuard(1))
    });
    assert!(r.complete, "schedule space not exhausted: {r:?}");
}

#[test]
#[should_panic(expected = "deadlock")]
fn group_commit_leader_death_without_guard_wedges_followers() {
    // Drop the guard and the same death wedges the store: followers wait
    // on `leader_active` that no one will ever clear. The explorer must
    // find that schedule — this test is the proof that `LeaderAbort` is
    // load-bearing.
    explore(cfg(2), |env| {
        run_group_commit_model(env, 3, LeaderFate::DiesBare(1))
    });
}
