//! Tagging tasks (HITs) and their lifecycle.

use itag_model::ids::{ProjectId, ResourceId, TagId, TaggerId};
use serde::{Deserialize, Serialize};

/// Platform-assigned task identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub u64);

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TaskId{}", self.0)
    }
}

/// Lifecycle of a task. Legal transitions:
/// `Published → Assigned → Submitted → {Approved, Rejected}`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskState {
    /// Visible on the platform, waiting for a worker.
    Published,
    /// Picked up by a worker.
    Assigned { worker: TaggerId },
    /// Worker submitted tags; awaiting the provider's decision.
    Submitted { worker: TaggerId, tags: Vec<TagId> },
    /// Provider approved; worker was paid.
    Approved { worker: TaggerId },
    /// Provider rejected; escrow refunded.
    Rejected { worker: TaggerId },
}

impl TaskState {
    /// Short state name for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            TaskState::Published => "published",
            TaskState::Assigned { .. } => "assigned",
            TaskState::Submitted { .. } => "submitted",
            TaskState::Approved { .. } => "approved",
            TaskState::Rejected { .. } => "rejected",
        }
    }

    /// True for `Approved` / `Rejected`.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            TaskState::Approved { .. } | TaskState::Rejected { .. }
        )
    }
}

/// One tagging task.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaggingTask {
    pub id: TaskId,
    pub project: ProjectId,
    pub resource: ResourceId,
    pub pay_cents: u32,
    pub state: TaskState,
    /// Tick the task was published at.
    pub published_at: u64,
}

/// A completed submission handed back to iTag for aggregation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskResult {
    pub task: TaskId,
    pub project: ProjectId,
    pub resource: ResourceId,
    pub worker: TaggerId,
    pub tags: Vec<TagId>,
    /// Tick of submission.
    pub submitted_at: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_names_and_terminality() {
        let w = TaggerId(1);
        assert_eq!(TaskState::Published.name(), "published");
        assert!(!TaskState::Published.is_terminal());
        assert!(!TaskState::Assigned { worker: w }.is_terminal());
        assert!(!TaskState::Submitted {
            worker: w,
            tags: vec![TagId(0)]
        }
        .is_terminal());
        assert!(TaskState::Approved { worker: w }.is_terminal());
        assert!(TaskState::Rejected { worker: w }.is_terminal());
    }

    #[test]
    fn task_serde_roundtrip() {
        let t = TaggingTask {
            id: TaskId(4),
            project: ProjectId(1),
            resource: ResourceId(2),
            pay_cents: 15,
            state: TaskState::Submitted {
                worker: TaggerId(9),
                tags: vec![TagId(3), TagId(4)],
            },
            published_at: 77,
        };
        let bytes = itag_store::serbin::to_bytes(&t).unwrap();
        let back: TaggingTask = itag_store::serbin::from_bytes(&bytes).unwrap();
        assert_eq!(back, t);
    }
}
