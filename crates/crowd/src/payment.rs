//! Escrow payment ledger.
//!
//! "The Quality Manager will then offer the unit of incentive to taggers,
//! once a tag has been approved by the provider" (Section III-B).
//! Publishing a task escrows its pay from the project; approval releases
//! it to the worker; rejection refunds the project. Every cent is
//! accounted — the conservation invariant is property-tested.

use crate::{CrowdError, Result};
use itag_model::ids::{ProjectId, TaggerId};
use itag_store::codec::FxHashMap;
use serde::{Deserialize, Serialize};

/// Project escrow + worker balances.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Ledger {
    escrow: FxHashMap<u32, u64>,
    balances: FxHashMap<u32, u64>,
    total_escrowed: u64,
    total_paid: u64,
    total_refunded: u64,
}

impl Ledger {
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Locks `cents` of the project's budget for a published task.
    pub fn escrow(&mut self, project: ProjectId, cents: u64) {
        *self.escrow.entry(project.0).or_insert(0) += cents;
        self.total_escrowed += cents;
    }

    /// Releases `cents` from the project's escrow to `worker` (approval).
    // lint: allow(panic-path)
    pub fn release(&mut self, project: ProjectId, worker: TaggerId, cents: u64) -> Result<()> {
        let have = self.escrow.get(&project.0).copied().unwrap_or(0);
        if have < cents {
            return Err(CrowdError::InsufficientEscrow {
                project: project.0,
                want: cents,
                have,
            });
        }
        *self.escrow.get_mut(&project.0).expect("checked") -= cents;
        *self.balances.entry(worker.0).or_insert(0) += cents;
        self.total_paid += cents;
        Ok(())
    }

    /// Returns `cents` from escrow to the provider (rejection).
    // lint: allow(panic-path)
    pub fn refund(&mut self, project: ProjectId, cents: u64) -> Result<()> {
        let have = self.escrow.get(&project.0).copied().unwrap_or(0);
        if have < cents {
            return Err(CrowdError::InsufficientEscrow {
                project: project.0,
                want: cents,
                have,
            });
        }
        *self.escrow.get_mut(&project.0).expect("checked") -= cents;
        self.total_refunded += cents;
        Ok(())
    }

    /// Current escrow of a project.
    pub fn escrowed(&self, project: ProjectId) -> u64 {
        self.escrow.get(&project.0).copied().unwrap_or(0)
    }

    /// Current balance of a worker.
    pub fn balance(&self, worker: TaggerId) -> u64 {
        self.balances.get(&worker.0).copied().unwrap_or(0)
    }

    /// Lifetime totals `(escrowed, paid, refunded)`.
    pub fn totals(&self) -> (u64, u64, u64) {
        (self.total_escrowed, self.total_paid, self.total_refunded)
    }

    /// Every worker balance, sorted by worker id (deterministic view for
    /// audits and the cross-thread-count equivalence tests).
    pub fn worker_balances(&self) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = self.balances.iter().map(|(w, c)| (*w, *c)).collect();
        v.sort_unstable();
        v
    }

    /// Conservation check: everything escrowed is either still held, paid
    /// out, or refunded.
    pub fn is_balanced(&self) -> bool {
        let held: u64 = self.escrow.values().sum();
        self.total_escrowed == held + self.total_paid + self.total_refunded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const P: ProjectId = ProjectId(1);
    const W: TaggerId = TaggerId(7);

    #[test]
    fn escrow_release_refund_flow() {
        let mut l = Ledger::new();
        l.escrow(P, 100);
        assert_eq!(l.escrowed(P), 100);
        l.release(P, W, 30).unwrap();
        assert_eq!(l.balance(W), 30);
        assert_eq!(l.escrowed(P), 70);
        l.refund(P, 70).unwrap();
        assert_eq!(l.escrowed(P), 0);
        assert!(l.is_balanced());
        assert_eq!(l.totals(), (100, 30, 70));
    }

    #[test]
    fn over_release_is_rejected_without_corruption() {
        let mut l = Ledger::new();
        l.escrow(P, 10);
        let err = l.release(P, W, 11).unwrap_err();
        assert!(matches!(err, CrowdError::InsufficientEscrow { .. }));
        assert_eq!(l.escrowed(P), 10);
        assert_eq!(l.balance(W), 0);
        assert!(l.is_balanced());
    }

    #[test]
    fn unknown_project_has_zero_escrow() {
        let l = Ledger::new();
        assert_eq!(l.escrowed(ProjectId(99)), 0);
        assert_eq!(l.balance(TaggerId(99)), 0);
    }

    proptest! {
        #[test]
        fn conservation_under_random_operation_sequences(
            ops in proptest::collection::vec((0u8..3, 1u64..50), 1..200)
        ) {
            let mut l = Ledger::new();
            for (op, amount) in ops {
                match op {
                    0 => l.escrow(P, amount),
                    1 => { let _ = l.release(P, W, amount); }
                    _ => { let _ = l.refund(P, amount); }
                }
                prop_assert!(l.is_balanced());
            }
        }
    }
}
