//! Workers and worker pools.

use crate::behavior::TaggerBehavior;
use itag_model::ids::TaggerId;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-worker outcome counters; drives the approval rate the User Manager
/// tracks ("the ratio of providers approving the tags of a given tagger").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerStats {
    pub submitted: u32,
    pub approved: u32,
    pub rejected: u32,
    pub earned_cents: u64,
}

impl WorkerStats {
    /// Approval rate over decided tasks; 1.0 before any decision (benefit
    /// of the doubt, matching how marketplaces bootstrap new workers).
    pub fn approval_rate(&self) -> f64 {
        let decided = self.approved + self.rejected;
        if decided == 0 {
            1.0
        } else {
            self.approved as f64 / decided as f64
        }
    }
}

/// A simulated crowd worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Worker {
    pub id: TaggerId,
    pub behavior: TaggerBehavior,
    pub stats: WorkerStats,
}

impl Worker {
    pub fn new(id: TaggerId, behavior: TaggerBehavior) -> Self {
        Worker {
            id,
            behavior,
            stats: WorkerStats::default(),
        }
    }
}

/// A pool of workers with a configurable behaviour mix.
#[derive(Debug, Clone, Default)]
pub struct WorkerPool {
    workers: Vec<Worker>,
}

impl WorkerPool {
    /// Builds `n` workers by sampling behaviours from `mix`
    /// (`(behavior, weight)` pairs).
    ///
    /// # Panics
    /// Panics on an empty mix or all-zero weights.
    pub fn from_mix(n: usize, mix: &[(TaggerBehavior, f64)], rng: &mut StdRng) -> Self {
        assert!(!mix.is_empty(), "worker mix must not be empty");
        let total: f64 = mix.iter().map(|(_, w)| *w).sum();
        assert!(total > 0.0, "worker mix weights must not all be zero");
        let mut workers = Vec::with_capacity(n);
        for i in 0..n {
            let mut u = rng.gen::<f64>() * total;
            let mut behavior = mix[mix.len() - 1].0;
            for (b, w) in mix {
                if u < *w {
                    behavior = *b;
                    break;
                }
                u -= w;
            }
            workers.push(Worker::new(TaggerId(i as u32), behavior));
        }
        WorkerPool { workers }
    }

    /// The default demo crowd: mostly casual taggers, some diligent, a few
    /// sloppy ones and a thin slice of spammers.
    pub fn demo_crowd(n: usize, rng: &mut StdRng) -> Self {
        WorkerPool::from_mix(
            n,
            &[
                (TaggerBehavior::casual(), 0.55),
                (TaggerBehavior::diligent(), 0.25),
                (TaggerBehavior::sloppy(), 0.15),
                (TaggerBehavior::spammer(), 0.05),
            ],
            rng,
        )
    }

    /// An all-honest pool (noise experiments override per-worker fields).
    pub fn uniform(n: usize, behavior: TaggerBehavior) -> Self {
        WorkerPool {
            workers: (0..n)
                .map(|i| Worker::new(TaggerId(i as u32), behavior))
                .collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.workers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Appends a worker (ids are expected to stay dense; used by the
    /// audience platform's on-demand registration).
    pub fn push(&mut self, worker: Worker) {
        debug_assert_eq!(worker.id.index(), self.workers.len(), "dense worker ids");
        self.workers.push(worker);
    }

    pub fn get(&self, id: TaggerId) -> Option<&Worker> {
        self.workers.get(id.index())
    }

    pub fn get_mut(&mut self, id: TaggerId) -> Option<&mut Worker> {
        self.workers.get_mut(id.index())
    }

    pub fn iter(&self) -> impl Iterator<Item = &Worker> {
        self.workers.iter()
    }

    /// Fraction of workers whose approval rate is at least `threshold` —
    /// the User Manager's "approval rate of taggers … at a reliable level".
    pub fn reliable_fraction(&self, threshold: f64) -> f64 {
        if self.workers.is_empty() {
            return 0.0;
        }
        let ok = self
            .workers
            .iter()
            .filter(|w| w.stats.approval_rate() >= threshold)
            .count();
        ok as f64 / self.workers.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn approval_rate_boundaries() {
        let mut s = WorkerStats::default();
        assert_eq!(s.approval_rate(), 1.0);
        s.approved = 3;
        s.rejected = 1;
        assert!((s.approval_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn mix_produces_requested_share() {
        let mut rng = StdRng::seed_from_u64(1);
        let pool = WorkerPool::from_mix(
            2000,
            &[
                (TaggerBehavior::casual(), 0.8),
                (TaggerBehavior::spammer(), 0.2),
            ],
            &mut rng,
        );
        let spammers = pool.iter().filter(|w| w.behavior.spammer).count();
        let frac = spammers as f64 / 2000.0;
        assert!((frac - 0.2).abs() < 0.05, "spammer share {frac}");
    }

    #[test]
    fn worker_ids_are_dense() {
        let mut rng = StdRng::seed_from_u64(2);
        let pool = WorkerPool::demo_crowd(10, &mut rng);
        for (i, w) in pool.iter().enumerate() {
            assert_eq!(w.id, TaggerId(i as u32));
        }
        assert!(pool.get(TaggerId(9)).is_some());
        assert!(pool.get(TaggerId(10)).is_none());
    }

    #[test]
    fn reliable_fraction_counts_thresholds() {
        let mut pool = WorkerPool::uniform(2, TaggerBehavior::casual());
        pool.get_mut(TaggerId(0)).unwrap().stats = WorkerStats {
            submitted: 10,
            approved: 9,
            rejected: 1,
            earned_cents: 90,
        };
        pool.get_mut(TaggerId(1)).unwrap().stats = WorkerStats {
            submitted: 10,
            approved: 2,
            rejected: 8,
            earned_cents: 20,
        };
        assert!((pool.reliable_fraction(0.8) - 0.5).abs() < 1e-12);
        assert_eq!(WorkerPool::default().reliable_fraction(0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_mix_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = WorkerPool::from_mix(5, &[], &mut rng);
    }
}
