//! Provider-side approval policies.
//!
//! The demo lets providers approve/reject posts by hand (Fig. 6); at
//! simulation scale an automated stand-in is needed. The principled
//! observable policy compares a submission against the resource's current
//! rfd: tags that echo the community consensus are credible, posts with no
//! overlap (spam) are not. Early on — before a consensus exists — the
//! policy accepts, exactly like a human provider with nothing to compare
//! against.

use itag_model::ids::TagId;
use itag_quality::rfd::Rfd;
use serde::{Deserialize, Serialize};

/// How the provider decides on submitted tags.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ApprovalPolicy {
    /// Approve everything (trusting provider; the FC-era default).
    AcceptAll,
    /// Approve when at least `min_fraction` of the submitted tags appear
    /// among the resource's `top_k` most frequent tags — unless the rfd has
    /// fewer than `top_k` distinct tags yet, in which case approve.
    RfdOverlap { top_k: usize, min_fraction: f64 },
}

impl Default for ApprovalPolicy {
    /// Overlap against the top-10 consensus with a one-third bar: lenient
    /// enough for honest noise, strict enough to starve spammers.
    fn default() -> Self {
        ApprovalPolicy::RfdOverlap {
            top_k: 10,
            min_fraction: 0.34,
        }
    }
}

impl ApprovalPolicy {
    /// Decides on a submission given the resource's current rfd
    /// (pre-submission).
    pub fn decide(&self, tags: &[TagId], rfd: &Rfd) -> bool {
        match *self {
            ApprovalPolicy::AcceptAll => true,
            ApprovalPolicy::RfdOverlap {
                top_k,
                min_fraction,
            } => {
                if tags.is_empty() {
                    return false;
                }
                if rfd.distinct() < top_k {
                    return true; // no consensus to compare against yet
                }
                let top = rfd.top_k(top_k);
                let hits = tags.iter().filter(|t| top.contains(t)).count();
                hits as f64 / tags.len() as f64 >= min_fraction
            }
        }
    }

    /// Display label for reports.
    pub fn label(&self) -> String {
        match self {
            ApprovalPolicy::AcceptAll => "accept-all".into(),
            ApprovalPolicy::RfdOverlap {
                top_k,
                min_fraction,
            } => format!("rfd-overlap(top{top_k},≥{min_fraction})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rfd_with(tag_counts: &[(u32, u32)]) -> Rfd {
        let mut r = Rfd::new();
        for &(t, c) in tag_counts {
            for _ in 0..c {
                r.add_tags(&[TagId(t)]);
            }
        }
        r
    }

    #[test]
    fn accept_all_accepts_everything() {
        let p = ApprovalPolicy::AcceptAll;
        assert!(p.decide(&[TagId(999)], &Rfd::new()));
    }

    #[test]
    fn early_posts_get_benefit_of_the_doubt() {
        let p = ApprovalPolicy::default();
        let thin = rfd_with(&[(1, 2), (2, 1)]); // only 2 distinct < top 10
        assert!(p.decide(&[TagId(77)], &thin));
    }

    #[test]
    fn consensus_overlap_separates_honest_from_spam() {
        let p = ApprovalPolicy::RfdOverlap {
            top_k: 3,
            min_fraction: 0.34,
        };
        // Consensus: tags 1, 2, 3 dominate.
        let rfd = rfd_with(&[(1, 30), (2, 20), (3, 10), (4, 1), (5, 1)]);
        // Honest post: majority consensus tags.
        assert!(p.decide(&[TagId(1), TagId(3), TagId(9)], &rfd));
        // Spam: nothing from the consensus.
        assert!(!p.decide(&[TagId(100), TagId(200)], &rfd));
        // Empty submission is never approved.
        assert!(!p.decide(&[], &rfd));
    }

    #[test]
    fn boundary_fraction_is_inclusive() {
        let p = ApprovalPolicy::RfdOverlap {
            top_k: 3,
            min_fraction: 0.5,
        };
        let rfd = rfd_with(&[(1, 5), (2, 4), (3, 3), (4, 1)]);
        // Exactly half the tags overlap.
        assert!(p.decide(&[TagId(1), TagId(50)], &rfd));
        // Just below half fails.
        assert!(!p.decide(&[TagId(1), TagId(50), TagId(60)], &rfd));
    }
}
