//! # itag-crowd — crowdsourcing platform simulator
//!
//! iTag "is built upon crowdsourcing marketplaces such as MTurk" and "can
//! push tagging tasks according to the selected strategy to MTurk with the
//! help of MTurk APIs" (Section III-B). This crate is the reproduction's
//! platform substitute: an API-shaped simulator with the full HIT
//! lifecycle —
//!
//! publish → assign → submit → approve/reject → pay
//!
//! — plus worker pools with behaviour models (the paper's "noisy and
//! incomplete" taggers and outright spammers), pay-priority task queues
//! (taggers "choose projects with high pay per task"), an escrow payment
//! ledger, and approval policies for the provider side.
//!
//! The paper's own demo plan prescribes this substitution: taggers "can be
//! either real audience members, or simulated taggers in case there is not
//! enough audience participation".

pub mod approval;
pub mod audience;
pub mod behavior;
pub mod model;
pub mod parallel;
pub mod payment;
pub mod platform;
pub mod queue;
pub mod sim;
pub mod task;
pub mod worker;

pub use approval::ApprovalPolicy;
pub use behavior::TaggerBehavior;
pub use payment::Ledger;
pub use platform::{CrowdPlatform, PlatformKind, PlatformStats, SimPlatform, TagSource};
pub use task::{TaggingTask, TaskId, TaskResult, TaskState};
pub use worker::{Worker, WorkerPool, WorkerStats};

/// Errors from platform and ledger operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrowdError {
    /// The task id is unknown to the platform.
    UnknownTask(task::TaskId),
    /// The operation is invalid in the task's current state.
    BadState {
        task: task::TaskId,
        expected: &'static str,
        actual: &'static str,
    },
    /// A payment was requested that exceeds the project's escrow.
    InsufficientEscrow { project: u32, want: u64, have: u64 },
}

impl std::fmt::Display for CrowdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrowdError::UnknownTask(t) => write!(f, "unknown task {t:?}"),
            CrowdError::BadState {
                task,
                expected,
                actual,
            } => write!(f, "task {task:?} is {actual}, expected {expected}"),
            CrowdError::InsufficientEscrow {
                project,
                want,
                have,
            } => write!(f, "project {project}: escrow has {have} cents, need {want}"),
        }
    }
}

impl std::error::Error for CrowdError {}

/// Result alias for crowd operations.
pub type Result<T> = std::result::Result<T, CrowdError>;
