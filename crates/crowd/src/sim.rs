//! `CrowdSim` — a self-contained crowd harness.
//!
//! Wires a [`SimPlatform`], a [`Ledger`] and an [`ApprovalPolicy`] over a
//! dataset, so crowd behaviour can be studied (and benchmarked) without
//! the full iTag engine: publish a batch, run ticks until everything is
//! decided, inspect approval rates and payments. `itag-core` replicates
//! this wiring inside the engine with the Quality/User managers attached.

use crate::approval::ApprovalPolicy;
use crate::payment::Ledger;
use crate::platform::{CrowdPlatform, PlatformKind, SimPlatform, TagSource};
use crate::task::TaskResult;
use crate::worker::WorkerPool;
use itag_model::dataset::Dataset;
use itag_model::ids::{ProjectId, ResourceId};
use itag_model::vocab::TagDistribution;
use itag_quality::rfd::Rfd;
use rand::rngs::StdRng;

impl TagSource for Dataset {
    fn latent(&self, r: ResourceId) -> &TagDistribution {
        &self.latent[r.index()]
    }

    fn vocab_size(&self) -> u32 {
        self.dictionary.len() as u32
    }
}

/// A decided submission (after the approval policy ran).
#[derive(Debug, Clone)]
pub struct DecidedResult {
    pub result: TaskResult,
    pub approved: bool,
}

/// Platform + ledger + approval policy over a dataset.
pub struct CrowdSim {
    pub platform: SimPlatform,
    pub ledger: Ledger,
    pub policy: ApprovalPolicy,
    dataset: Dataset,
    /// Live rfds for the approval policy (approved posts only).
    rfds: Vec<Rfd>,
    project: ProjectId,
    pay_cents: u32,
}

impl CrowdSim {
    /// Builds the harness for a single project over `dataset`.
    pub fn new(
        dataset: Dataset,
        workers: WorkerPool,
        policy: ApprovalPolicy,
        pay_cents: u32,
    ) -> Self {
        let n = dataset.len();
        let mut rfds: Vec<Rfd> = (0..n).map(|_| Rfd::new()).collect();
        for p in &dataset.initial_posts {
            rfds[p.resource.index()].add_tags(&p.tags);
        }
        CrowdSim {
            platform: SimPlatform::new(PlatformKind::MTurk, workers),
            ledger: Ledger::new(),
            policy,
            dataset,
            rfds,
            project: ProjectId(0),
            pay_cents,
        }
    }

    /// The dataset under study.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The approved-post rfd of `r`.
    pub fn rfd(&self, r: ResourceId) -> &Rfd {
        &self.rfds[r.index()]
    }

    /// Publishes one task per resource in `resources`, escrowing pay.
    pub fn publish_batch(&mut self, resources: &[ResourceId]) {
        for &r in resources {
            self.platform.publish(self.project, r, self.pay_cents);
            self.ledger.escrow(self.project, self.pay_cents as u64);
        }
    }

    /// Runs ticks until every open task is submitted and decided (or
    /// `max_ticks` passes). Returns the decided submissions in order.
    pub fn run_until_quiet(&mut self, max_ticks: u32, rng: &mut StdRng) -> Vec<DecidedResult> {
        let mut decided = Vec::new();
        for _ in 0..max_ticks {
            let results = self.platform.step(&self.dataset, rng);
            for result in results {
                let i = result.resource.index();
                let approve = self.policy.decide(&result.tags, &self.rfds[i]);
                let (worker, pay) = self
                    .platform
                    .decide(result.task, approve)
                    .expect("fresh submission is decidable");
                if approve {
                    self.ledger
                        .release(self.project, worker, pay as u64)
                        .expect("pay was escrowed at publish");
                    self.rfds[i].add_tags(&result.tags);
                } else {
                    self.ledger
                        .refund(self.project, pay as u64)
                        .expect("pay was escrowed at publish");
                }
                decided.push(DecidedResult {
                    result,
                    approved: approve,
                });
            }
            if self.platform.open_tasks() == 0 {
                break;
            }
        }
        decided
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::TaggerBehavior;
    use itag_model::delicious::DeliciousConfig;
    use rand::SeedableRng;

    fn sim(policy: ApprovalPolicy, mix_spammers: bool) -> (CrowdSim, StdRng) {
        let d = DeliciousConfig::tiny(21).generate();
        let mut rng = StdRng::seed_from_u64(5);
        let workers = if mix_spammers {
            WorkerPool::from_mix(
                20,
                &[
                    (TaggerBehavior::diligent(), 0.5),
                    (TaggerBehavior::spammer(), 0.5),
                ],
                &mut rng,
            )
        } else {
            WorkerPool::uniform(20, TaggerBehavior::diligent())
        };
        (CrowdSim::new(d.dataset, workers, policy, 10), rng)
    }

    #[test]
    fn batch_flows_through_to_decisions_and_money_balances() {
        let (mut sim, mut rng) = sim(ApprovalPolicy::AcceptAll, false);
        let resources: Vec<ResourceId> = (0..30).map(ResourceId).collect();
        sim.publish_batch(&resources);
        let decided = sim.run_until_quiet(1000, &mut rng);
        assert_eq!(decided.len(), 30);
        assert!(decided.iter().all(|d| d.approved));
        assert!(sim.ledger.is_balanced());
        let (escrowed, paid, refunded) = sim.ledger.totals();
        assert_eq!(escrowed, 300);
        assert_eq!(paid, 300);
        assert_eq!(refunded, 0);
    }

    #[test]
    fn overlap_policy_starves_spammers_and_pays_honest_workers() {
        let (mut sim, mut rng) = sim(ApprovalPolicy::default(), true);
        // Seed consensus first: tag popular resources repeatedly.
        let hot: Vec<ResourceId> = (0..10).map(ResourceId).collect();
        for _ in 0..12 {
            sim.publish_batch(&hot);
            let _ = sim.run_until_quiet(1000, &mut rng);
        }
        // Measure approval rates by behaviour class.
        let mut spam_rate = (0u32, 0u32); // (approved, decided)
        let mut honest_rate = (0u32, 0u32);
        for w in sim.platform.workers().iter() {
            let decided = w.stats.approved + w.stats.rejected;
            if decided == 0 {
                continue;
            }
            if w.behavior.spammer {
                spam_rate = (spam_rate.0 + w.stats.approved, spam_rate.1 + decided);
            } else {
                honest_rate = (honest_rate.0 + w.stats.approved, honest_rate.1 + decided);
            }
        }
        let spam = spam_rate.0 as f64 / spam_rate.1.max(1) as f64;
        let honest = honest_rate.0 as f64 / honest_rate.1.max(1) as f64;
        assert!(
            honest > spam + 0.3,
            "honest approval {honest} vs spam {spam}"
        );
        assert!(sim.ledger.is_balanced());
    }

    #[test]
    fn rejected_pay_returns_to_the_provider() {
        // A policy that rejects everything once consensus exists.
        let policy = ApprovalPolicy::RfdOverlap {
            top_k: 1,
            min_fraction: 2.0, // unreachable fraction ⇒ reject all
        };
        let (mut sim, mut rng) = sim(policy, false);
        // Build up ≥1 distinct tag on resource 0 so the policy engages.
        sim.publish_batch(&[ResourceId(0)]);
        let _ = sim.run_until_quiet(1000, &mut rng);
        sim.publish_batch(&[ResourceId(0)]);
        let decided = sim.run_until_quiet(1000, &mut rng);
        assert!(!decided.last().unwrap().approved);
        let (_, _, refunded) = sim.ledger.totals();
        assert!(refunded >= 10, "refunds recorded: {refunded}");
        assert!(sim.ledger.is_balanced());
    }
}
