//! Pay-priority task queue.
//!
//! "The system allows taggers to either choose projects with high pay per
//! task or projects from providers with good approval rate" (Section
//! III-B). The queue orders published tasks by pay (descending), breaking
//! ties FIFO, which is exactly the observable marketplace behaviour:
//! better-paid HITs drain first.

use crate::task::TaskId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Max-heap by `(pay, FIFO order)`.
#[derive(Debug, Clone, Default)]
pub struct PayQueue {
    heap: BinaryHeap<(u32, Reverse<u64>, TaskId)>,
    seq: u64,
}

impl PayQueue {
    pub fn new() -> Self {
        PayQueue::default()
    }

    /// Enqueues a published task with its pay.
    pub fn push(&mut self, task: TaskId, pay_cents: u32) {
        self.heap.push((pay_cents, Reverse(self.seq), task));
        self.seq += 1;
    }

    /// Dequeues the best-paid (oldest among equals) task.
    pub fn pop(&mut self) -> Option<TaskId> {
        self.heap.pop().map(|(_, _, t)| t)
    }

    /// Tasks waiting.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no task waits.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn higher_pay_drains_first() {
        let mut q = PayQueue::new();
        q.push(TaskId(1), 5);
        q.push(TaskId(2), 20);
        q.push(TaskId(3), 10);
        assert_eq!(q.pop(), Some(TaskId(2)));
        assert_eq!(q.pop(), Some(TaskId(3)));
        assert_eq!(q.pop(), Some(TaskId(1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_pay_is_fifo() {
        let mut q = PayQueue::new();
        for i in 0..10u64 {
            q.push(TaskId(i), 7);
        }
        for i in 0..10u64 {
            assert_eq!(q.pop(), Some(TaskId(i)));
        }
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut q = PayQueue::new();
        assert!(q.is_empty());
        q.push(TaskId(0), 1);
        q.push(TaskId(1), 2);
        assert_eq!(q.len(), 2);
        let _ = q.pop();
        assert_eq!(q.len(), 1);
    }
}
