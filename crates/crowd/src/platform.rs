//! The crowdsourcing platform interface and its simulator.
//!
//! [`CrowdPlatform`] is shaped like the slice of the MTurk API iTag uses:
//! publish a HIT, poll for submissions, approve or reject. [`SimPlatform`]
//! implements it with a worker pool, a pay-priority queue and per-task
//! latency — a discrete-tick marketplace.

use crate::behavior::TaggerBehavior;
use crate::queue::PayQueue;
use crate::task::{TaggingTask, TaskId, TaskResult, TaskState};
use crate::worker::{Worker, WorkerPool};
use crate::{CrowdError, Result};
use itag_model::ids::{ProjectId, ResourceId, TaggerId};
use itag_model::vocab::TagDistribution;
use itag_store::codec::FxHashMap;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The platforms iTag can push tasks to (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformKind {
    MTurk,
    Facebook,
    CrowdFlower,
    CrowdSource,
}

impl PlatformKind {
    /// Marketplace label.
    pub fn label(self) -> &'static str {
        match self {
            PlatformKind::MTurk => "Amazon Mechanical Turk",
            PlatformKind::Facebook => "Facebook",
            PlatformKind::CrowdFlower => "CrowdFlower",
            PlatformKind::CrowdSource => "CrowdSource",
        }
    }
}

impl std::fmt::Display for PlatformKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// What a platform needs to know about resources to let workers tag them:
/// the latent distribution (simulation ground truth for behaviour models)
/// and the vocabulary size for noise. Implemented by the engine/dataset.
pub trait TagSource {
    fn latent(&self, r: ResourceId) -> &TagDistribution;
    fn vocab_size(&self) -> u32;
}

/// Aggregate platform counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlatformStats {
    pub published: u64,
    pub assigned: u64,
    pub submitted: u64,
    pub approved: u64,
    pub rejected: u64,
    pub ticks: u64,
}

/// The MTurk-shaped API surface iTag drives.
pub trait CrowdPlatform {
    /// Which marketplace this is.
    fn kind(&self) -> PlatformKind;

    /// Publishes a tagging HIT; it becomes visible to workers immediately.
    fn publish(&mut self, project: ProjectId, resource: ResourceId, pay_cents: u32) -> TaskId;

    /// Advances one tick: free workers claim queued tasks (best pay
    /// first), in-flight work progresses, finished submissions are
    /// returned for aggregation.
    fn step(&mut self, source: &dyn TagSource, rng: &mut StdRng) -> Vec<TaskResult>;

    /// Records the provider's decision on a submitted task and updates the
    /// worker's stats. Returns `(worker, pay_cents)` so the caller can move
    /// money and update approval rates.
    fn decide(&mut self, task: TaskId, approve: bool) -> Result<(TaggerId, u32)>;

    /// Looks up a task.
    fn task(&self, id: TaskId) -> Option<&TaggingTask>;

    /// Immutable view of the worker pool.
    fn workers(&self) -> &WorkerPool;

    /// Aggregate counters.
    fn stats(&self) -> PlatformStats;

    /// Tasks published but not yet submitted (queued + in flight).
    fn open_tasks(&self) -> usize;

    /// Excludes a worker from future assignments (the User Manager's
    /// reliability enforcement: "guarantees that the approval rate of
    /// taggers from crowdsourcing platforms are at a reliable level").
    /// In-flight work of the worker still completes.
    fn ban_worker(&mut self, worker: TaggerId);

    /// Number of banned workers.
    fn banned_count(&self) -> usize;

    /// Downcast hook so embedders can reach platform-specific APIs (e.g.
    /// audience submissions on a `ManualPlatform`).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

struct InFlight {
    task: TaskId,
    worker: TaggerId,
    remaining: u32,
}

/// Worker churn model: real marketplaces are not a fixed pool — workers
/// wander off and new ones arrive. Each tick, every *idle* worker leaves
/// with probability `departure`, and a new worker (behaviour drawn from
/// the mix) arrives with probability `arrival`.
#[derive(Debug, Clone)]
pub struct ChurnModel {
    pub arrival: f64,
    pub departure: f64,
    /// Behaviour mix for arrivals (`(behavior, weight)`).
    pub mix: Vec<(TaggerBehavior, f64)>,
}

impl ChurnModel {
    /// Validates rates.
    pub fn new(arrival: f64, departure: f64, mix: Vec<(TaggerBehavior, f64)>) -> Self {
        assert!((0.0..=1.0).contains(&arrival), "arrival rate in [0,1]");
        assert!((0.0..=1.0).contains(&departure), "departure rate in [0,1]");
        assert!(!mix.is_empty(), "churn mix must not be empty");
        ChurnModel {
            arrival,
            departure,
            mix,
        }
    }

    fn draw_behavior(&self, rng: &mut StdRng) -> TaggerBehavior {
        use rand::Rng;
        let total: f64 = self.mix.iter().map(|(_, w)| *w).sum();
        let mut u = rng.gen::<f64>() * total;
        for (b, w) in &self.mix {
            if u < *w {
                return *b;
            }
            u -= w;
        }
        self.mix[self.mix.len() - 1].0
    }
}

/// Discrete-tick simulated marketplace.
pub struct SimPlatform {
    kind: PlatformKind,
    tasks: FxHashMap<u64, TaggingTask>,
    queue: PayQueue,
    workers: WorkerPool,
    free_workers: VecDeque<TaggerId>,
    banned: itag_store::codec::FxHashSet<u32>,
    /// Workers that departed (idle forever unless they re-arrive as new
    /// identities).
    departed: itag_store::codec::FxHashSet<u32>,
    churn: Option<ChurnModel>,
    in_flight: Vec<InFlight>,
    next_task: u64,
    clock: u64,
    stats: PlatformStats,
}

impl SimPlatform {
    /// A marketplace of `kind` staffed by `workers`.
    pub fn new(kind: PlatformKind, workers: WorkerPool) -> Self {
        let free_workers = workers.iter().map(|w| w.id).collect();
        SimPlatform {
            kind,
            tasks: FxHashMap::default(),
            queue: PayQueue::new(),
            workers,
            free_workers,
            banned: itag_store::codec::FxHashSet::default(),
            departed: itag_store::codec::FxHashSet::default(),
            churn: None,
            in_flight: Vec::new(),
            next_task: 0,
            clock: 0,
            stats: PlatformStats::default(),
        }
    }

    /// Enables worker churn (builder style).
    pub fn with_churn(mut self, churn: ChurnModel) -> Self {
        self.churn = Some(churn);
        self
    }

    /// Workers that have departed so far.
    pub fn departed_count(&self) -> usize {
        self.departed.len()
    }

    /// Total workers ever registered (original pool + arrivals).
    pub fn total_workers(&self) -> usize {
        self.workers.len()
    }

    fn apply_churn(&mut self, rng: &mut StdRng) {
        use rand::Rng;
        let Some(churn) = self.churn.clone() else {
            return;
        };
        // Departures: each idle worker leaves independently.
        let mut staying = VecDeque::with_capacity(self.free_workers.len());
        while let Some(w) = self.free_workers.pop_front() {
            if rng.gen::<f64>() < churn.departure {
                self.departed.insert(w.0);
            } else {
                staying.push_back(w);
            }
        }
        self.free_workers = staying;
        // Arrival: at most one new worker per tick keeps the pool size
        // a bounded random walk.
        if rng.gen::<f64>() < churn.arrival {
            let id = TaggerId(self.workers.len() as u32);
            self.workers.push(Worker::new(id, churn.draw_behavior(rng)));
            self.free_workers.push_back(id);
        }
    }

    /// Current tick.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Workers currently idle.
    pub fn idle_workers(&self) -> usize {
        self.free_workers.len()
    }

    // lint: allow(panic-path)
    fn behavior_of(&self, worker: TaggerId) -> TaggerBehavior {
        self.workers
            .get(worker)
            .map(|w: &Worker| w.behavior)
            .expect("in-flight worker exists in the pool")
    }
}

impl CrowdPlatform for SimPlatform {
    fn kind(&self) -> PlatformKind {
        self.kind
    }

    fn publish(&mut self, project: ProjectId, resource: ResourceId, pay_cents: u32) -> TaskId {
        let id = TaskId(self.next_task);
        self.next_task += 1;
        self.tasks.insert(
            id.0,
            TaggingTask {
                id,
                project,
                resource,
                pay_cents,
                state: TaskState::Published,
                published_at: self.clock,
            },
        );
        self.queue.push(id, pay_cents);
        self.stats.published += 1;
        id
    }

    // lint: allow(panic-path)
    fn step(&mut self, source: &dyn TagSource, rng: &mut StdRng) -> Vec<TaskResult> {
        self.clock += 1;
        self.stats.ticks += 1;

        // 0. Churn: idle workers may leave, new workers may arrive.
        self.apply_churn(rng);

        // 1. Idle workers claim the best-paid queued tasks. Banned workers
        //    are parked aside for this tick so they neither claim tasks nor
        //    block the queue.
        let mut parked = Vec::new();
        while !self.free_workers.is_empty() && !self.queue.is_empty() {
            let worker = self.free_workers.pop_front().expect("non-empty");
            if self.banned.contains(&worker.0) {
                parked.push(worker);
                continue;
            }
            let task_id = self.queue.pop().expect("non-empty");
            let latency = self.behavior_of(worker).sample_latency(rng);
            let task = self.tasks.get_mut(&task_id.0).expect("published task");
            task.state = TaskState::Assigned { worker };
            self.stats.assigned += 1;
            self.in_flight.push(InFlight {
                task: task_id,
                worker,
                remaining: latency,
            });
        }

        self.free_workers.extend(parked);

        // 2. In-flight work progresses; finished tasks are submitted.
        let mut results = Vec::new();
        let mut still_flying = Vec::with_capacity(self.in_flight.len());
        for mut f in self.in_flight.drain(..) {
            f.remaining -= 1;
            if f.remaining > 0 {
                still_flying.push(f);
                continue;
            }
            let task = self.tasks.get_mut(&f.task.0).expect("assigned task");
            let behavior = self.workers.get(f.worker).expect("worker exists").behavior;
            let tags =
                behavior.generate_tags(source.latent(task.resource), source.vocab_size(), rng);
            task.state = TaskState::Submitted {
                worker: f.worker,
                tags: tags.clone(),
            };
            if let Some(w) = self.workers.get_mut(f.worker) {
                w.stats.submitted += 1;
            }
            self.stats.submitted += 1;
            self.free_workers.push_back(f.worker);
            results.push(TaskResult {
                task: f.task,
                project: task.project,
                resource: task.resource,
                worker: f.worker,
                tags,
                submitted_at: self.clock,
            });
        }
        self.in_flight = still_flying;
        results
    }

    fn decide(&mut self, task_id: TaskId, approve: bool) -> Result<(TaggerId, u32)> {
        let task = self
            .tasks
            .get_mut(&task_id.0)
            .ok_or(CrowdError::UnknownTask(task_id))?;
        let worker = match &task.state {
            TaskState::Submitted { worker, .. } => *worker,
            other => {
                return Err(CrowdError::BadState {
                    task: task_id,
                    expected: "submitted",
                    actual: other.name(),
                })
            }
        };
        task.state = if approve {
            TaskState::Approved { worker }
        } else {
            TaskState::Rejected { worker }
        };
        let pay = task.pay_cents;
        if let Some(w) = self.workers.get_mut(worker) {
            if approve {
                w.stats.approved += 1;
                w.stats.earned_cents += pay as u64;
            } else {
                w.stats.rejected += 1;
            }
        }
        if approve {
            self.stats.approved += 1;
        } else {
            self.stats.rejected += 1;
        }
        Ok((worker, pay))
    }

    fn task(&self, id: TaskId) -> Option<&TaggingTask> {
        self.tasks.get(&id.0)
    }

    fn workers(&self) -> &WorkerPool {
        &self.workers
    }

    fn stats(&self) -> PlatformStats {
        self.stats
    }

    fn open_tasks(&self) -> usize {
        self.queue.len() + self.in_flight.len()
    }

    fn ban_worker(&mut self, worker: TaggerId) {
        self.banned.insert(worker.0);
    }

    fn banned_count(&self) -> usize {
        self.banned.len()
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itag_model::ids::TagId;
    use rand::SeedableRng;

    struct OneLatent(TagDistribution);
    impl TagSource for OneLatent {
        fn latent(&self, _r: ResourceId) -> &TagDistribution {
            &self.0
        }
        fn vocab_size(&self) -> u32 {
            100
        }
    }

    fn source() -> OneLatent {
        OneLatent(TagDistribution::new(vec![(TagId(1), 0.6), (TagId(2), 0.4)]))
    }

    fn platform(n_workers: usize) -> SimPlatform {
        let pool = WorkerPool::uniform(n_workers, TaggerBehavior::casual());
        SimPlatform::new(PlatformKind::MTurk, pool)
    }

    #[test]
    fn full_hit_lifecycle() {
        let mut p = platform(1);
        let src = source();
        let mut rng = StdRng::seed_from_u64(1);
        let id = p.publish(ProjectId(1), ResourceId(0), 10);
        assert_eq!(p.task(id).unwrap().state, TaskState::Published);
        assert_eq!(p.open_tasks(), 1);

        // Step until the submission lands (casual latency ≤ 4).
        let mut results = Vec::new();
        for _ in 0..10 {
            results.extend(p.step(&src, &mut rng));
            if !results.is_empty() {
                break;
            }
        }
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert_eq!(r.task, id);
        assert!(!r.tags.is_empty());
        assert!(matches!(
            p.task(id).unwrap().state,
            TaskState::Submitted { .. }
        ));
        assert_eq!(p.open_tasks(), 0);

        let (worker, pay) = p.decide(id, true).unwrap();
        assert_eq!(pay, 10);
        assert_eq!(p.workers().get(worker).unwrap().stats.approved, 1);
        assert_eq!(p.workers().get(worker).unwrap().stats.earned_cents, 10);
        assert!(p.task(id).unwrap().state.is_terminal());
        assert_eq!(p.stats().approved, 1);
    }

    #[test]
    fn deciding_twice_is_a_state_error() {
        let mut p = platform(1);
        let src = source();
        let mut rng = StdRng::seed_from_u64(2);
        let id = p.publish(ProjectId(1), ResourceId(0), 5);
        for _ in 0..10 {
            if !p.step(&src, &mut rng).is_empty() {
                break;
            }
        }
        p.decide(id, false).unwrap();
        let err = p.decide(id, true).unwrap_err();
        assert!(matches!(err, CrowdError::BadState { .. }));
    }

    #[test]
    fn unknown_task_is_reported() {
        let mut p = platform(1);
        assert!(matches!(
            p.decide(TaskId(999), true),
            Err(CrowdError::UnknownTask(_))
        ));
    }

    #[test]
    fn workers_are_reused_after_submission() {
        let mut p = platform(2);
        let src = source();
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..10u32 {
            p.publish(ProjectId(1), ResourceId(i % 3), 5);
        }
        let mut done = 0;
        for _ in 0..100 {
            done += p.step(&src, &mut rng).len();
            if done == 10 {
                break;
            }
        }
        assert_eq!(done, 10, "2 workers should finish 10 tasks");
        assert_eq!(p.idle_workers(), 2);
    }

    #[test]
    fn higher_paid_tasks_are_claimed_first() {
        let mut p = platform(1);
        let src = source();
        let mut rng = StdRng::seed_from_u64(4);
        let _low = p.publish(ProjectId(1), ResourceId(0), 1);
        let high = p.publish(ProjectId(1), ResourceId(1), 50);
        // One worker: first submission must be the high-paid task.
        let mut first = None;
        for _ in 0..20 {
            let rs = p.step(&src, &mut rng);
            if let Some(r) = rs.first() {
                first = Some(r.task);
                break;
            }
        }
        assert_eq!(first, Some(high));
    }

    #[test]
    fn churn_replaces_departing_workers_and_work_still_completes() {
        let pool = WorkerPool::uniform(4, TaggerBehavior::casual());
        let churn = ChurnModel::new(0.5, 0.1, vec![(TaggerBehavior::diligent(), 1.0)]);
        let mut p = SimPlatform::new(PlatformKind::MTurk, pool).with_churn(churn);
        let src = source();
        let mut rng = StdRng::seed_from_u64(11);
        for i in 0..40u32 {
            p.publish(ProjectId(1), ResourceId(i % 3), 5);
        }
        let mut done = 0;
        for _ in 0..2_000 {
            done += p.step(&src, &mut rng).len();
            if done == 40 {
                break;
            }
        }
        assert_eq!(done, 40, "churned pool still clears the queue");
        assert!(p.departed_count() > 0, "some workers should have left");
        assert!(
            p.total_workers() > 4,
            "arrivals should have grown the registry: {}",
            p.total_workers()
        );
    }

    #[test]
    fn departed_workers_never_claim_again() {
        // Full departure, no arrivals: after the initial in-flight work
        // drains, the queue starves.
        let pool = WorkerPool::uniform(2, TaggerBehavior::casual());
        let churn = ChurnModel::new(0.0, 1.0, vec![(TaggerBehavior::casual(), 1.0)]);
        let mut p = SimPlatform::new(PlatformKind::MTurk, pool).with_churn(churn);
        let src = source();
        let mut rng = StdRng::seed_from_u64(12);
        // Everyone idles on tick 1 → departs before claiming.
        let _ = p.step(&src, &mut rng);
        p.publish(ProjectId(1), ResourceId(0), 5);
        for _ in 0..100 {
            assert!(p.step(&src, &mut rng).is_empty());
        }
        assert_eq!(p.open_tasks(), 1, "no worker left to claim the task");
        assert_eq!(p.departed_count(), 2);
    }

    #[test]
    #[should_panic(expected = "arrival rate")]
    fn churn_validates_rates() {
        let _ = ChurnModel::new(1.5, 0.0, vec![(TaggerBehavior::casual(), 1.0)]);
    }

    #[test]
    fn banned_workers_stop_claiming_tasks() {
        let mut p = platform(2);
        let src = source();
        let mut rng = StdRng::seed_from_u64(6);
        p.ban_worker(TaggerId(0));
        assert_eq!(p.banned_count(), 1);
        for _ in 0..6 {
            p.publish(ProjectId(1), ResourceId(0), 3);
        }
        let mut results = Vec::new();
        for _ in 0..200 {
            results.extend(p.step(&src, &mut rng));
            if results.len() == 6 {
                break;
            }
        }
        assert_eq!(results.len(), 6, "the remaining worker clears the queue");
        assert!(
            results.iter().all(|r| r.worker == TaggerId(1)),
            "banned worker must not submit"
        );
    }

    #[test]
    fn stats_count_the_pipeline() {
        let mut p = platform(3);
        let src = source();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..5 {
            p.publish(ProjectId(1), ResourceId(0), 2);
        }
        let mut results = Vec::new();
        for _ in 0..50 {
            results.extend(p.step(&src, &mut rng));
        }
        assert_eq!(results.len(), 5);
        let s = p.stats();
        assert_eq!(s.published, 5);
        assert_eq!(s.assigned, 5);
        assert_eq!(s.submitted, 5);
    }
}
