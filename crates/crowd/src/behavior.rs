//! Tagger behaviour models.
//!
//! Section I of the paper: tags from casual web users are "noisy and
//! incomplete — they may contain tags that are typos or are irrelevant to
//! the resource (noisy); and they may only describe some of the many
//! aspects of the resource (incomplete)". The behaviour model realizes
//! both, plus spammers and per-task latency.

use itag_model::ids::TagId;
use itag_model::vocab::{TagDistribution, TagsPerPost};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How a simulated tagger behaves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaggerBehavior {
    /// Probability a given task is done in good faith at all; with
    /// probability `1 − reliability` the post is pure noise (as if the
    /// worker clicked through).
    pub reliability: f64,
    /// On good-faith posts, per-tag probability of replacement by a random
    /// vocabulary tag (typos / irrelevant tags).
    pub noise_rate: f64,
    /// How many tags a post carries — small values are the paper's
    /// "incomplete" taggers.
    pub tags_per_post: TagsPerPost,
    /// Ticks between assignment and submission, uniform inclusive range.
    pub latency: (u32, u32),
    /// A spammer ignores the resource entirely: every tag is random.
    pub spammer: bool,
}

impl TaggerBehavior {
    /// Careful tagger: rich posts, little noise, slower.
    pub fn diligent() -> Self {
        TaggerBehavior {
            reliability: 0.98,
            noise_rate: 0.02,
            tags_per_post: TagsPerPost::new(2, 6),
            latency: (2, 6),
            spammer: false,
        }
    }

    /// Typical casual web user: short posts, some noise.
    pub fn casual() -> Self {
        TaggerBehavior {
            reliability: 0.9,
            noise_rate: 0.1,
            tags_per_post: TagsPerPost::new(1, 3),
            latency: (1, 4),
            spammer: false,
        }
    }

    /// Fast but careless.
    pub fn sloppy() -> Self {
        TaggerBehavior {
            reliability: 0.7,
            noise_rate: 0.3,
            tags_per_post: TagsPerPost::new(1, 2),
            latency: (1, 2),
            spammer: false,
        }
    }

    /// Random-tag spammer chasing the incentive.
    pub fn spammer() -> Self {
        TaggerBehavior {
            reliability: 0.0,
            noise_rate: 1.0,
            tags_per_post: TagsPerPost::new(1, 3),
            latency: (1, 1),
            spammer: true,
        }
    }

    /// Validates field ranges (construction through presets is always
    /// valid; this guards hand-rolled configs).
    pub fn validate(&self) -> std::result::Result<(), String> {
        if !(0.0..=1.0).contains(&self.reliability) {
            return Err(format!("reliability {} out of [0,1]", self.reliability));
        }
        if !(0.0..=1.0).contains(&self.noise_rate) {
            return Err(format!("noise_rate {} out of [0,1]", self.noise_rate));
        }
        if self.latency.0 == 0 || self.latency.0 > self.latency.1 {
            return Err(format!("bad latency range {:?}", self.latency));
        }
        Ok(())
    }

    /// Generates the tags of one post on a resource with latent
    /// distribution `latent`, drawing noise from a vocabulary of
    /// `vocab_size` tags. Always returns a non-empty, duplicate-free set.
    pub fn generate_tags(
        &self,
        latent: &TagDistribution,
        vocab_size: u32,
        rng: &mut StdRng,
    ) -> Vec<TagId> {
        let want = self.tags_per_post.sample(rng).max(1);
        let good_faith = !self.spammer && rng.gen::<f64>() < self.reliability;
        let mut tags: Vec<TagId> = Vec::with_capacity(want);
        let mut attempts = 0;
        while tags.len() < want && attempts < 16 * want {
            attempts += 1;
            let t = if good_faith && rng.gen::<f64>() >= self.noise_rate {
                latent.sample_tag(rng)
            } else {
                TagId(rng.gen_range(0..vocab_size.max(1)))
            };
            if !tags.contains(&t) {
                tags.push(t);
            }
        }
        if tags.is_empty() {
            tags.push(latent.tags()[0]);
        }
        tags
    }

    /// Draws the submission latency in ticks.
    pub fn sample_latency(&self, rng: &mut StdRng) -> u32 {
        if self.latency.0 == self.latency.1 {
            self.latency.0
        } else {
            rng.gen_range(self.latency.0..=self.latency.1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn latent() -> TagDistribution {
        // Support must comfortably exceed the largest post size (6), or
        // rejection sampling falls through to noise once the support is
        // exhausted and the in-support fraction drops artificially.
        TagDistribution::new((0..20).map(|i| (TagId(i), 1.0 / (i + 1) as f64)).collect())
    }

    #[test]
    fn presets_validate() {
        for b in [
            TaggerBehavior::diligent(),
            TaggerBehavior::casual(),
            TaggerBehavior::sloppy(),
            TaggerBehavior::spammer(),
        ] {
            b.validate().unwrap();
        }
    }

    #[test]
    fn diligent_tags_come_mostly_from_the_support() {
        let b = TaggerBehavior::diligent();
        let l = latent();
        let mut rng = StdRng::seed_from_u64(1);
        let mut in_support = 0usize;
        let mut total = 0usize;
        for _ in 0..500 {
            for t in b.generate_tags(&l, 10_000, &mut rng) {
                total += 1;
                if l.prob(t) > 0.0 {
                    in_support += 1;
                }
            }
        }
        let frac = in_support as f64 / total as f64;
        assert!(frac > 0.9, "support fraction {frac}");
    }

    #[test]
    fn spammer_tags_are_mostly_outside_the_support() {
        let b = TaggerBehavior::spammer();
        let l = latent();
        let mut rng = StdRng::seed_from_u64(2);
        let mut in_support = 0usize;
        let mut total = 0usize;
        for _ in 0..500 {
            for t in b.generate_tags(&l, 10_000, &mut rng) {
                total += 1;
                if l.prob(t) > 0.0 {
                    in_support += 1;
                }
            }
        }
        let frac = in_support as f64 / total as f64;
        assert!(frac < 0.05, "support fraction {frac}");
    }

    #[test]
    fn posts_are_nonempty_and_duplicate_free() {
        let b = TaggerBehavior::sloppy();
        let l = latent();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..300 {
            let tags = b.generate_tags(&l, 50, &mut rng);
            assert!(!tags.is_empty());
            let mut d = tags.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), tags.len());
        }
    }

    #[test]
    fn latency_respects_range() {
        let b = TaggerBehavior::diligent();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..200 {
            let l = b.sample_latency(&mut rng);
            assert!((2..=6).contains(&l));
        }
        let fixed = TaggerBehavior {
            latency: (3, 3),
            ..TaggerBehavior::casual()
        };
        assert_eq!(fixed.sample_latency(&mut rng), 3);
    }

    #[test]
    fn validate_catches_bad_configs() {
        let mut b = TaggerBehavior::casual();
        b.reliability = 1.4;
        assert!(b.validate().is_err());
        let mut b = TaggerBehavior::casual();
        b.latency = (0, 3);
        assert!(b.validate().is_err());
        let mut b = TaggerBehavior::casual();
        b.latency = (5, 2);
        assert!(b.validate().is_err());
    }
}
