//! Threaded tagging pool.
//!
//! The discrete-tick [`crate::platform::SimPlatform`] is deterministic and
//! single-threaded — right for experiments. A real deployment aggregates
//! submissions arriving concurrently from the marketplace; this module
//! reproduces that shape with a scoped fan-out/fan-in: worker threads
//! claim tagging jobs off a shared cursor and return their results at
//! join. Used by the throughput bench and the engine's bulk-seeding path.

use crate::behavior::TaggerBehavior;
use itag_model::ids::{ResourceId, TagId};
use itag_model::vocab::TagDistribution;
use rand::rngs::StdRng;
use rand::SeedableRng;

// Everything below up to the test module is determinism-contracted: the
// output of these maps must be a pure function of (input, seed), never of
// wall-clock time or scheduling. The repo lint rejects `Instant::now()` /
// `SystemTime::now()` inside this fence.
// lint: determinism

/// A unit of tagging work.
#[derive(Debug, Clone)]
pub struct TagJob {
    pub resource: ResourceId,
    /// Sequence number used to make per-job RNG streams independent.
    pub seq: u64,
}

/// A completed tagging job.
#[derive(Debug, Clone)]
pub struct TagJobResult {
    pub resource: ResourceId,
    pub seq: u64,
    pub tags: Vec<TagId>,
}

/// Runs `jobs` across `threads` OS threads, each simulating a tagger with
/// `behavior` over the shared `latents`. Results are returned sorted by
/// `seq`, so the output is deterministic for a given `(seed, jobs)` input
/// regardless of scheduling.
pub fn run_parallel_tagging(
    latents: &[TagDistribution],
    vocab_size: u32,
    behavior: TaggerBehavior,
    jobs: &[TagJob],
    threads: usize,
    seed: u64,
) -> Vec<TagJobResult> {
    assert!(threads >= 1, "need at least one thread");
    let cursor = std::sync::atomic::AtomicUsize::new(0);

    let mut results: Vec<TagJobResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cursor = &cursor;
                let behavior = &behavior;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(job) = jobs.get(i) else { break };
                        // Independent deterministic stream per job: the result
                        // set does not depend on which thread ran the job.
                        let mut rng = StdRng::seed_from_u64(
                            seed ^ job.seq.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        );
                        let latent = &latents[job.resource.index()];
                        let tags = behavior.generate_tags(latent, vocab_size, &mut rng);
                        out.push(TagJobResult {
                            resource: job.resource,
                            seq: job.seq,
                            tags,
                        });
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("tagging threads must not panic"))
            .collect()
    });
    results.sort_by_key(|r| r.seq);
    results
}

/// Generic scoped fan-out over owned work items: `threads` OS threads claim
/// items off a shared atomic cursor, `f(index, item)` runs on whichever
/// thread claimed the slot, and the results come back **in input order** —
/// the caller never sees scheduling. The engine uses this to tick
/// independent project runtimes concurrently and merge deterministically.
pub fn scoped_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    assert!(threads >= 1, "need at least one thread");
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    if threads.min(n) == 1 {
        // One worker claims every slot in input order anyway — run inline
        // and skip the thread spawn/join (identical results by the
        // determinism contract, ~100µs less overhead per call).
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    // All slot locks share one lockcheck class (they are interchangeable
    // for ordering purposes — no thread ever holds two at once), as do
    // the result cells.
    let slots: Vec<parking_lot::Mutex<Option<T>>> = items
        .into_iter()
        .map(|t| parking_lot::Mutex::named("crowd.scoped.slot", Some(t)))
        .collect();
    let out: Vec<parking_lot::Mutex<Option<R>>> = (0..n)
        .map(|_| parking_lot::Mutex::named("crowd.scoped.result", None))
        .collect();
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let f = &f;
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            let slots = &slots;
            let out = &out;
            let cursor = &cursor;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .take()
                    .expect("each slot is claimed exactly once");
                let r = f(i, item);
                *out[i].lock() = Some(r);
            });
        }
    });
    out.into_iter()
        .map(|m| m.into_inner().expect("scoped threads completed every item"))
        .collect()
}

/// Shared state of one [`pipelined_map`] run.
struct PipelineState<M> {
    /// Staged results waiting for the merger, indexed by item.
    staged: Vec<Option<M>>,
    /// Next item the merger will consume; deposits more than `depth`
    /// items ahead of this block (back-pressure).
    next_merge: usize,
    /// Next item allowed through the ordered handoff section.
    next_order: usize,
    /// Set when any thread panicked, so waiters fail instead of hanging.
    poisoned: bool,
}

/// Marks the pipeline poisoned if the owning thread unwinds mid-item, so
/// every blocked peer wakes up and propagates instead of deadlocking on a
/// turn that will never come.
struct PoisonOnPanic<'a, M> {
    state: &'a parking_lot::Mutex<PipelineState<M>>,
    cv: &'a parking_lot::Condvar,
    armed: bool,
}

impl<M> Drop for PoisonOnPanic<'_, M> {
    fn drop(&mut self) {
        if self.armed {
            self.state.lock().poisoned = true;
            self.cv.notify_all();
        }
    }
}

/// Two-phase pipelined [`scoped_map`]: the parallel work on each item is
/// split around a cheap **ordered handoff**, and a dedicated **merger
/// thread** drains finished items in input order while the workers keep
/// going — the serial phase of item `i` overlaps the parallel phases of
/// items `> i` instead of stalling the pool at a barrier.
///
/// Per item `i`, four callbacks run in sequence:
///
/// 1. `work(i, item) -> A` — parallel, on whichever worker claimed `i`;
/// 2. `order(i, A) -> B` — called in **strict input order** under the
///    pipeline lock (a sequencer: keep it cheap — e.g. assigning an id
///    block from a running counter);
/// 3. `post(i, B) -> M` — parallel again, same worker;
/// 4. `merge(i, M) -> R` — on the single merger thread, in input order.
///
/// `depth` bounds how many items may sit staged-but-unmerged ahead of the
/// merger (min 1): a worker that finishes `post` blocks before depositing
/// until the merger is within `depth` items — back-pressure, so a slow
/// merger cannot be buried under an unbounded backlog.
///
/// Results come back in input order, and every `order`/`merge` call runs
/// in input order regardless of `threads` or `depth` — the determinism
/// contract of [`scoped_map`] extends to the pipeline. With one thread
/// (or one item) everything runs inline in input order, which is the
/// reference schedule the threaded runs must match.
///
/// Because `merge` is `FnMut` and single-threaded, it may carry mutable
/// state across items (a running ledger, an accumulator): the engine
/// applies each committed round's reputation deltas this way. Items whose
/// earlier phases run concurrently still reach that state strictly in
/// input order, so a stateful merge is exactly as deterministic as a
/// stateless one.
pub fn pipelined_map<T, A, B, M, R, FW, FO, FP, FM>(
    items: Vec<T>,
    threads: usize,
    depth: usize,
    work: FW,
    order: FO,
    post: FP,
    mut merge: FM,
) -> Vec<R>
where
    T: Send,
    A: Send,
    B: Send,
    M: Send,
    R: Send,
    FW: Fn(usize, T) -> A + Sync,
    FO: Fn(usize, A) -> B + Sync,
    FP: Fn(usize, B) -> M + Sync,
    FM: FnMut(usize, M) -> R + Send,
{
    assert!(threads >= 1, "need at least one thread");
    let depth = depth.max(1);
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    if threads.min(n) == 1 {
        // The reference schedule: each item flows through all four phases
        // before the next starts. Threaded runs produce the same calls in
        // the same order by construction.
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| merge(i, post(i, order(i, work(i, t)))))
            .collect();
    }

    let slots: Vec<parking_lot::Mutex<Option<T>>> = items
        .into_iter()
        .map(|t| parking_lot::Mutex::named("crowd.pipeline.slot", Some(t)))
        .collect();
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let state = parking_lot::Mutex::named(
        "crowd.pipeline.state",
        PipelineState::<M> {
            staged: (0..n).map(|_| None).collect(),
            next_merge: 0,
            next_order: 0,
            poisoned: false,
        },
    );
    let cv = parking_lot::Condvar::new();
    let work = &work;
    let order = &order;
    let post = &post;

    std::thread::scope(|scope| {
        let merger = {
            let state = &state;
            let cv = &cv;
            scope.spawn(move || {
                let mut guard = PoisonOnPanic {
                    state,
                    cv,
                    armed: true,
                };
                let mut out: Vec<R> = Vec::with_capacity(n);
                for i in 0..n {
                    let m = {
                        let mut s = state.lock();
                        loop {
                            if s.poisoned {
                                panic!("pipelined_map worker panicked");
                            }
                            if let Some(m) = s.staged[i].take() {
                                s.next_merge = i + 1;
                                break m;
                            }
                            cv.wait(&mut s);
                        }
                    };
                    // Workers blocked on back-pressure can move again.
                    cv.notify_all();
                    out.push(merge(i, m));
                }
                guard.armed = false;
                out
            })
        };

        for _ in 0..threads.min(n) {
            let slots = &slots;
            let cursor = &cursor;
            let state = &state;
            let cv = &cv;
            scope.spawn(move || {
                let mut guard = PoisonOnPanic {
                    state,
                    cv,
                    armed: true,
                };
                loop {
                    let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = slots[i]
                        .lock()
                        .take()
                        .expect("each slot is claimed exactly once");
                    let a = work(i, item);
                    // Ordered handoff: items pass through `order` in input
                    // order, under the pipeline lock.
                    let b = {
                        let mut s = state.lock();
                        while s.next_order != i {
                            if s.poisoned {
                                panic!("pipelined_map peer panicked");
                            }
                            cv.wait(&mut s);
                        }
                        let b = order(i, a);
                        s.next_order += 1;
                        cv.notify_all();
                        b
                    };
                    let m = post(i, b);
                    // Deposit for the merger, at most `depth` items ahead.
                    {
                        let mut s = state.lock();
                        while i >= s.next_merge + depth {
                            if s.poisoned {
                                panic!("pipelined_map peer panicked");
                            }
                            cv.wait(&mut s);
                        }
                        s.staged[i] = Some(m);
                        cv.notify_all();
                    }
                }
                guard.armed = false;
            });
        }

        merger.join().expect("pipeline merger must not panic")
    })
}

// lint: end determinism

#[cfg(test)]
mod tests {
    use super::*;

    fn latents() -> Vec<TagDistribution> {
        (0..5)
            .map(|i| TagDistribution::new(vec![(TagId(i * 10), 0.6), (TagId(i * 10 + 1), 0.4)]))
            .collect()
    }

    fn jobs(n: u64) -> Vec<TagJob> {
        (0..n)
            .map(|seq| TagJob {
                resource: ResourceId((seq % 5) as u32),
                seq,
            })
            .collect()
    }

    #[test]
    fn output_is_deterministic_across_thread_counts() {
        let l = latents();
        let js = jobs(200);
        let a = run_parallel_tagging(&l, 100, TaggerBehavior::casual(), &js, 1, 42);
        let b = run_parallel_tagging(&l, 100, TaggerBehavior::casual(), &js, 4, 42);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.seq, y.seq);
            assert_eq!(x.tags, y.tags, "job {} differs across thread counts", x.seq);
        }
    }

    #[test]
    fn every_job_is_completed_exactly_once() {
        let l = latents();
        let js = jobs(500);
        let out = run_parallel_tagging(&l, 100, TaggerBehavior::diligent(), &js, 8, 7);
        assert_eq!(out.len(), 500);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
            assert!(!r.tags.is_empty());
        }
    }

    #[test]
    fn empty_job_list_is_fine() {
        let l = latents();
        let out = run_parallel_tagging(&l, 100, TaggerBehavior::casual(), &[], 4, 1);
        assert!(out.is_empty());
    }

    #[test]
    fn scoped_map_preserves_input_order_at_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        for threads in [1usize, 3, 8] {
            let out = scoped_map(items.clone(), threads, |i, x| {
                assert_eq!(i as u64, x);
                x * x
            });
            let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn pipelined_map_matches_the_inline_schedule_at_any_threads_and_depth() {
        let items: Vec<u64> = (0..157).collect();
        // Reference: one thread runs everything inline in input order.
        let reference = pipelined_map(
            items.clone(),
            1,
            1,
            |_, x: u64| x + 1,
            |_, a| a * 3,
            |_, b| b - 2,
            |i, m| m + i as u64,
        );
        for threads in [2usize, 3, 8] {
            for depth in [1usize, 2, 5, 100] {
                let out = pipelined_map(
                    items.clone(),
                    threads,
                    depth,
                    |_, x: u64| x + 1,
                    |_, a| a * 3,
                    |_, b| b - 2,
                    |i, m| m + i as u64,
                );
                assert_eq!(out, reference, "threads={threads} depth={depth}");
            }
        }
    }

    #[test]
    fn pipelined_map_runs_order_and_merge_in_strict_input_order() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;
        let n = 64usize;
        let order_seen = AtomicUsize::new(0);
        let merge_seen = Mutex::new(Vec::new());
        let out = pipelined_map(
            (0..n).collect::<Vec<_>>(),
            4,
            2,
            |_, x: usize| x,
            |i, a| {
                // Each ordered-handoff call must be the next index.
                assert_eq!(order_seen.fetch_add(1, Ordering::SeqCst), i);
                a
            },
            |_, b| b,
            |i, m: usize| {
                merge_seen.lock().unwrap().push(i);
                m
            },
        );
        assert_eq!(out, (0..n).collect::<Vec<_>>());
        assert_eq!(order_seen.load(Ordering::SeqCst), n);
        assert_eq!(*merge_seen.lock().unwrap(), (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn pipelined_map_stateful_merge_matches_the_inline_schedule() {
        // The merge closure may fold into mutable state it owns (the
        // engine's reputation ledger does exactly this). The folded state
        // must match the inline single-thread schedule at every thread
        // count and depth even under an order-sensitive fold.
        let items: Vec<u64> = (0..123).collect();
        let fold =
            |acc: u64, i: usize, m: u64| acc.wrapping_mul(0x100000001B3).wrapping_add(m ^ i as u64);
        let reference = {
            let mut acc = 0u64;
            let _ = pipelined_map(
                items.clone(),
                1,
                1,
                |_, x: u64| x * 7,
                |_, a| a,
                |_, b| b + 1,
                |i, m| {
                    acc = fold(acc, i, m);
                    m
                },
            );
            acc
        };
        for threads in [2usize, 4, 8] {
            for depth in [1usize, 3] {
                let mut acc = 0u64;
                let _ = pipelined_map(
                    items.clone(),
                    threads,
                    depth,
                    |_, x: u64| x * 7,
                    |_, a| a,
                    |_, b| b + 1,
                    |i, m| {
                        acc = fold(acc, i, m);
                        m
                    },
                );
                assert_eq!(
                    acc, reference,
                    "stateful merge diverged at threads={threads} depth={depth}"
                );
            }
        }
    }

    #[test]
    fn pipelined_map_backpressure_bounds_the_staged_backlog() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // A deliberately slow merger: workers must never run more than
        // `depth` deposits ahead of it.
        let depth = 2usize;
        let staged = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let out = pipelined_map(
            (0..40u64).collect::<Vec<_>>(),
            4,
            depth,
            |_, x: u64| x,
            |_, a| a,
            |_, b| {
                let now = staged.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                b
            },
            |_, m: u64| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                staged.fetch_sub(1, Ordering::SeqCst);
                m * 2
            },
        );
        assert_eq!(out, (0..40u64).map(|x| x * 2).collect::<Vec<_>>());
        // `post` runs before the deposit blocks and the merger holds one
        // item while merging it, so up to depth + threads + 1 items can
        // be past `post` but not yet merged; the deposit window itself is
        // what the pipeline bounds. Without back-pressure the peak would
        // approach the full 40-item input.
        assert!(
            peak.load(Ordering::SeqCst) <= depth + 4 + 1,
            "staged backlog exceeded depth + threads + 1: {}",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    #[should_panic]
    fn pipelined_map_worker_panic_poisons_instead_of_hanging() {
        // A panicking `work` closure strands every peer: later items wait
        // for an order turn that will never come, and the merger waits
        // for a deposit that will never arrive. PoisonOnPanic must wake
        // them all so the call panics promptly instead of deadlocking —
        // this test hangs forever if that wakeup path breaks.
        let _ = pipelined_map(
            (0..32u64).collect::<Vec<_>>(),
            4,
            1,
            |_, x: u64| {
                if x == 3 {
                    panic!("worker died mid-item");
                }
                x
            },
            |_, a| a,
            |_, b| b,
            |_, m: u64| m,
        );
    }

    #[test]
    #[should_panic]
    fn pipelined_map_merger_panic_poisons_instead_of_hanging() {
        // Same contract from the other side: a panicking `merge` leaves
        // workers blocked on back-pressure; the poison flag must wake
        // and fail them rather than hang the scope join.
        let _ = pipelined_map(
            (0..32u64).collect::<Vec<_>>(),
            4,
            1,
            |_, x: u64| x,
            |_, a| a,
            |_, b| b,
            |i, m: u64| {
                if i == 2 {
                    panic!("merger died mid-item");
                }
                m
            },
        );
    }

    #[test]
    fn pipelined_map_handles_empty_and_single_item_input() {
        let nothing: Vec<u8> =
            pipelined_map(Vec::new(), 4, 2, |_, x: u8| x, |_, a| a, |_, b| b, |_, m| m);
        assert!(nothing.is_empty());
        let one = pipelined_map(
            vec![7u8],
            4,
            2,
            |_, x: u8| x,
            |_, a| a + 1,
            |_, b| b,
            |_, m| m,
        );
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn scoped_map_moves_owned_items_and_handles_empty_input() {
        let strings = vec!["a".to_string(), "bb".to_string(), "ccc".to_string()];
        let lens = scoped_map(strings, 2, |_, s| s.len());
        assert_eq!(lens, vec![1, 2, 3]);
        let nothing: Vec<u8> = scoped_map(Vec::<u8>::new(), 4, |_, x| x);
        assert!(nothing.is_empty());
    }
}
