//! Threaded tagging pool.
//!
//! The discrete-tick [`crate::platform::SimPlatform`] is deterministic and
//! single-threaded — right for experiments. A real deployment aggregates
//! submissions arriving concurrently from the marketplace; this module
//! reproduces that shape with a scoped fan-out/fan-in: worker threads
//! claim tagging jobs off a shared cursor and return their results at
//! join. Used by the throughput bench and the engine's bulk-seeding path.

use crate::behavior::TaggerBehavior;
use itag_model::ids::{ResourceId, TagId};
use itag_model::vocab::TagDistribution;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A unit of tagging work.
#[derive(Debug, Clone)]
pub struct TagJob {
    pub resource: ResourceId,
    /// Sequence number used to make per-job RNG streams independent.
    pub seq: u64,
}

/// A completed tagging job.
#[derive(Debug, Clone)]
pub struct TagJobResult {
    pub resource: ResourceId,
    pub seq: u64,
    pub tags: Vec<TagId>,
}

/// Runs `jobs` across `threads` OS threads, each simulating a tagger with
/// `behavior` over the shared `latents`. Results are returned sorted by
/// `seq`, so the output is deterministic for a given `(seed, jobs)` input
/// regardless of scheduling.
pub fn run_parallel_tagging(
    latents: &[TagDistribution],
    vocab_size: u32,
    behavior: TaggerBehavior,
    jobs: &[TagJob],
    threads: usize,
    seed: u64,
) -> Vec<TagJobResult> {
    assert!(threads >= 1, "need at least one thread");
    let cursor = std::sync::atomic::AtomicUsize::new(0);

    let mut results: Vec<TagJobResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cursor = &cursor;
                let behavior = &behavior;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(job) = jobs.get(i) else { break };
                        // Independent deterministic stream per job: the result
                        // set does not depend on which thread ran the job.
                        let mut rng = StdRng::seed_from_u64(
                            seed ^ job.seq.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        );
                        let latent = &latents[job.resource.index()];
                        let tags = behavior.generate_tags(latent, vocab_size, &mut rng);
                        out.push(TagJobResult {
                            resource: job.resource,
                            seq: job.seq,
                            tags,
                        });
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("tagging threads must not panic"))
            .collect()
    });
    results.sort_by_key(|r| r.seq);
    results
}

/// Generic scoped fan-out over owned work items: `threads` OS threads claim
/// items off a shared atomic cursor, `f(index, item)` runs on whichever
/// thread claimed the slot, and the results come back **in input order** —
/// the caller never sees scheduling. The engine uses this to tick
/// independent project runtimes concurrently and merge deterministically.
pub fn scoped_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    assert!(threads >= 1, "need at least one thread");
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    if threads.min(n) == 1 {
        // One worker claims every slot in input order anyway — run inline
        // and skip the thread spawn/join (identical results by the
        // determinism contract, ~100µs less overhead per call).
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    let slots: Vec<std::sync::Mutex<Option<T>>> = items
        .into_iter()
        .map(|t| std::sync::Mutex::new(Some(t)))
        .collect();
    let out: Vec<std::sync::Mutex<Option<R>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let f = &f;
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            let slots = &slots;
            let out = &out;
            let cursor = &cursor;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("slot lock")
                    .take()
                    .expect("each slot is claimed exactly once");
                let r = f(i, item);
                *out[i].lock().expect("result lock") = Some(r);
            });
        }
    });
    out.into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result lock")
                .expect("scoped threads completed every item")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn latents() -> Vec<TagDistribution> {
        (0..5)
            .map(|i| TagDistribution::new(vec![(TagId(i * 10), 0.6), (TagId(i * 10 + 1), 0.4)]))
            .collect()
    }

    fn jobs(n: u64) -> Vec<TagJob> {
        (0..n)
            .map(|seq| TagJob {
                resource: ResourceId((seq % 5) as u32),
                seq,
            })
            .collect()
    }

    #[test]
    fn output_is_deterministic_across_thread_counts() {
        let l = latents();
        let js = jobs(200);
        let a = run_parallel_tagging(&l, 100, TaggerBehavior::casual(), &js, 1, 42);
        let b = run_parallel_tagging(&l, 100, TaggerBehavior::casual(), &js, 4, 42);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.seq, y.seq);
            assert_eq!(x.tags, y.tags, "job {} differs across thread counts", x.seq);
        }
    }

    #[test]
    fn every_job_is_completed_exactly_once() {
        let l = latents();
        let js = jobs(500);
        let out = run_parallel_tagging(&l, 100, TaggerBehavior::diligent(), &js, 8, 7);
        assert_eq!(out.len(), 500);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
            assert!(!r.tags.is_empty());
        }
    }

    #[test]
    fn empty_job_list_is_fine() {
        let l = latents();
        let out = run_parallel_tagging(&l, 100, TaggerBehavior::casual(), &[], 4, 1);
        assert!(out.is_empty());
    }

    #[test]
    fn scoped_map_preserves_input_order_at_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        for threads in [1usize, 3, 8] {
            let out = scoped_map(items.clone(), threads, |i, x| {
                assert_eq!(i as u64, x);
                x * x
            });
            let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn scoped_map_moves_owned_items_and_handles_empty_input() {
        let strings = vec!["a".to_string(), "bb".to_string(), "ccc".to_string()];
        let lens = scoped_map(strings, 2, |_, s| s.len());
        assert_eq!(lens, vec![1, 2, 3]);
        let nothing: Vec<u8> = scoped_map(Vec::<u8>::new(), 4, |_, x| x);
        assert!(nothing.is_empty());
    }
}
