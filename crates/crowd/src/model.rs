//! Mini-loom: a deterministic schedule explorer for small concurrency
//! models.
//!
//! The workspace cannot vendor loom or run ThreadSanitizer (no registry
//! access), yet its whole determinism contract — "bit-identical results
//! at any thread count × pipeline depth" — rests on the handoff,
//! back-pressure and poisoning protocols in [`crate::parallel`] and the
//! store's group commit. This module provides the missing systematic
//! check: a **controlled scheduler** that runs a small closure-built
//! model over instrumented mutex/condvar/atomic shims, one thread at a
//! time, and explores the interleavings of their yield points.
//!
//! Two exploration modes:
//!
//! * [`explore`] — bounded-exhaustive DFS in the style of CHESS: every
//!   schedule with at most [`Config::preemption_bound`] preemptions (a
//!   context switch at a point where the running thread could have
//!   continued) is executed exactly once. Small bounds find almost all
//!   real protocol bugs while keeping the schedule space tractable.
//! * [`explore_random`] — seeded random walks for larger models where
//!   the exhaustive space is out of reach.
//!
//! A model **fails** by panicking (an `assert!` on an invariant, or an
//! injected bug's panic) or by deadlocking (no thread can run but not
//! all have finished). Either way the explorer panics on the driver
//! thread with the failing schedule's trace, so a plain `#[test]` (or a
//! `#[should_panic]` test proving a seeded bug is caught) is the whole
//! harness.
//!
//! ## Model vocabulary
//!
//! The body closure receives an [`Env`]; everything shared must be built
//! from it: [`Env::mutex`], [`Env::condvar`], [`Env::atomic_usize`],
//! [`Env::atomic_bool`], [`Env::spawn`]. The primitives are `Clone`
//! (internally `Arc`-shared) so closures can capture them. Every
//! operation on them is a *yield point* where the scheduler may switch
//! threads; plain computation between operations is invisible to the
//! explorer, exactly like data outside `loom::model` types.
//!
//! Determinism requirements: the body must behave identically given the
//! same schedule (no wall-clock, no OS randomness), and models must stay
//! *small* — exhaustive exploration is exponential in yield points.
//! `notify_one` deterministically wakes the lowest-id waiter; which
//! waiter wins a mutex handoff *is* explored, since that is a scheduler
//! decision.

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool as StdAtomicBool, AtomicUsize as StdAtomicUsize, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, OnceLock};

/// Exploration limits.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Maximum preemptions per schedule in [`explore`] (CHESS-style
    /// context-switch bound). 2 catches the vast majority of real
    /// ordering bugs; raise it only for tiny models.
    pub preemption_bound: usize,
    /// Hard cap on executed schedules; [`Report::complete`] is false if
    /// the DFS was cut off here.
    pub max_executions: u64,
    /// Hard cap on live model threads (body + spawns).
    pub max_threads: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: 2,
            max_executions: 200_000,
            max_threads: 8,
        }
    }
}

/// What an exploration did.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Schedules executed.
    pub executions: u64,
    /// True when the bounded schedule space was fully explored (always
    /// false for [`explore_random`]).
    pub complete: bool,
}

// ---------------------------------------------------------------------
// Scheduler core
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    Runnable,
    /// Waiting to acquire the mutex with this id.
    BlockedMutex(usize),
    /// Parked on a condvar (re-armed to `BlockedMutex` by notify).
    BlockedCv,
    /// Waiting for the thread with this id to finish.
    BlockedJoin(usize),
    Finished,
}

#[derive(Debug, Clone, Copy)]
struct ChoiceRec {
    chosen: usize,
    options: usize,
}

enum Mode {
    Exhaustive { bound: usize },
    Random { rng: u64 },
}

struct Core {
    states: Vec<TState>,
    current: Option<usize>,
    mutex_owner: Vec<Option<usize>>,
    /// Per-condvar wait queue of `(thread, mutex)` pairs.
    cv_waiters: Vec<Vec<(usize, usize)>>,
    mode: Mode,
    /// Forced decisions replayed from the DFS frontier.
    prefix: Vec<usize>,
    depth: usize,
    preemptions: usize,
    choices: Vec<ChoiceRec>,
    trace: Vec<(usize, &'static str)>,
    abort: Option<String>,
    max_threads: usize,
}

struct Exec {
    core: StdMutex<Core>,
    cv: StdCondvar,
    handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    /// Model-thread id of the calling OS thread (`usize::MAX` outside).
    static TID: Cell<usize> = const { Cell::new(usize::MAX) };
    /// True on OS threads running model code; the panic hook stays quiet
    /// for them (their panics are caught, carried to the driver, and
    /// re-raised there with the schedule trace attached).
    static IN_MODEL: Cell<bool> = const { Cell::new(false) };
}

/// Internal payload used to unwind threads out of a dead execution.
struct AbortExit;

fn install_quiet_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let old = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !IN_MODEL.with(|f| f.get()) {
                old(info);
            }
        }));
    });
}

fn payload_msg(p: &Box<dyn Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked".to_string()
    }
}

impl Exec {
    fn new(mode: Mode, prefix: Vec<usize>, max_threads: usize) -> Self {
        Exec {
            core: StdMutex::new(Core {
                states: Vec::new(),
                current: None,
                mutex_owner: Vec::new(),
                cv_waiters: Vec::new(),
                mode,
                prefix,
                depth: 0,
                preemptions: 0,
                choices: Vec::new(),
                trace: Vec::new(),
                abort: None,
                max_threads,
            }),
            cv: StdCondvar::new(),
            handles: StdMutex::new(Vec::new()),
        }
    }

    fn lock_core(&self) -> std::sync::MutexGuard<'_, Core> {
        self.core.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn enabled(core: &Core, t: usize) -> bool {
        match core.states[t] {
            TState::Runnable => true,
            TState::BlockedMutex(m) => core.mutex_owner[m].is_none(),
            TState::BlockedJoin(t2) => core.states[t2] == TState::Finished,
            TState::BlockedCv | TState::Finished => false,
        }
    }

    /// Picks the next thread to run. Called by the thread that currently
    /// holds the baton (or the driver at start), with its new state
    /// already written into `core.states`.
    fn pick_next(&self, core: &mut Core, caller: Option<usize>, label: &'static str) {
        let n = core.states.len();
        let enabled: Vec<usize> = (0..n).filter(|&t| Self::enabled(core, t)).collect();
        if enabled.is_empty() {
            if core.states.iter().all(|s| *s == TState::Finished) {
                core.current = None;
            } else {
                core.abort = Some(format!(
                    "deadlock: no runnable thread (states: {:?})",
                    core.states
                ));
            }
            self.cv.notify_all();
            return;
        }

        // Options are ordered caller-first: index 0 is always the
        // "keep running" choice, so the DFS's default path performs no
        // preemptions and the preemption counter pairs with indexes > 0.
        let mut options = enabled;
        let caller_enabled = caller.is_some_and(|c| options.contains(&c));
        if let Some(c) = caller {
            if let Some(pos) = options.iter().position(|&t| t == c) {
                options.remove(pos);
                options.insert(0, c);
            }
        }
        if let Mode::Exhaustive { bound } = core.mode {
            if caller_enabled && core.preemptions >= bound {
                options.truncate(1);
            }
        }

        let idx = match &mut core.mode {
            Mode::Exhaustive { .. } => {
                if core.depth < core.prefix.len() {
                    let i = core.prefix[core.depth];
                    assert!(
                        i < options.len(),
                        "model is nondeterministic: replay reached a decision with \
                         {} options where the recorded schedule had more",
                        options.len()
                    );
                    i
                } else {
                    0
                }
            }
            Mode::Random { rng } => {
                *rng ^= *rng << 13;
                *rng ^= *rng >> 7;
                *rng ^= *rng << 17;
                (*rng % options.len() as u64) as usize
            }
        };
        core.choices.push(ChoiceRec {
            chosen: idx,
            options: options.len(),
        });
        core.depth += 1;

        let next = options[idx];
        if caller_enabled && Some(next) != caller {
            core.preemptions += 1;
        }
        match core.states[next] {
            TState::BlockedMutex(m) => {
                // Scheduling a lock-waiter transfers ownership to it.
                debug_assert!(core.mutex_owner[m].is_none());
                core.mutex_owner[m] = Some(next);
                core.states[next] = TState::Runnable;
            }
            TState::BlockedJoin(_) => core.states[next] = TState::Runnable,
            TState::Runnable => {}
            TState::BlockedCv | TState::Finished => unreachable!("not enabled"),
        }
        core.current = Some(next);
        core.trace.push((caller.unwrap_or(next), label));
        self.cv.notify_all();
    }

    /// Blocks the calling OS thread until its model thread is scheduled.
    /// Must be entered with the thread's state already set and
    /// `pick_next` already run under the same `core` critical section.
    fn wait_scheduled(&self, mut core: std::sync::MutexGuard<'_, Core>, tid: usize) {
        loop {
            if core.abort.is_some() {
                drop(core);
                if std::thread::panicking() {
                    // Already unwinding (this is a guard drop); do not
                    // double-panic — just stop cooperating.
                    return;
                }
                std::panic::panic_any(AbortExit);
            }
            if core.current == Some(tid) && core.states[tid] == TState::Runnable {
                return;
            }
            core = self.cv.wait(core).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// The standard yield point: adopt `new_state`, let the scheduler
    /// decide, come back when scheduled.
    fn yield_point(&self, label: &'static str, new_state: TState) {
        let tid = TID.with(|t| t.get());
        debug_assert!(tid != usize::MAX, "model primitive used outside explore()");
        let mut core = self.lock_core();
        if core.abort.is_some() {
            drop(core);
            if std::thread::panicking() {
                return;
            }
            std::panic::panic_any(AbortExit);
        }
        core.states[tid] = new_state;
        self.pick_next(&mut core, Some(tid), label);
        self.wait_scheduled(core, tid);
    }

    fn spawn_model_thread(self: &Arc<Self>, f: impl FnOnce() + Send + 'static) -> usize {
        let tid = {
            let mut core = self.lock_core();
            assert!(
                core.states.len() < core.max_threads,
                "model exceeded Config::max_threads ({})",
                core.max_threads
            );
            core.states.push(TState::Runnable);
            core.states.len() - 1
        };
        let exec = Arc::clone(self);
        let h = std::thread::Builder::new()
            .name(format!("model-t{tid}"))
            .spawn(move || {
                TID.with(|t| t.set(tid));
                IN_MODEL.with(|m| m.set(true));
                {
                    let core = exec.lock_core();
                    exec.wait_scheduled_or_exit(core, tid);
                }
                let result = catch_unwind(AssertUnwindSafe(f));
                match result {
                    Ok(()) => {
                        let mut core = exec.lock_core();
                        if core.abort.is_none() {
                            core.states[tid] = TState::Finished;
                            exec.pick_next(&mut core, Some(tid), "thread exit");
                        }
                    }
                    Err(p) => {
                        if !p.is::<AbortExit>() {
                            let mut core = exec.lock_core();
                            if core.abort.is_none() {
                                core.abort =
                                    Some(format!("thread {tid} panicked: {}", payload_msg(&p)));
                            }
                        }
                        exec.cv.notify_all();
                    }
                }
            })
            .expect("spawn model OS thread");
        self.handles
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(h);
        tid
    }

    /// First-schedule wait for a fresh thread; exits silently if the
    /// execution aborted before the thread ever ran.
    fn wait_scheduled_or_exit(&self, mut core: std::sync::MutexGuard<'_, Core>, tid: usize) {
        loop {
            if core.abort.is_some() {
                drop(core);
                std::panic::panic_any(AbortExit);
            }
            if core.current == Some(tid) && core.states[tid] == TState::Runnable {
                return;
            }
            core = self.cv.wait(core).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn start(&self) {
        let mut core = self.lock_core();
        debug_assert_eq!(core.states.len(), 1, "start() schedules the body thread");
        core.current = Some(0);
        core.trace.push((0, "start"));
        self.cv.notify_all();
    }

    /// Driver-side wait for the execution to finish or abort.
    fn wait_done(&self) -> (Option<String>, Vec<ChoiceRec>, String) {
        let mut core = self.lock_core();
        loop {
            if core.abort.is_some() || core.states.iter().all(|s| *s == TState::Finished) {
                break;
            }
            core = self.cv.wait(core).unwrap_or_else(|p| p.into_inner());
        }
        let abort = core.abort.clone();
        // Wake every parked thread so aborted executions can drain.
        self.cv.notify_all();
        let choices = core.choices.clone();
        let trace: Vec<String> = core
            .trace
            .iter()
            .map(|(t, l)| format!("t{t}:{l}"))
            .collect();
        (abort, choices, trace.join(", "))
    }
}

// ---------------------------------------------------------------------
// Model-facing primitives
// ---------------------------------------------------------------------

/// Handle to the model world; the body closure builds everything
/// through it.
pub struct Env {
    exec: Arc<Exec>,
}

impl Clone for Env {
    fn clone(&self) -> Self {
        Env {
            exec: Arc::clone(&self.exec),
        }
    }
}

impl Env {
    /// A schedule-instrumented mutex holding `value`.
    pub fn mutex<T: Send + 'static>(&self, value: T) -> Mutex<T> {
        let id = {
            let mut core = self.exec.lock_core();
            core.mutex_owner.push(None);
            core.mutex_owner.len() - 1
        };
        Mutex {
            exec: Arc::clone(&self.exec),
            id,
            data: Arc::new(StdMutex::new(value)),
        }
    }

    /// A schedule-instrumented condition variable.
    pub fn condvar(&self) -> Condvar {
        let id = {
            let mut core = self.exec.lock_core();
            core.cv_waiters.push(Vec::new());
            core.cv_waiters.len() - 1
        };
        Condvar {
            exec: Arc::clone(&self.exec),
            id,
        }
    }

    /// A schedule-instrumented atomic counter (every operation is a
    /// yield point; the single-threaded-at-a-time scheduler makes all
    /// orderings sequentially consistent).
    pub fn atomic_usize(&self, value: usize) -> AtomicUsize {
        AtomicUsize {
            exec: Arc::clone(&self.exec),
            inner: Arc::new(StdAtomicUsize::new(value)),
        }
    }

    /// Boolean counterpart of [`Env::atomic_usize`].
    pub fn atomic_bool(&self, value: bool) -> AtomicBool {
        AtomicBool {
            exec: Arc::clone(&self.exec),
            inner: Arc::new(StdAtomicBool::new(value)),
        }
    }

    /// Spawns a model thread. The spawn itself is a yield point (the
    /// child may run before the parent continues).
    pub fn spawn(&self, f: impl FnOnce() + Send + 'static) -> Join {
        let tid = self.exec.spawn_model_thread(f);
        self.exec.yield_point("spawn", TState::Runnable);
        Join {
            exec: Arc::clone(&self.exec),
            tid,
        }
    }

    /// A bare yield point: lets the scheduler preempt here even though
    /// no shared state is touched (useful to model a computation step).
    pub fn yield_now(&self) {
        self.exec.yield_point("yield", TState::Runnable);
    }
}

/// Join handle for a model thread.
pub struct Join {
    exec: Arc<Exec>,
    tid: usize,
}

impl Join {
    /// Blocks (in model time) until the thread finishes.
    pub fn join(self) {
        self.exec.yield_point("join", TState::BlockedJoin(self.tid));
    }
}

/// Schedule-instrumented mutex (see [`Env::mutex`]).
pub struct Mutex<T> {
    exec: Arc<Exec>,
    id: usize,
    data: Arc<StdMutex<T>>,
}

impl<T> Clone for Mutex<T> {
    fn clone(&self) -> Self {
        Mutex {
            exec: Arc::clone(&self.exec),
            id: self.id,
            data: Arc::clone(&self.data),
        }
    }
}

impl<T> Mutex<T> {
    /// Acquires the lock; a yield point whether or not it is contended.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.exec
            .yield_point("mutex.lock", TState::BlockedMutex(self.id));
        // The scheduler transferred ownership to us before waking us, so
        // the inner lock is free by construction.
        let inner = self
            .data
            .try_lock()
            .unwrap_or_else(|_| unreachable!("model mutex owner is unique"));
        MutexGuard {
            mx: self,
            inner: Some(inner),
        }
    }
}

/// RAII guard for [`Mutex`]; releasing is a yield point.
pub struct MutexGuard<'a, T> {
    mx: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds its lock")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds its lock")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_none() {
            return;
        }
        let tid = TID.with(|t| t.get());
        {
            let mut core = self.mx.exec.lock_core();
            debug_assert_eq!(core.mutex_owner[self.mx.id], Some(tid));
            core.mutex_owner[self.mx.id] = None;
            if core.abort.is_some() || std::thread::panicking() {
                // Unwinding out of a dead or failing execution: release
                // ownership so nothing wedges, but skip the yield (a
                // panic inside a Drop during unwind would abort the
                // process).
                self.mx.exec.cv.notify_all();
                return;
            }
        }
        self.mx.exec.yield_point("mutex.unlock", TState::Runnable);
    }
}

/// Schedule-instrumented condvar (see [`Env::condvar`]).
pub struct Condvar {
    exec: Arc<Exec>,
    id: usize,
}

impl Clone for Condvar {
    fn clone(&self) -> Self {
        Condvar {
            exec: Arc::clone(&self.exec),
            id: self.id,
        }
    }
}

impl Condvar {
    /// Releases the guard's mutex, parks until notified, reacquires.
    /// Exactly the lost-wakeup-prone shape real condvars have: a notify
    /// that happens before this wait starts is NOT remembered.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let tid = TID.with(|t| t.get());
        let mid = guard.mx.id;
        // Release the real lock first so the scheduler can hand the
        // mutex to whoever it schedules next.
        guard.inner.take();
        {
            let mut core = self.exec.lock_core();
            if core.abort.is_some() {
                drop(core);
                if !std::thread::panicking() {
                    std::panic::panic_any(AbortExit);
                }
                return;
            }
            debug_assert_eq!(core.mutex_owner[mid], Some(tid));
            core.mutex_owner[mid] = None;
            core.cv_waiters[self.id].push((tid, mid));
            core.states[tid] = TState::BlockedCv;
            self.exec.pick_next(&mut core, Some(tid), "cv.wait");
            self.exec.wait_scheduled(core, tid);
        }
        // Scheduled again ⇒ notified and handed the mutex back.
        guard.inner = Some(
            guard
                .mx
                .data
                .try_lock()
                .unwrap_or_else(|_| unreachable!("model mutex owner is unique")),
        );
    }

    /// Wakes the lowest-id waiter (deterministic; see module docs). A
    /// yield point.
    pub fn notify_one(&self) {
        {
            let mut core = self.exec.lock_core();
            let q = &mut core.cv_waiters[self.id];
            if let Some(pos) = (0..q.len()).min_by_key(|&i| q[i].0) {
                let (w, mid) = q.remove(pos);
                core.states[w] = TState::BlockedMutex(mid);
            }
        }
        self.exec.yield_point("cv.notify_one", TState::Runnable);
    }

    /// Wakes every waiter. A yield point.
    pub fn notify_all(&self) {
        {
            let mut core = self.exec.lock_core();
            let waiters = std::mem::take(&mut core.cv_waiters[self.id]);
            for (w, mid) in waiters {
                core.states[w] = TState::BlockedMutex(mid);
            }
        }
        self.exec.yield_point("cv.notify_all", TState::Runnable);
    }
}

/// Schedule-instrumented atomic usize (see [`Env::atomic_usize`]).
pub struct AtomicUsize {
    exec: Arc<Exec>,
    inner: Arc<StdAtomicUsize>,
}

impl Clone for AtomicUsize {
    fn clone(&self) -> Self {
        AtomicUsize {
            exec: Arc::clone(&self.exec),
            inner: Arc::clone(&self.inner),
        }
    }
}

impl AtomicUsize {
    pub fn load(&self) -> usize {
        self.exec.yield_point("atomic.load", TState::Runnable);
        self.inner.load(Ordering::SeqCst)
    }

    pub fn store(&self, v: usize) {
        self.exec.yield_point("atomic.store", TState::Runnable);
        self.inner.store(v, Ordering::SeqCst)
    }

    pub fn fetch_add(&self, v: usize) -> usize {
        self.exec.yield_point("atomic.fetch_add", TState::Runnable);
        self.inner.fetch_add(v, Ordering::SeqCst)
    }
}

/// Schedule-instrumented atomic bool (see [`Env::atomic_bool`]).
pub struct AtomicBool {
    exec: Arc<Exec>,
    inner: Arc<StdAtomicBool>,
}

impl Clone for AtomicBool {
    fn clone(&self) -> Self {
        AtomicBool {
            exec: Arc::clone(&self.exec),
            inner: Arc::clone(&self.inner),
        }
    }
}

impl AtomicBool {
    pub fn load(&self) -> bool {
        self.exec.yield_point("atomic.load", TState::Runnable);
        self.inner.load(Ordering::SeqCst)
    }

    pub fn store(&self, v: bool) {
        self.exec.yield_point("atomic.store", TState::Runnable);
        self.inner.store(v, Ordering::SeqCst)
    }

    /// Compare-and-swap; returns whether the swap happened.
    pub fn compare_set(&self, expect: bool, new: bool) -> bool {
        self.exec.yield_point("atomic.cas", TState::Runnable);
        self.inner
            .compare_exchange(expect, new, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }
}

// ---------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------

struct Outcome {
    abort: Option<String>,
    choices: Vec<ChoiceRec>,
    trace: String,
}

fn run_once<F>(mode: Mode, prefix: Vec<usize>, body: &Arc<F>, max_threads: usize) -> Outcome
where
    F: Fn(&Env) + Send + Sync + 'static,
{
    let exec = Arc::new(Exec::new(mode, prefix, max_threads));
    let env = Env {
        exec: Arc::clone(&exec),
    };
    let b = Arc::clone(body);
    exec.spawn_model_thread(move || b(&env));
    exec.start();
    let (abort, choices, trace) = exec.wait_done();
    let handles = std::mem::take(&mut *exec.handles.lock().unwrap_or_else(|p| p.into_inner()));
    for h in handles {
        let _ = h.join();
    }
    Outcome {
        abort,
        choices,
        trace,
    }
}

/// Exhaustively explores every schedule of `body` within
/// [`Config::preemption_bound`], panicking on the driver thread if any
/// schedule panics or deadlocks. Returns how many schedules ran.
pub fn explore<F>(cfg: Config, body: F) -> Report
where
    F: Fn(&Env) + Send + Sync + 'static,
{
    install_quiet_hook();
    let body = Arc::new(body);
    let mut prefix: Vec<usize> = Vec::new();
    let mut executions = 0u64;
    loop {
        executions += 1;
        let out = run_once(
            Mode::Exhaustive {
                bound: cfg.preemption_bound,
            },
            prefix.clone(),
            &body,
            cfg.max_threads,
        );
        if let Some(abort) = out.abort {
            panic!(
                "model failed on schedule #{executions}: {abort}\n  schedule: [{}]",
                out.trace
            );
        }
        // DFS frontier: deepest decision with an unexplored sibling.
        let next = (0..out.choices.len()).rev().find_map(|d| {
            let c = out.choices[d];
            (c.chosen + 1 < c.options).then(|| {
                let mut p: Vec<usize> = out.choices[..d].iter().map(|c| c.chosen).collect();
                p.push(c.chosen + 1);
                p
            })
        });
        match next {
            None => {
                return Report {
                    executions,
                    complete: true,
                }
            }
            Some(_) if executions >= cfg.max_executions => {
                return Report {
                    executions,
                    complete: false,
                }
            }
            Some(p) => prefix = p,
        }
    }
}

/// Runs `iterations` random schedules of `body` from `seed` (no
/// preemption bound), panicking with the seed and trace on failure.
pub fn explore_random<F>(cfg: Config, seed: u64, iterations: u64, body: F) -> Report
where
    F: Fn(&Env) + Send + Sync + 'static,
{
    install_quiet_hook();
    let body = Arc::new(body);
    for i in 0..iterations {
        let rng = (seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1;
        let out = run_once(Mode::Random { rng }, Vec::new(), &body, cfg.max_threads);
        if let Some(abort) = out.abort {
            panic!(
                "model failed on random schedule (seed {seed}, iteration {i}): {abort}\n  \
                 schedule: [{}]",
                out.trace
            );
        }
    }
    Report {
        executions: iterations,
        complete: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(bound: usize) -> Config {
        Config {
            preemption_bound: bound,
            ..Config::default()
        }
    }

    #[test]
    fn single_thread_model_runs_once() {
        let r = explore(small(2), |env| {
            let m = env.mutex(0u32);
            *m.lock() += 1;
            assert_eq!(*m.lock(), 1);
        });
        assert_eq!(r.executions, 1);
        assert!(r.complete);
    }

    #[test]
    fn mutex_is_mutually_exclusive_under_all_schedules() {
        let r = explore(small(2), |env| {
            let m = env.mutex((false, 0u32));
            let mut joins = Vec::new();
            for _ in 0..2 {
                let m = m.clone();
                joins.push(env.spawn(move || {
                    let mut g = m.lock();
                    assert!(!g.0, "two threads inside the critical section");
                    g.0 = true;
                    g.1 += 1;
                    g.0 = false;
                }));
            }
            for j in joins {
                j.join();
            }
            assert_eq!(m.lock().1, 2);
        });
        assert!(r.complete);
        assert!(r.executions > 1, "contention must branch the schedule");
    }

    #[test]
    fn explorer_finds_racy_increment() {
        // load-then-store on an atomic is the textbook lost update; the
        // explorer must find a schedule where the total is wrong. The
        // assert is on the MODEL; the test asserts the explorer panics.
        let found = std::panic::catch_unwind(|| {
            explore(small(2), |env| {
                let a = env.atomic_usize(0);
                let (a1, a2) = (a.clone(), a.clone());
                let t1 = env.spawn(move || {
                    let v = a1.load();
                    a1.store(v + 1);
                });
                let t2 = env.spawn(move || {
                    let v = a2.load();
                    a2.store(v + 1);
                });
                t1.join();
                t2.join();
                assert_eq!(a.load(), 2, "lost update");
            })
        });
        assert!(found.is_err(), "the lost update was not found");
    }

    #[test]
    fn atomic_fetch_add_has_no_lost_update() {
        let r = explore(small(2), |env| {
            let a = env.atomic_usize(0);
            let (a1, a2) = (a.clone(), a.clone());
            let t1 = env.spawn(move || {
                a1.fetch_add(1);
            });
            let t2 = env.spawn(move || {
                a2.fetch_add(1);
            });
            t1.join();
            t2.join();
            assert_eq!(a.load(), 2);
        });
        assert!(r.complete);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected_and_reported() {
        // Classic AB/BA deadlock; some schedule must wedge.
        explore(small(2), |env| {
            let a = env.mutex(());
            let b = env.mutex(());
            let (a1, b1) = (a.clone(), b.clone());
            let (a2, b2) = (a.clone(), b.clone());
            let t1 = env.spawn(move || {
                let _ga = a1.lock();
                let _gb = b1.lock();
            });
            let t2 = env.spawn(move || {
                let _gb = b2.lock();
                let _ga = a2.lock();
            });
            t1.join();
            t2.join();
        });
    }

    #[test]
    fn condvar_handshake_with_while_loop_never_hangs() {
        // The CORRECT shape: re-check the predicate in a while loop
        // under the lock. Exhaustive proof of no lost wakeup at bound 3.
        let r = explore(small(3), |env| {
            let m = env.mutex(false);
            let cv = env.condvar();
            let (m1, cv1) = (m.clone(), cv.clone());
            let waiter = env.spawn(move || {
                let mut g = m1.lock();
                while !*g {
                    cv1.wait(&mut g);
                }
            });
            let (m2, cv2) = (m.clone(), cv.clone());
            let signaler = env.spawn(move || {
                *m2.lock() = true;
                cv2.notify_one();
            });
            waiter.join();
            signaler.join();
        });
        assert!(r.complete);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn explorer_catches_injected_lost_wakeup() {
        // The INJECTED BUG the issue demands: the waiter checks the flag
        // in one critical section and waits in another. If the signaler
        // runs between them, the notify finds an empty wait queue and
        // the waiter sleeps forever — the explorer must find that
        // schedule and report the deadlock.
        explore(small(2), |env| {
            let m = env.mutex(false);
            let cv = env.condvar();
            let (m1, cv1) = (m.clone(), cv.clone());
            let waiter = env.spawn(move || {
                let ready = { *m1.lock() };
                if !ready {
                    let mut g = m1.lock();
                    cv1.wait(&mut g);
                }
            });
            let (m2, cv2) = (m.clone(), cv.clone());
            let signaler = env.spawn(move || {
                *m2.lock() = true;
                cv2.notify_one();
            });
            waiter.join();
            signaler.join();
        });
    }

    #[test]
    fn random_mode_runs_the_requested_iterations() {
        let r = explore_random(Config::default(), 0xDECAF, 25, |env| {
            let a = env.atomic_usize(0);
            let a1 = a.clone();
            let t = env.spawn(move || {
                a1.fetch_add(1);
            });
            t.join();
            assert_eq!(a.load(), 1);
        });
        assert_eq!(r.executions, 25);
    }

    #[test]
    fn preemption_bound_caps_the_schedule_space() {
        let count = |bound: usize| {
            explore(small(bound), |env| {
                let a = env.atomic_usize(0);
                let (a1, a2) = (a.clone(), a.clone());
                let t1 = env.spawn(move || {
                    a1.fetch_add(1);
                    a1.fetch_add(1);
                });
                let t2 = env.spawn(move || {
                    a2.fetch_add(1);
                    a2.fetch_add(1);
                });
                t1.join();
                t2.join();
            })
            .executions
        };
        let (b0, b1, b2) = (count(0), count(1), count(2));
        assert!(
            b0 < b1 && b1 < b2,
            "bound must widen the space: {b0} {b1} {b2}"
        );
    }
}
