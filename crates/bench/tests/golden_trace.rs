//! Golden-trace regression test: a small pinned-seed sweep whose
//! per-round quality trajectory is committed as a fixture. Any change to
//! strategy allocation order, RNG consumption, or quality arithmetic shows
//! up as a line-level diff here instead of a silent drift in the figures.
//!
//! To re-bless after an *intentional* behaviour change:
//! `ITAG_BLESS=1 cargo test -p itag-bench --test golden_trace`

use itag_bench::scenario::{run_strategy, SweepConfig};
use itag_strategy::StrategyKind;
use std::fmt::Write as _;
use std::path::PathBuf;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_trace.txt")
}

fn render_trace() -> String {
    let cfg = SweepConfig {
        resources: 120,
        initial_posts: 600,
        seed: 0x601D,
        ..SweepConfig::default()
    };
    let mut out = String::new();
    for kind in [
        StrategyKind::FewestPosts,
        StrategyKind::MostUnstable,
        StrategyKind::FpMu { min_posts: 5 },
    ] {
        let (report, _) = run_strategy(&cfg, kind, 300);
        for p in &report.series {
            writeln!(
                out,
                "{} {} {:.12}",
                report.strategy, p.spent, p.mean_quality
            )
            .unwrap();
        }
    }
    out
}

#[test]
fn quality_trajectory_matches_committed_fixture() {
    let trace = render_trace();
    let path = fixture_path();
    if std::env::var("ITAG_BLESS").is_ok() {
        std::fs::write(&path, &trace).unwrap();
    }
    let expected = std::fs::read_to_string(&path)
        .expect("fixture missing — run once with ITAG_BLESS=1 to create it");
    for (i, (got, want)) in trace.lines().zip(expected.lines()).enumerate() {
        assert_eq!(
            got,
            want,
            "trajectory diverges at line {} — a strategy-order or RNG regression \
             (re-bless with ITAG_BLESS=1 only if the change is intentional)",
            i + 1
        );
    }
    assert_eq!(
        trace.lines().count(),
        expected.lines().count(),
        "trajectory length changed"
    );
}

#[test]
fn trace_is_reproducible_within_a_process() {
    assert_eq!(render_trace(), render_trace());
}
