//! Golden-trace regression test: a small pinned-seed sweep whose
//! per-round quality trajectory is committed as a fixture. Any change to
//! strategy allocation order, RNG consumption, or quality arithmetic shows
//! up as a line-level diff here instead of a silent drift in the figures.
//!
//! To re-bless after an *intentional* behaviour change:
//! `ITAG_BLESS=1 cargo test -p itag-bench --test golden_trace`

use itag_bench::scenario::{run_strategy, SweepConfig};
use itag_strategy::StrategyKind;
use std::fmt::Write as _;
use std::path::PathBuf;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_trace.txt")
}

fn render_trace() -> String {
    let cfg = SweepConfig {
        resources: 120,
        initial_posts: 600,
        seed: 0x601D,
        ..SweepConfig::default()
    };
    let mut out = String::new();
    for kind in [
        StrategyKind::FewestPosts,
        StrategyKind::MostUnstable,
        StrategyKind::FpMu { min_posts: 5 },
    ] {
        let (report, _) = run_strategy(&cfg, kind, 300);
        for p in &report.series {
            writeln!(
                out,
                "{} {} {:.12}",
                report.strategy, p.spent, p.mean_quality
            )
            .unwrap();
        }
    }
    out
}

fn engine_fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_engine_trace.txt")
}

/// Renders a small multi-campaign engine run — three rounds through
/// `run_all_with` — as one line per (round, project): spend, approvals
/// and the quality trajectory, pinned to 12 decimals.
fn render_engine_trace(pipeline_depth: usize) -> String {
    use itag_bench::scenario::{build_multi_campaign, MultiCampaignConfig};
    let cfg = MultiCampaignConfig {
        projects: 4,
        resources: 60,
        initial_posts: 240,
        budget: 120,
        workers: 12,
        ..MultiCampaignConfig::default()
    };
    let (mut engine, projects) = build_multi_campaign(&cfg);
    let mut out = String::new();
    for round in 0..3u32 {
        let summaries = engine.run_all_with(40, 4, pipeline_depth).unwrap();
        for (p, s) in &summaries {
            writeln!(
                out,
                "round {round} project {} issued {} approved {} rejected {} quality {:.12}",
                p.0, s.issued, s.approved, s.rejected, s.quality
            )
            .unwrap();
        }
    }
    let checksum = engine.store_checksum();
    for p in &projects {
        let m = engine.monitor(*p).unwrap();
        writeln!(
            out,
            "final project {} spent {} quality {:.12} checksum {checksum}",
            p.0, m.budget_spent, m.quality_mean,
        )
        .unwrap();
    }
    out
}

#[test]
fn engine_trajectory_matches_committed_fixture_at_every_pipeline_depth() {
    // The engine-side golden trace: the round pipeline (off, depth 1,
    // depth 2) must render the exact same multi-round trajectory, and
    // that trajectory is pinned as a fixture so RNG-stream or merge-order
    // regressions surface as a line diff.
    let base = render_engine_trace(0);
    for depth in [1usize, 2] {
        assert_eq!(
            base,
            render_engine_trace(depth),
            "pipeline depth {depth} diverged from the barrier schedule"
        );
    }
    let path = engine_fixture_path();
    if std::env::var("ITAG_BLESS").is_ok() {
        std::fs::write(&path, &base).unwrap();
    }
    let expected = std::fs::read_to_string(&path)
        .expect("fixture missing — run once with ITAG_BLESS=1 to create it");
    for (i, (got, want)) in base.lines().zip(expected.lines()).enumerate() {
        assert_eq!(
            got,
            want,
            "engine trajectory diverges at line {} — a merge-order or RNG \
             regression (re-bless with ITAG_BLESS=1 only if intentional)",
            i + 1
        );
    }
    assert_eq!(
        base.lines().count(),
        expected.lines().count(),
        "engine trajectory length changed"
    );
}

#[test]
fn quality_trajectory_matches_committed_fixture() {
    let trace = render_trace();
    let path = fixture_path();
    if std::env::var("ITAG_BLESS").is_ok() {
        std::fs::write(&path, &trace).unwrap();
    }
    let expected = std::fs::read_to_string(&path)
        .expect("fixture missing — run once with ITAG_BLESS=1 to create it");
    for (i, (got, want)) in trace.lines().zip(expected.lines()).enumerate() {
        assert_eq!(
            got,
            want,
            "trajectory diverges at line {} — a strategy-order or RNG regression \
             (re-bless with ITAG_BLESS=1 only if the change is intentional)",
            i + 1
        );
    }
    assert_eq!(
        trace.lines().count(),
        expected.lines().count(),
        "trajectory length changed"
    );
}

#[test]
fn trace_is_reproducible_within_a_process() {
    assert_eq!(render_trace(), render_trace());
}
