//! Allocator benchmarks: greedy OPT planning at population scale vs the
//! exact DP on small instances (the DESIGN.md greedy-vs-DP ablation).

use criterion::{criterion_group, criterion_main, Criterion};
use itag_model::delicious::DeliciousConfig;
use itag_quality::gain::GainEstimator;
use std::hint::black_box;

fn estimator(n: usize) -> (GainEstimator, Vec<u32>) {
    let d = DeliciousConfig {
        resources: n,
        initial_posts: n * 5,
        eval_posts: 0,
        seed: 0xA1,
        ..DeliciousConfig::default()
    }
    .generate()
    .dataset;
    let counts = d.initial_counts();
    (GainEstimator::oracle(&d.latent), counts)
}

fn bench_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocator/greedy_plan");
    group.sample_size(10);
    for (n, budget) in [(1_000usize, 10_000u32), (10_000, 10_000)] {
        let (gains, counts) = estimator(n);
        group.bench_function(format!("n{n}_b{budget}"), |b| {
            b.iter(|| black_box(gains.plan_greedy(&counts, budget)));
        });
    }
    group.finish();
}

fn bench_marginal_eval(c: &mut Criterion) {
    let (gains, counts) = estimator(1_000);
    c.bench_function("allocator/marginal_sweep_n1000", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (i, &k) in counts.iter().enumerate() {
                acc += gains.planning_marginal(i, k);
            }
            black_box(acc)
        });
    });
}

criterion_group!(benches, bench_greedy, bench_marginal_eval);
criterion_main!(benches);
