//! `table-store`: micro-benchmarks of the storage substrate (the MySQL
//! substitute): WAL append, point lookup, ordered scan, recovery.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use itag_store::db::{Durability, Store, StoreOptions};
use itag_store::table::Entity;
use itag_store::testutil::TestDir;
use itag_store::{TableId, TypedTable, WriteBatch};
use serde::{Deserialize, Serialize};
use std::hint::black_box;
use std::sync::Arc;

const T: TableId = TableId(1);

/// A record with enough string payload that decoding is non-trivial —
/// the shape the entity cache is built for.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct BenchRecord {
    id: u64,
    uri: String,
    description: String,
    counts: Vec<u32>,
}

impl Entity for BenchRecord {
    const TABLE: TableId = TableId(30);
    const NAME: &'static str = "bench-record";
    type Key = u64;

    fn primary_key(&self) -> u64 {
        self.id
    }
}

fn bench_typed_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("store/typed_get");
    for (name, cache) in [("cached", true), ("uncached", false)] {
        let table: TypedTable<BenchRecord> =
            TypedTable::new(Arc::new(Store::in_memory_with(StoreOptions {
                entity_cache: cache,
                ..StoreOptions::default()
            })));
        for id in 0..1_000u64 {
            table
                .upsert(&BenchRecord {
                    id,
                    uri: format!("https://example.org/resource/{id}"),
                    description: format!("synthetic benchmark record number {id}"),
                    counts: (0..16).collect(),
                })
                .unwrap();
        }
        // Point reads over a hot working set: with the cache on, repeat
        // reads skip the serbin decode entirely.
        group.bench_function(format!("hot_reads_{name}"), |b| {
            let mut i = 0u64;
            b.iter(|| {
                black_box(table.get(&(i % 64)).unwrap());
                i = i.wrapping_add(7);
            });
        });
        // The zero-copy variant: cache hits return the shared Arc.
        group.bench_function(format!("hot_reads_arc_{name}"), |b| {
            let mut i = 0u64;
            b.iter(|| {
                black_box(table.get_arc(&(i % 64)).unwrap());
                i = i.wrapping_add(7);
            });
        });
    }
    group.finish();
}

fn bench_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("store/commit");
    group.bench_function("put_in_memory", |b| {
        let store = Store::in_memory();
        let mut i = 0u64;
        b.iter(|| {
            store
                .put(T, i.to_be_bytes().to_vec(), vec![0u8; 64])
                .unwrap();
            i += 1;
        });
    });
    group.bench_function("batch100_in_memory", |b| {
        let store = Store::in_memory();
        let mut i = 0u64;
        b.iter(|| {
            let mut batch = WriteBatch::with_capacity(100);
            for _ in 0..100 {
                batch.put(T, i.to_be_bytes().to_vec(), vec![0u8; 64]);
                i += 1;
            }
            store.commit(batch).unwrap();
        });
    });
    group.bench_function("put_wal_buffered", |b| {
        let dir = TestDir::new("bench-wal");
        let store = Store::open(
            dir.path(),
            StoreOptions {
                durability: Durability::Buffered,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        let mut i = 0u64;
        b.iter(|| {
            store
                .put(T, i.to_be_bytes().to_vec(), vec![0u8; 64])
                .unwrap();
            i += 1;
        });
    });
    group.finish();
}

fn bench_reads(c: &mut Criterion) {
    let store = Store::in_memory();
    for i in 0..100_000u64 {
        store
            .put(T, i.to_be_bytes().to_vec(), i.to_le_bytes().to_vec())
            .unwrap();
    }
    let mut group = c.benchmark_group("store/read");
    group.bench_function("get_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            let key = (i % 100_000).to_be_bytes();
            black_box(store.get(T, &key).unwrap());
            i = i.wrapping_add(7919);
        });
    });
    group.bench_function("scan_range_100", |b| {
        let mut i = 0u64;
        b.iter(|| {
            let from = (i % 99_000).to_be_bytes();
            let to = ((i % 99_000) + 100).to_be_bytes();
            black_box(store.scan_range(T, &from, Some(&to)));
            i = i.wrapping_add(104_729);
        });
    });
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("store/recovery");
    group.sample_size(10);
    group.bench_function("replay_10k_wal_entries", |b| {
        b.iter_batched(
            || {
                let dir = TestDir::new("bench-recover");
                {
                    let store = Store::open(dir.path(), StoreOptions::default()).unwrap();
                    for i in 0..10_000u64 {
                        store
                            .put(T, i.to_be_bytes().to_vec(), vec![0u8; 32])
                            .unwrap();
                    }
                    store.sync().unwrap();
                }
                dir
            },
            |dir| {
                let store = Store::open(dir.path(), StoreOptions::default()).unwrap();
                assert_eq!(store.stats().recovered_entries, 10_000);
                black_box(store.count(T))
            },
            BatchSize::PerIteration,
        );
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_commit,
    bench_reads,
    bench_typed_reads,
    bench_recovery
);
criterion_main!(benches);
