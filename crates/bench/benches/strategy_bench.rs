//! Strategy micro-benchmarks: the per-batch CHOOSERESOURCES() cost of each
//! Table-I strategy at population scale, and a full Algorithm-1 run.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use itag_bench::scenario::{sim_world, SweepConfig};
use itag_strategy::framework::Framework;
use itag_strategy::kind::StrategyKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn cfg() -> SweepConfig {
    SweepConfig {
        resources: 10_000,
        initial_posts: 50_000,
        ..SweepConfig::default()
    }
}

fn bench_choose(c: &mut Criterion) {
    let mut group = c.benchmark_group("strategy/choose_batch10_n10k");
    group.sample_size(20);
    for kind in [
        StrategyKind::FreeChoice,
        StrategyKind::FewestPosts,
        StrategyKind::MostUnstable,
        StrategyKind::FpMu { min_posts: 5 },
        StrategyKind::Optimal,
    ] {
        group.bench_function(kind.label(), |b| {
            let world = sim_world(&cfg());
            let mut strategy = kind.build();
            let mut rng = StdRng::seed_from_u64(9);
            strategy.init(&world, 100_000, &mut rng);
            b.iter(|| black_box(strategy.choose(&world, 10, &mut rng)));
        });
    }
    group.finish();
}

fn bench_full_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("strategy/run_1k_tasks_n1k");
    group.sample_size(10);
    let small = SweepConfig {
        resources: 1_000,
        initial_posts: 5_000,
        ..SweepConfig::default()
    };
    for kind in [
        StrategyKind::FewestPosts,
        StrategyKind::FpMu { min_posts: 5 },
    ] {
        group.bench_function(kind.label(), |b| {
            b.iter_batched(
                || (sim_world(&small), kind.build(), StdRng::seed_from_u64(5)),
                |(mut world, mut strategy, mut rng)| {
                    black_box(Framework::default().run(
                        &mut world,
                        strategy.as_mut(),
                        1_000,
                        &mut rng,
                    ))
                },
                BatchSize::PerIteration,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_choose, bench_full_run);
criterion_main!(benches);
