//! End-to-end engine benchmark: the full pipeline of Fig. 2
//! (publish → worker → submit → approve → pay → rfd update → persist)
//! per task, plus the parallel tagging pool.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use itag_core::config::EngineConfig;
use itag_core::engine::ITagEngine;
use itag_core::project::ProjectSpec;
use itag_crowd::behavior::TaggerBehavior;
use itag_crowd::parallel::{run_parallel_tagging, TagJob};
use itag_model::delicious::DeliciousConfig;
use itag_model::ids::ResourceId;
use std::hint::black_box;

fn engine_with_project(n: usize, budget: u32) -> (ITagEngine, itag_model::ids::ProjectId) {
    let mut engine = ITagEngine::new(EngineConfig::in_memory(0xBE)).unwrap();
    let provider = engine.register_provider("bench").unwrap();
    let dataset = DeliciousConfig {
        resources: n,
        initial_posts: n * 5,
        eval_posts: 0,
        seed: 0xBE,
        ..DeliciousConfig::default()
    }
    .generate()
    .dataset;
    let p = engine
        .add_project(provider, ProjectSpec::demo("bench", budget), dataset)
        .unwrap();
    (engine, p)
}

fn bench_engine_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/pipeline");
    group.sample_size(10);
    group.bench_function("run_500_tasks_n500", |b| {
        b.iter_batched(
            || engine_with_project(500, 100_000),
            |(mut engine, p)| black_box(engine.run(p, 500).unwrap()),
            BatchSize::PerIteration,
        );
    });
    group.bench_function("monitor_n500", |b| {
        let (mut engine, p) = engine_with_project(500, 100_000);
        engine.run(p, 500).unwrap();
        b.iter(|| black_box(engine.monitor(p).unwrap()));
    });
    group.finish();
}

fn bench_parallel_pool(c: &mut Criterion) {
    let dataset = DeliciousConfig {
        resources: 100,
        initial_posts: 0,
        eval_posts: 0,
        seed: 3,
        ..DeliciousConfig::default()
    }
    .generate()
    .dataset;
    let jobs: Vec<TagJob> = (0..2_000u64)
        .map(|seq| TagJob {
            resource: ResourceId((seq % 100) as u32),
            seq,
        })
        .collect();

    let mut group = c.benchmark_group("engine/parallel_tagging_2k_jobs");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| {
                black_box(run_parallel_tagging(
                    &dataset.latent,
                    5_000,
                    TaggerBehavior::casual(),
                    &jobs,
                    threads,
                    42,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine_pipeline, bench_parallel_pool);
criterion_main!(benches);
