//! Parallel-tick throughput: many concurrent campaigns over Zipf-popular
//! resources, ticked through `ITagEngine::run_all_with` at 1/2/4/8 threads
//! and round-pipeline depths 0 (barrier schedule) and 2 (staged projects
//! drain through a dedicated merger while later projects tick). The
//! determinism suite guarantees every (threads, depth) cell computes the
//! same result, so the sweep measures pure scheduling.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use itag_bench::scenario::{build_multi_campaign, MultiCampaignConfig};
use itag_core::config::ReputationMode;
use std::hint::black_box;

fn bench_multi_campaign(c: &mut Criterion) {
    let cfg = MultiCampaignConfig::default();
    let total_tasks = cfg.projects as u32 * cfg.budget;
    let name = format!("engine/multi_campaign_{}x{}tasks", cfg.projects, cfg.budget);
    let mut group = c.benchmark_group(&name);
    group.sample_size(10);
    for pipeline_depth in [0usize, 2] {
        for threads in [1usize, 2, 4, 8] {
            group.bench_function(
                format!("threads_{threads}_pipeline_{pipeline_depth}"),
                |b| {
                    b.iter_batched(
                        || build_multi_campaign(&cfg),
                        |(mut engine, _projects)| {
                            let summaries = engine
                                .run_all_with(cfg.budget, threads, pipeline_depth)
                                .unwrap();
                            let issued: u32 = summaries.iter().map(|(_, s)| s.issued).sum();
                            assert_eq!(issued, total_tasks);
                            black_box(summaries)
                        },
                        BatchSize::PerIteration,
                    );
                },
            );
        }
    }
    group.finish();
}

/// The large-population scenario: a registered tagger population far
/// beyond the per-round worker set, the campaign budget split over
/// several rounds so per-round costs show. The `rescan` reputation
/// schedule rebuilds the round-start snapshot by scanning that whole
/// population every round; the `ledger` schedule applies the round's
/// per-worker deltas instead — the gap between the two cells is exactly
/// the per-round cost that used to scale with the registered population.
fn bench_large_population(c: &mut Criterion) {
    let rounds = 5u32;
    let cfg = MultiCampaignConfig {
        projects: 2,
        resources: 50,
        initial_posts: 250,
        budget: 50,
        workers: 12,
        registered_taggers: 20_000,
        ..MultiCampaignConfig::default()
    };
    let per_round = cfg.budget.div_ceil(rounds);
    let total_tasks = cfg.projects as u32 * cfg.budget;
    let name = format!(
        "engine/large_population_{}taggers_{}rounds",
        cfg.registered_taggers, rounds
    );
    let mut group = c.benchmark_group(&name);
    group.sample_size(10);
    for mode in [ReputationMode::Ledger, ReputationMode::Rescan] {
        let cfg = MultiCampaignConfig {
            reputation: Some(mode),
            ..cfg.clone()
        };
        group.bench_function(format!("{mode:?}").to_lowercase(), |b| {
            b.iter_batched(
                || build_multi_campaign(&cfg),
                |(mut engine, _projects)| {
                    let mut issued = 0u32;
                    for _ in 0..rounds {
                        let summaries = engine.run_all_with(per_round, 2, 2).unwrap();
                        issued += summaries.iter().map(|(_, s)| s.issued).sum::<u32>();
                    }
                    assert_eq!(issued, total_tasks);
                    black_box(issued)
                },
                BatchSize::PerIteration,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_multi_campaign, bench_large_population);
criterion_main!(benches);
