//! Parallel-tick throughput: many concurrent campaigns over Zipf-popular
//! resources, ticked through `ITagEngine::run_all_on` at 1/2/4/8 threads.
//! Per-iteration time over a fixed task count is the ticks/sec figure; the
//! determinism suite guarantees every thread count computes the same
//! result, so the sweep measures pure scaling.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use itag_bench::scenario::{build_multi_campaign, MultiCampaignConfig};
use std::hint::black_box;

fn bench_multi_campaign(c: &mut Criterion) {
    let cfg = MultiCampaignConfig::default();
    let total_tasks = cfg.projects as u32 * cfg.budget;
    let name = format!("engine/multi_campaign_{}x{}tasks", cfg.projects, cfg.budget);
    let mut group = c.benchmark_group(&name);
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("threads_{threads}"), |b| {
            b.iter_batched(
                || build_multi_campaign(&cfg),
                |(mut engine, _projects)| {
                    let summaries = engine.run_all_on(cfg.budget, threads).unwrap();
                    let issued: u32 = summaries.iter().map(|(_, s)| s.issued).sum();
                    assert_eq!(issued, total_tasks);
                    black_box(summaries)
                },
                BatchSize::PerIteration,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_multi_campaign);
criterion_main!(benches);
