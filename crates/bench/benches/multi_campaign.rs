//! Parallel-tick throughput: many concurrent campaigns over Zipf-popular
//! resources, ticked through `ITagEngine::run_all_with` at 1/2/4/8 threads
//! and round-pipeline depths 0 (barrier schedule) and 2 (staged projects
//! drain through a dedicated merger while later projects tick). The
//! determinism suite guarantees every (threads, depth) cell computes the
//! same result, so the sweep measures pure scheduling.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use itag_bench::scenario::{build_multi_campaign, MultiCampaignConfig};
use std::hint::black_box;

fn bench_multi_campaign(c: &mut Criterion) {
    let cfg = MultiCampaignConfig::default();
    let total_tasks = cfg.projects as u32 * cfg.budget;
    let name = format!("engine/multi_campaign_{}x{}tasks", cfg.projects, cfg.budget);
    let mut group = c.benchmark_group(&name);
    group.sample_size(10);
    for pipeline_depth in [0usize, 2] {
        for threads in [1usize, 2, 4, 8] {
            group.bench_function(
                format!("threads_{threads}_pipeline_{pipeline_depth}"),
                |b| {
                    b.iter_batched(
                        || build_multi_campaign(&cfg),
                        |(mut engine, _projects)| {
                            let summaries = engine
                                .run_all_with(cfg.budget, threads, pipeline_depth)
                                .unwrap();
                            let issued: u32 = summaries.iter().map(|(_, s)| s.issued).sum();
                            assert_eq!(issued, total_tasks);
                            black_box(summaries)
                        },
                        BatchSize::PerIteration,
                    );
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_multi_campaign);
criterion_main!(benches);
