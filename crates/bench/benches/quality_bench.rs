//! Quality-metric micro-benchmarks: rfd updates, the stability kernels,
//! the oracle metric, and learning-curve fitting — the per-post UPDATE()
//! cost of Algorithm 1.

use criterion::{criterion_group, criterion_main, Criterion};
use itag_model::ids::TagId;
use itag_model::vocab::TagDistribution;
use itag_quality::curve::LearningCurve;
use itag_quality::history::{QualityPoint, ResourceQuality};
use itag_quality::metric::{QualityMetric, StabilityKernel};
use itag_quality::rfd::Rfd;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn seeded_state(posts: usize, distinct: u32, lag: usize) -> ResourceQuality {
    let mut rng = StdRng::seed_from_u64(1);
    let mut state = ResourceQuality::new(lag);
    for _ in 0..posts {
        let tags: Vec<TagId> = (0..3).map(|_| TagId(rng.gen_range(0..distinct))).collect();
        state.push_post(&tags);
    }
    state
}

fn bench_rfd(c: &mut Criterion) {
    let mut group = c.benchmark_group("quality/rfd");
    group.bench_function("add_3_tags", |b| {
        let mut rfd = Rfd::new();
        let tags = [TagId(1), TagId(7), TagId(13)];
        b.iter(|| rfd.add_tags(black_box(&tags)));
    });
    let a = {
        let mut r = Rfd::new();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..500 {
            r.add_tags(&[TagId(rng.gen_range(0..40))]);
        }
        r
    };
    let b2 = {
        let mut r = Rfd::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            r.add_tags(&[TagId(rng.gen_range(0..40))]);
        }
        r
    };
    group.bench_function("cosine_40_distinct", |b| {
        b.iter(|| black_box(a.cosine(&b2)));
    });
    group.bench_function("tv_40_distinct", |b| {
        b.iter(|| black_box(a.tv(&b2)));
    });
    group.finish();
}

fn bench_metric(c: &mut Criterion) {
    let mut group = c.benchmark_group("quality/metric");
    let state = seeded_state(200, 40, 5);
    for kernel in [
        StabilityKernel::Cosine,
        StabilityKernel::OneMinusTv,
        StabilityKernel::TopKJaccard { k: 10 },
    ] {
        let metric = QualityMetric::Stability { window: 5, kernel };
        group.bench_function(kernel.label(), |b| {
            b.iter(|| black_box(metric.eval(&state, None)));
        });
    }
    let latent = TagDistribution::new((0..40).map(|i| (TagId(i), 1.0 / (i + 1) as f64)).collect());
    group.bench_function("oracle", |b| {
        b.iter(|| black_box(QualityMetric::Oracle.eval(&state, Some(&latent))));
    });
    group.finish();
}

fn bench_curve(c: &mut Criterion) {
    let mut group = c.benchmark_group("quality/curve");
    let points: Vec<QualityPoint> = (1..100)
        .map(|k| QualityPoint {
            k,
            quality: 1.0 - 1.5 / ((k as f64 + 1.0).sqrt()),
        })
        .collect();
    group.bench_function("fit_100_points", |b| {
        b.iter(|| black_box(LearningCurve::fit(&points)));
    });
    let curve = LearningCurve::from_kappa(1.5);
    group.bench_function("planning_marginal", |b| {
        let mut k = 0u32;
        b.iter(|| {
            k = (k + 1) % 1000;
            black_box(curve.planning_marginal(k))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_rfd, bench_metric, bench_curve);
criterion_main!(benches);
