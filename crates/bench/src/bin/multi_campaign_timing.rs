//! `multi_campaign_timing` — wall-clock harness behind `BENCH_pr*.json`.
//!
//! ```text
//! cargo run --release -p itag-bench --bin multi_campaign_timing -- \
//!     [iters] [threads] [projects] [budget] [pipeline_depth] [registered_taggers] [rounds]
//! ```
//!
//! Runs the standard `MultiCampaignConfig` scenario (the same one the
//! Criterion `multi_campaign` bench sweeps) `iters` times at a fixed
//! thread count and round-pipeline depth (`0` = barrier schedule, `n` =
//! pipelined with a channel of `n`; default 2) and prints per-iteration
//! wall time plus tasks/sec for the best run. `registered_taggers`
//! (default 0) seeds that many inactive tagger accounts before the
//! campaigns start — the large-population scenario where the `rescan`
//! reputation schedule pays a per-round scan the `ledger` schedule
//! doesn't (select the schedule with `ITAG_REPUTATION=ledger|rescan`).
//! `rounds` (default 1) splits each campaign's budget across that many
//! `run_all_with` calls — per-round work like the reputation snapshot
//! happens once per call, so more rounds expose per-round costs that a
//! single full-budget round amortizes away. Criterion gives
//! distributions; this binary gives one stable headline number cheaply,
//! which is what the PR-over-PR BENCH_*.json records compare.

use itag_bench::scenario::{build_multi_campaign, MultiCampaignConfig};
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let iters: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);

    let mut cfg = MultiCampaignConfig::default();
    if let Some(projects) = args.next().and_then(|a| a.parse().ok()) {
        cfg.projects = projects;
    }
    if let Some(budget) = args.next().and_then(|a| a.parse().ok()) {
        cfg.budget = budget;
    }
    let pipeline_depth: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);
    if let Some(registered) = args.next().and_then(|a| a.parse().ok()) {
        cfg.registered_taggers = registered;
    }
    let rounds: u32 = args
        .next()
        .and_then(|a| a.parse().ok())
        .filter(|r| *r >= 1)
        .unwrap_or(1);
    let total_tasks = cfg.projects as u32 * cfg.budget;
    let per_round = cfg.budget.div_ceil(rounds);
    println!(
        "scenario: {} projects x {} tasks over {rounds} round(s), {} resources each, \
         {} registered taggers, threads={threads}, pipeline_depth={pipeline_depth}",
        cfg.projects, cfg.budget, cfg.resources, cfg.registered_taggers
    );

    let mut best = f64::INFINITY;
    for i in 0..iters {
        let (mut engine, _projects) = build_multi_campaign(&cfg);
        if i == 0 {
            println!(
                "reputation schedule: {:?}",
                engine.resolved_reputation_mode()
            );
        }
        let start = Instant::now();
        let mut issued = 0u32;
        for _ in 0..rounds {
            let summaries = engine
                .run_all_with(per_round, threads, pipeline_depth)
                .unwrap();
            issued += summaries.iter().map(|(_, s)| s.issued).sum::<u32>();
        }
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(issued, total_tasks);
        let stats = engine.store_stats();
        println!(
            "iter {i}: {:.3}s  ({:.0} tasks/s, cache {}h/{}m)",
            secs,
            total_tasks as f64 / secs,
            stats.cache_hits,
            stats.cache_misses,
        );
        best = best.min(secs);
    }
    println!(
        "best: {best:.3}s  throughput: {:.0} tasks/s",
        total_tasks as f64 / best
    );
}
