//! `figures` — regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p itag-bench --bin figures -- <experiment|all>
//! ```
//!
//! Experiments (DESIGN.md §5): `table1`, `quality-vs-budget`,
//! `satisfied-vs-budget`, `lowpost-vs-budget`, `popularity`,
//! `trace-replay`, `gatekeeping`, `convergence`, `switching`, `approval`,
//! `noise`, `throughput`, and the ablations `ablation-kernel`,
//! `ablation-ewma`, `ablation-window`, `ablation-switch`,
//! `ablation-batch`, `ablation-opt`.
//!
//! Each experiment prints a paper-style table and writes a CSV next to the
//! build artifacts (`target/figures/<id>.csv`).

use itag_bench::scenario::{gini, run_strategy, sim_world, SweepConfig};
use itag_bench::table::{delta, f, Table};
use itag_core::config::EngineConfig;
use itag_core::engine::ITagEngine;
use itag_core::project::ProjectSpec;
use itag_model::delicious::DeliciousConfig;
use itag_model::ids::ResourceId;
use itag_quality::history::ResourceQuality;
use itag_quality::metric::{QualityMetric, StabilityKernel};
use itag_strategy::framework::Framework;
use itag_strategy::kind::StrategyKind;
use itag_strategy::simenv::SimWorld;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Quality threshold used by the "satisfied" figure (τ).
const TAU: f64 = 0.75;
/// Post threshold used by the "low-post" figure.
const LOW_POSTS: u32 = 5;

fn out_dir() -> std::path::PathBuf {
    let dir = std::path::PathBuf::from("target/figures");
    let _ = std::fs::create_dir_all(&dir);
    dir
}

fn emit(id: &str, title: &str, table: &Table) {
    println!("== {id}: {title}");
    println!("{}", table.render());
    let path = out_dir().join(format!("{id}.csv"));
    if std::fs::write(&path, table.to_csv()).is_ok() {
        println!("(csv: {})\n", path.display());
    }
}

fn lineup() -> Vec<StrategyKind> {
    StrategyKind::paper_lineup(5)
}

/// Table I, measured: one row per strategy at a fixed budget.
fn table1() {
    let cfg = SweepConfig::default();
    let budget = 10_000;
    let baseline = sim_world(&cfg);
    let low0 = baseline.count_below_posts(LOW_POSTS);
    let sat0 = baseline.count_quality_at_least(TAU);

    let mut t = Table::new([
        "strategy",
        "dq_stability",
        "dq_oracle",
        "low_post_before",
        "low_post_after",
        "satisfied_before",
        "satisfied_after",
        "alloc_gini",
    ]);
    for kind in lineup() {
        let oracle0 = baseline.oracle_mean_quality();
        let (report, world) = run_strategy(&cfg, kind, budget);
        t.row([
            kind.label().to_string(),
            delta(report.improvement()),
            delta(world.oracle_mean_quality() - oracle0),
            low0.to_string(),
            world.count_below_posts(LOW_POSTS).to_string(),
            sat0.to_string(),
            world.count_quality_at_least(TAU).to_string(),
            f(gini(&report.allocation)),
        ]);
    }
    emit(
        "table1",
        &format!("strategy characteristics (n={}, B={budget})", cfg.resources),
        &t,
    );
}

/// §IV headline figure: quality improvement vs budget per strategy.
fn quality_vs_budget() {
    let cfg = SweepConfig::default();
    let budgets: Vec<u32> = (0..=5).map(|i| i * 2_000).collect();
    let mut t = Table::new(["budget", "FC", "RAND", "FP", "MU", "FP-MU", "OPT"]);
    for &b in &budgets {
        let mut cells = vec![b.to_string()];
        for kind in lineup() {
            let (report, _) = run_strategy(&cfg, kind, b);
            cells.push(delta(report.improvement()));
        }
        t.row(cells);
    }
    emit(
        "quality-vs-budget",
        &format!(
            "q(R,c+x) − q(R,c) vs budget (n={}, metric={})",
            cfg.resources,
            cfg.metric.label()
        ),
        &t,
    );
}

/// MU's Table-I claim: resources satisfying q ≥ τ vs budget.
fn satisfied_vs_budget() {
    let cfg = SweepConfig::default();
    let budgets: Vec<u32> = (0..=5).map(|i| i * 2_000).collect();
    let mut t = Table::new(["budget", "FC", "RAND", "FP", "MU", "FP-MU", "OPT"]);
    for &b in &budgets {
        let mut cells = vec![b.to_string()];
        for kind in lineup() {
            let (_, world) = run_strategy(&cfg, kind, b);
            cells.push(world.count_quality_at_least(TAU).to_string());
        }
        t.row(cells);
    }
    emit(
        "satisfied-vs-budget",
        &format!("#resources with q ≥ {TAU} vs budget (n={})", cfg.resources),
        &t,
    );
}

/// FP's Table-I claim: resources with few posts vs budget.
fn lowpost_vs_budget() {
    let cfg = SweepConfig::default();
    let budgets: Vec<u32> = (0..=5).map(|i| i * 2_000).collect();
    let mut t = Table::new(["budget", "FC", "RAND", "FP", "MU", "FP-MU", "OPT"]);
    for &b in &budgets {
        let mut cells = vec![b.to_string()];
        for kind in lineup() {
            let (_, world) = run_strategy(&cfg, kind, b);
            cells.push(world.count_below_posts(LOW_POSTS).to_string());
        }
        t.row(cells);
    }
    emit(
        "lowpost-vs-budget",
        &format!(
            "#resources with < {LOW_POSTS} posts vs budget (n={})",
            cfg.resources
        ),
        &t,
    );
}

/// §IV fidelity check: FC sampled from the popularity law vs FC replayed
/// from the recorded evaluation trace — the synthetic crowd should be
/// statistically indistinguishable from the "real" stream it models.
fn trace_replay() {
    use itag_strategy::trace_replay::TraceReplay;

    let corpus = DeliciousConfig {
        resources: 1_000,
        initial_posts: 5_000,
        eval_posts: 8_000,
        seed: 0x2010,
        ..DeliciousConfig::default()
    }
    .generate();
    let budget = 8_000u32;
    let fw = Framework {
        batch_size: 10,
        record_every: 2_000,
    };

    let mut t = Table::new(["plan", "improvement", "low_post_after", "alloc_gini"]);
    // Synthetic FC.
    {
        let mut world = SimWorld::new(corpus.dataset.clone(), QualityMetric::default());
        let mut strategy = StrategyKind::FreeChoice.build();
        let mut rng = StdRng::seed_from_u64(0x2010);
        let report = fw.run(&mut world, strategy.as_mut(), budget, &mut rng);
        t.row([
            "FC (sampled)".to_string(),
            delta(report.improvement()),
            world.count_below_posts(LOW_POSTS).to_string(),
            f(itag_bench::scenario::gini(&report.allocation)),
        ]);
    }
    // Trace-replayed FC.
    {
        let mut world = SimWorld::new(corpus.dataset.clone(), QualityMetric::default());
        let mut strategy = TraceReplay::from_trace(&corpus.eval_trace);
        let mut rng = StdRng::seed_from_u64(0x2010);
        let report = fw.run(&mut world, &mut strategy, budget, &mut rng);
        t.row([
            "FC (trace replay)".to_string(),
            delta(report.improvement()),
            world.count_below_posts(LOW_POSTS).to_string(),
            f(itag_bench::scenario::gini(&report.allocation)),
        ]);
    }
    emit(
        "trace-replay",
        "synthetic FC vs recorded-trace FC (n=1000, B=8000)",
        &t,
    );
}

/// §I comparison with CrowdFlower/CrowdSource: "their only way to control
/// the tagging quality is by limiting tasks only to pre-qualified
/// workforce". Three regimes on the same corpus and budget.
fn gatekeeping() {
    use itag_crowd::approval::ApprovalPolicy;

    let run = |label: &str,
               spammer_fraction: f64,
               approval: ApprovalPolicy,
               enforce: bool,
               t: &mut Table| {
        let mut config = EngineConfig::in_memory(0x6A7E);
        config.spammer_fraction = spammer_fraction;
        config.enforce_reliability = enforce;
        let mut engine = ITagEngine::new(config).expect("engine");
        let provider = engine.register_provider("gatekeeping").expect("register");
        let dataset = DeliciousConfig {
            resources: 200,
            initial_posts: 1_000,
            eval_posts: 0,
            seed: 0x6A7E,
            ..DeliciousConfig::default()
        }
        .generate()
        .dataset;
        let mut spec = ProjectSpec::demo("gate", 2_000);
        spec.approval = approval;
        let p = engine
            .add_project(provider, spec, dataset)
            .expect("project");
        let oracle0 = engine.monitor(p).expect("monitor").oracle_quality;
        let summary = engine.run(p, 2_000).expect("run");
        let m = engine.monitor(p).expect("monitor");
        let oracle_gain = m.oracle_quality - oracle0;
        t.row([
            label.to_string(),
            delta(summary.improvement),
            delta(oracle_gain),
            m.paid.to_string(),
            format!("{:.0}", m.paid as f64 / oracle_gain.max(1e-9)),
            m.banned_taggers.to_string(),
        ]);
    };

    let mut t = Table::new([
        "regime",
        "dq_stability",
        "dq_oracle",
        "paid_c",
        "cents_per_oracle_dq",
        "banned",
    ]);
    // Open crowd (20% spammers), no quality control at all.
    run(
        "open crowd, accept-all",
        0.2,
        ApprovalPolicy::AcceptAll,
        false,
        &mut t,
    );
    // Open crowd, iTag's approval + reliability enforcement.
    run(
        "open crowd, iTag approval+ban",
        0.2,
        ApprovalPolicy::default(),
        true,
        &mut t,
    );
    // Pre-qualified workforce (no spammers admitted), accept-all — the
    // CrowdFlower/CrowdSource model the paper contrasts against.
    run(
        "pre-qualified, accept-all",
        0.0,
        ApprovalPolicy::AcceptAll,
        false,
        &mut t,
    );
    emit(
        "gatekeeping",
        "quality control regimes: accept-all vs iTag approval vs pre-qualification (n=200, B=2000)",
        &t,
    );
}

/// §I motivation: the popularity skew of free-choice tagging.
fn popularity() {
    let mut t = Table::new([
        "zipf_s",
        "gini",
        "head10_share",
        "zero_frac",
        "median",
        "max",
    ]);
    for s in [0.0, 0.5, 1.0, 1.5] {
        let d = DeliciousConfig {
            resources: 2_000,
            initial_posts: 10_000,
            eval_posts: 0,
            popularity_exponent: s,
            seed: 0xF0F0,
            ..DeliciousConfig::default()
        }
        .generate();
        let stats = d.dataset.stats();
        t.row([
            format!("{s:.1}"),
            f(stats.gini),
            f(stats.head_share),
            f(stats.zero_fraction),
            stats.median_posts.to_string(),
            stats.max_posts.to_string(),
        ]);
    }
    emit(
        "popularity",
        "post-count skew under free-choice arrival (10k posts on 2k resources)",
        &t,
    );
}

/// §II: rfd stability convergence, stability vs oracle.
fn convergence() {
    let d = DeliciousConfig {
        resources: 200,
        initial_posts: 0,
        eval_posts: 0,
        seed: 0xC0,
        ..DeliciousConfig::default()
    }
    .generate()
    .dataset;

    // Pick the most peaked and the flattest latent as exemplars.
    let mut by_kappa: Vec<usize> = (0..d.len()).collect();
    by_kappa.sort_by(|&a, &b| d.latent[a].kappa().total_cmp(&d.latent[b].kappa()));
    let peaked = by_kappa[0];
    let flat = *by_kappa.last().expect("non-empty");

    let metric = QualityMetric::default();
    let checkpoints = [1u32, 2, 5, 10, 20, 50, 100, 200];
    let mut t = Table::new([
        "k",
        "stab_peaked",
        "oracle_peaked",
        "stab_flat",
        "oracle_flat",
    ]);
    let mut rng = StdRng::seed_from_u64(7);
    let mut run_resource = |i: usize| -> Vec<(f64, f64)> {
        let mut state = ResourceQuality::new(5);
        let mut samples = Vec::new();
        for k in 1..=200u32 {
            let tags = d.sample_honest_tags(
                ResourceId(i as u32),
                itag_model::vocab::TagsPerPost::default(),
                &mut rng,
            );
            state.push_post(&tags);
            if checkpoints.contains(&k) {
                samples.push((
                    metric.eval(&state, None),
                    QualityMetric::Oracle.eval(&state, Some(&d.latent[i])),
                ));
            }
        }
        samples
    };
    let sp = run_resource(peaked);
    let sf = run_resource(flat);
    for (idx, &k) in checkpoints.iter().enumerate() {
        t.row([
            k.to_string(),
            f(sp[idx].0),
            f(sp[idx].1),
            f(sf[idx].0),
            f(sf[idx].1),
        ]);
    }
    emit(
        "convergence",
        &format!(
            "quality vs posts for a peaked (κ={:.2}) and a flat (κ={:.2}) resource",
            d.latent[peaked].kappa(),
            d.latent[flat].kappa()
        ),
        &t,
    );

    // Correlation between the observable stability signal and the oracle
    // across a population of resources at k = 20.
    let mut stab = Vec::new();
    let mut orac = Vec::new();
    for i in 0..d.len() {
        let mut state = ResourceQuality::new(5);
        for _ in 0..20 {
            let tags = d.sample_honest_tags(
                ResourceId(i as u32),
                itag_model::vocab::TagsPerPost::default(),
                &mut rng,
            );
            state.push_post(&tags);
        }
        stab.push(metric.eval(&state, None));
        orac.push(QualityMetric::Oracle.eval(&state, Some(&d.latent[i])));
    }
    let r = pearson(&stab, &orac);
    let mut t2 = Table::new(["population", "k", "pearson_r"]);
    t2.row([d.len().to_string(), "20".to_string(), f(r)]);
    emit(
        "convergence-correlation",
        "stability-vs-oracle correlation across resources",
        &t2,
    );
}

/// Fig. 5 story: switching strategies mid-run.
fn switching() {
    let cfg = SweepConfig::default();
    let budget = 8_000u32;
    let half = budget / 2;

    let run_pure = |kind: StrategyKind| -> f64 {
        let (report, _) = run_strategy(&cfg, kind, budget);
        report.improvement()
    };

    // FC for half the budget, then switch to MU (same world carries over).
    let switched = {
        let mut world = sim_world(&cfg);
        let q0 = {
            use itag_strategy::env::EnvView;
            world.mean_quality()
        };
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5EED);
        let fw = Framework {
            batch_size: cfg.batch_size,
            record_every: 1_000,
        };
        let mut fc = StrategyKind::FreeChoice.build();
        let _ = fw.run(&mut world, fc.as_mut(), half, &mut rng);
        let mut mu = StrategyKind::MostUnstable.build();
        let second = fw.run(&mut world, mu.as_mut(), budget - half, &mut rng);
        second.final_quality - q0
    };

    let mut t = Table::new(["plan", "improvement"]);
    t.row([
        "FC (full budget)".to_string(),
        delta(run_pure(StrategyKind::FreeChoice)),
    ]);
    t.row([
        "MU (full budget)".to_string(),
        delta(run_pure(StrategyKind::MostUnstable)),
    ]);
    t.row([format!("FC→MU (switch at {half})"), delta(switched)]);
    emit(
        "switching",
        "changing the strategy mid-run rescues a mis-configured campaign",
        &t,
    );
}

/// User Manager figure: approval rates and payments vs spammer share.
fn approval() {
    let mut t = Table::new([
        "spammer_frac",
        "approved",
        "rejected",
        "paid_c",
        "refunded_c",
        "improvement",
        "unreliable_taggers",
    ]);
    for s in [0.0, 0.1, 0.3, 0.5] {
        let mut config = EngineConfig::in_memory(0xAB);
        config.spammer_fraction = s;
        let mut engine = ITagEngine::new(config).expect("in-memory engine");
        let provider = engine.register_provider("fig-approval").expect("register");
        let dataset = DeliciousConfig {
            resources: 200,
            initial_posts: 1_000,
            eval_posts: 0,
            seed: 0xAB,
            ..DeliciousConfig::default()
        }
        .generate()
        .dataset;
        let p = engine
            .add_project(provider, ProjectSpec::demo("approval", 2_000), dataset)
            .expect("project");
        let summary = engine.run(p, 2_000).expect("run");
        let m = engine.monitor(p).expect("monitor");
        let unreliable = engine.unreliable_tagger_count().unwrap_or(0);
        t.row([
            format!("{s:.1}"),
            summary.approved.to_string(),
            summary.rejected.to_string(),
            m.paid.to_string(),
            m.refunded.to_string(),
            delta(summary.improvement),
            unreliable.to_string(),
        ]);
    }
    emit(
        "approval",
        "approval pipeline vs spammer share (n=200, B=2000, pay=5c)",
        &t,
    );
}

/// §I "noisy" taggers: improvement vs noise rate per strategy.
fn noise() {
    let mut t = Table::new(["noise", "FC", "FP", "MU", "FP-MU"]);
    for noise in [0.0, 0.2, 0.4, 0.6, 0.8] {
        let cfg = SweepConfig {
            resources: 500,
            initial_posts: 2_500,
            noise,
            ..SweepConfig::default()
        };
        let mut cells = vec![format!("{noise:.1}")];
        for kind in [
            StrategyKind::FreeChoice,
            StrategyKind::FewestPosts,
            StrategyKind::MostUnstable,
            StrategyKind::FpMu { min_posts: 5 },
        ] {
            let (report, _) = run_strategy(&cfg, kind, 3_000);
            cells.push(delta(report.improvement()));
        }
        t.row(cells);
    }
    emit(
        "noise",
        "quality improvement vs tagger noise rate (n=500, B=3000)",
        &t,
    );
}

/// Architecture figure: end-to-end engine throughput.
fn throughput() {
    let mut t = Table::new(["resources", "tasks", "seconds", "tasks_per_sec"]);
    for n in [100usize, 1_000, 5_000] {
        let mut engine = ITagEngine::new(EngineConfig::in_memory(0x7A)).expect("engine");
        let provider = engine
            .register_provider("fig-throughput")
            .expect("register");
        let dataset = DeliciousConfig {
            resources: n,
            initial_posts: n * 5,
            eval_posts: 0,
            seed: 0x7A,
            ..DeliciousConfig::default()
        }
        .generate()
        .dataset;
        let tasks = 2_000u32;
        let p = engine
            .add_project(provider, ProjectSpec::demo("throughput", tasks), dataset)
            .expect("project");
        let start = Instant::now();
        let _ = engine.run(p, tasks).expect("run");
        let secs = start.elapsed().as_secs_f64();
        t.row([
            n.to_string(),
            tasks.to_string(),
            f(secs),
            format!("{:.0}", tasks as f64 / secs),
        ]);
    }
    emit(
        "throughput",
        "full pipeline throughput: publish → tag → approve → pay → update",
        &t,
    );
}

/// Ablation: stability kernel choice.
fn ablation_kernel() {
    let mut t = Table::new(["kernel", "dq_stability", "dq_oracle"]);
    for kernel in [
        StabilityKernel::Cosine,
        StabilityKernel::OneMinusTv,
        StabilityKernel::TopKJaccard { k: 5 },
    ] {
        let cfg = SweepConfig {
            metric: QualityMetric::Stability { window: 5, kernel },
            ..SweepConfig::default()
        };
        let base_oracle = sim_world(&cfg).oracle_mean_quality();
        let (report, world) = run_strategy(&cfg, StrategyKind::MostUnstable, 6_000);
        t.row([
            kernel.label(),
            delta(report.improvement()),
            delta(world.oracle_mean_quality() - base_oracle),
        ]);
    }
    emit(
        "ablation-kernel",
        "MU under different stability kernels (n=1000, B=6000)",
        &t,
    );
}

/// Ablation: stability window.
fn ablation_window() {
    let mut t = Table::new(["window", "dq_stability", "dq_oracle"]);
    for window in [1u32, 3, 5, 10] {
        let cfg = SweepConfig {
            metric: QualityMetric::Stability {
                window,
                kernel: StabilityKernel::Cosine,
            },
            ..SweepConfig::default()
        };
        let base_oracle = sim_world(&cfg).oracle_mean_quality();
        let (report, world) = run_strategy(&cfg, StrategyKind::MostUnstable, 6_000);
        t.row([
            window.to_string(),
            delta(report.improvement()),
            delta(world.oracle_mean_quality() - base_oracle),
        ]);
    }
    emit(
        "ablation-window",
        "MU under different stability windows (n=1000, B=6000)",
        &t,
    );
}

/// Ablation: EWMA smoothing of the stability signal (DESIGN.md §2's
/// optional smoothing). Less ranking churn for MU, at the cost of lag.
fn ablation_ewma() {
    // Δq is reported on the ORACLE metric only: the smoothed score is not
    // comparable across alphas, but the allocation it induces is.
    let mut t = Table::new(["alpha", "dq_oracle", "satisfied_after"]);
    let mut runs: Vec<(String, QualityMetric)> = vec![(
        "1.0 (raw)".to_string(),
        QualityMetric::Stability {
            window: 5,
            kernel: StabilityKernel::Cosine,
        },
    )];
    for alpha in [0.5, 0.3, 0.1] {
        runs.push((
            format!("{alpha:.1}"),
            QualityMetric::SmoothedStability {
                window: 5,
                kernel: StabilityKernel::Cosine,
                alpha,
            },
        ));
    }
    for (label, metric) in runs {
        let cfg = SweepConfig {
            metric,
            ..SweepConfig::default()
        };
        let base_oracle = sim_world(&cfg).oracle_mean_quality();
        let (_report, world) = run_strategy(&cfg, StrategyKind::MostUnstable, 6_000);
        t.row([
            label,
            delta(world.oracle_mean_quality() - base_oracle),
            world.count_quality_at_least(TAU).to_string(),
        ]);
    }
    emit(
        "ablation-ewma",
        "MU under EWMA-smoothed stability (n=1000, B=6000; oracle gain isolates allocation effects)",
        &t,
    );
}

/// Ablation: FP→MU switch point.
fn ablation_switch() {
    let mut t = Table::new([
        "min_posts",
        "dq_stability",
        "low_post_after",
        "satisfied_after",
    ]);
    for min_posts in [1u32, 3, 5, 10, 20] {
        let cfg = SweepConfig::default();
        let (report, world) = run_strategy(&cfg, StrategyKind::FpMu { min_posts }, 6_000);
        t.row([
            min_posts.to_string(),
            delta(report.improvement()),
            world.count_below_posts(LOW_POSTS).to_string(),
            world.count_quality_at_least(TAU).to_string(),
        ]);
    }
    emit(
        "ablation-switch",
        "FP-MU switch threshold sweep (n=1000, B=6000)",
        &t,
    );
}

/// Ablation: CHOOSERESOURCES batch size.
fn ablation_batch() {
    let mut t = Table::new(["batch", "dq_stability", "seconds"]);
    for batch in [1usize, 10, 100] {
        let cfg = SweepConfig {
            batch_size: batch,
            ..SweepConfig::default()
        };
        let start = Instant::now();
        let (report, _) = run_strategy(&cfg, StrategyKind::FpMu { min_posts: 5 }, 6_000);
        t.row([
            batch.to_string(),
            delta(report.improvement()),
            f(start.elapsed().as_secs_f64()),
        ]);
    }
    emit(
        "ablation-batch",
        "batch size of CHOOSERESOURCES() (n=1000, B=6000)",
        &t,
    );
}

/// Ablation: greedy vs DP optimal.
fn ablation_opt() {
    let cfg = SweepConfig {
        resources: 50,
        initial_posts: 250,
        ..SweepConfig::default()
    };
    let budget = 200u32;
    let start_g = Instant::now();
    let (greedy, _) = run_strategy(&cfg, StrategyKind::Optimal, budget);
    let t_g = start_g.elapsed().as_secs_f64();
    let start_d = Instant::now();
    let (dp, _) = run_strategy(&cfg, StrategyKind::OptimalDp, budget);
    let t_d = start_d.elapsed().as_secs_f64();

    let mut t = Table::new(["allocator", "final_quality", "seconds"]);
    t.row(["OPT-greedy".to_string(), f(greedy.final_quality), f(t_g)]);
    t.row(["OPT-DP".to_string(), f(dp.final_quality), f(t_d)]);
    emit(
        "ablation-opt",
        &format!("greedy vs exact DP optimal (n=50, B={budget}; concave gains ⇒ equal quality)"),
        &t,
    );
}

fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let start = Instant::now();
    let experiments: Vec<(&str, fn())> = vec![
        ("table1", table1),
        ("quality-vs-budget", quality_vs_budget),
        ("satisfied-vs-budget", satisfied_vs_budget),
        ("lowpost-vs-budget", lowpost_vs_budget),
        ("popularity", popularity),
        ("trace-replay", trace_replay),
        ("gatekeeping", gatekeeping),
        ("convergence", convergence),
        ("switching", switching),
        ("approval", approval),
        ("noise", noise),
        ("throughput", throughput),
        ("ablation-kernel", ablation_kernel),
        ("ablation-ewma", ablation_ewma),
        ("ablation-window", ablation_window),
        ("ablation-switch", ablation_switch),
        ("ablation-batch", ablation_batch),
        ("ablation-opt", ablation_opt),
    ];
    let mut ran = 0;
    for (name, run) in &experiments {
        if which == "all" || which == *name {
            run();
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!("unknown experiment '{which}'. available:");
        for (name, _) in &experiments {
            eprintln!("  {name}");
        }
        eprintln!("  all");
        std::process::exit(2);
    }
    eprintln!("done in {:.1}s", start.elapsed().as_secs_f64());
}
