//! # itag-bench — experiment harness
//!
//! Shared scenario builders and table rendering for the `figures` binary
//! (which regenerates every table/figure of the paper; see DESIGN.md §5)
//! and the Criterion micro-benchmarks.

pub mod scenario;
pub mod table;

pub use scenario::{run_strategy, sim_world, SweepConfig};
pub use table::Table;
