//! Scenario builders shared by the figure harness and the benches.

use itag_core::config::{EngineConfig, ReputationMode};
use itag_core::engine::ITagEngine;
use itag_core::project::ProjectSpec;
use itag_model::delicious::{DeliciousConfig, DeliciousDataset};
use itag_model::ids::ProjectId;
use itag_quality::metric::QualityMetric;
use itag_strategy::framework::{Framework, RunReport};
use itag_strategy::simenv::SimWorld;
use itag_strategy::StrategyKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters of one strategy-comparison sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    pub resources: usize,
    pub initial_posts: usize,
    pub seed: u64,
    pub metric: QualityMetric,
    pub batch_size: usize,
    pub noise: f64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            resources: 1_000,
            initial_posts: 5_000,
            seed: 0xDE11,
            metric: QualityMetric::default(),
            batch_size: 10,
            noise: 0.0,
        }
    }
}

impl SweepConfig {
    /// The generated corpus for this sweep (deterministic in the seed).
    pub fn corpus(&self) -> DeliciousDataset {
        DeliciousConfig {
            resources: self.resources,
            initial_posts: self.initial_posts,
            eval_posts: 0,
            seed: self.seed,
            ..DeliciousConfig::default()
        }
        .generate()
    }
}

/// Builds a fresh simulation world from a sweep config.
pub fn sim_world(cfg: &SweepConfig) -> SimWorld {
    SimWorld::new(cfg.corpus().dataset, cfg.metric).with_noise(cfg.noise)
}

/// Runs one strategy to `budget` on a fresh world; returns the report and
/// the world (for post-hoc counters like "#resources ≥ τ").
pub fn run_strategy(cfg: &SweepConfig, kind: StrategyKind, budget: u32) -> (RunReport, SimWorld) {
    let mut world = sim_world(cfg);
    let mut strategy = kind.build();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5EED);
    let report = Framework {
        batch_size: cfg.batch_size,
        record_every: (budget / 20).max(1),
    }
    .run(&mut world, strategy.as_mut(), budget, &mut rng);
    (report, world)
}

/// Gini coefficient of an allocation vector (task concentration).
pub fn gini(counts: &[u32]) -> f64 {
    itag_model::dataset::DatasetStats::compute(counts).gini
}

/// Parameters of a many-campaign engine workload: `projects` concurrent
/// campaigns, each over its own Zipf-popular resource set (the heavy-tailed
/// shape self-organized tagging systems exhibit), all ticked through
/// [`ITagEngine::run_all_on`]. This is the scenario the parallel-tick
/// bench sweeps across thread counts.
#[derive(Debug, Clone)]
pub struct MultiCampaignConfig {
    /// Concurrent campaigns.
    pub projects: usize,
    /// Resources per campaign.
    pub resources: usize,
    /// Pre-campaign posts per campaign.
    pub initial_posts: usize,
    /// Task budget per campaign.
    pub budget: u32,
    /// Zipf exponent of resource popularity (≈1 on Delicious).
    pub popularity_exponent: f64,
    /// Simulated workers per campaign platform.
    pub workers: usize,
    /// Registered-but-inactive tagger accounts seeded into the user table
    /// before the campaigns start — the north-star shape where the
    /// registered population dwarfs any round's worker set. Inactive
    /// accounts influence no decision (the equivalence suite proves it),
    /// but the `rescan` reputation schedule pays to walk them at every
    /// round start while the `ledger` schedule never sees them.
    pub registered_taggers: u32,
    /// Reputation schedule override (`None` = engine auto: config, then
    /// `ITAG_REPUTATION`, then the ledger default).
    pub reputation: Option<ReputationMode>,
    /// Master seed; each campaign derives its own dataset seed.
    pub seed: u64,
}

impl Default for MultiCampaignConfig {
    fn default() -> Self {
        MultiCampaignConfig {
            projects: 8,
            resources: 200,
            initial_posts: 1_000,
            budget: 200,
            popularity_exponent: 1.0,
            workers: 24,
            registered_taggers: 0,
            reputation: None,
            seed: 0x5CA1E,
        }
    }
}

/// Builds an in-memory engine populated with `cfg.projects` campaigns,
/// ready for [`ITagEngine::run_all_on`]. Deterministic in `cfg.seed`.
pub fn build_multi_campaign(cfg: &MultiCampaignConfig) -> (ITagEngine, Vec<ProjectId>) {
    let mut engine_config = EngineConfig::in_memory(cfg.seed);
    engine_config.workers = cfg.workers;
    engine_config.reputation = cfg.reputation;
    let mut engine = ITagEngine::new(engine_config).expect("in-memory engine");
    if cfg.registered_taggers > 0 {
        // Seed the inactive population well above the live worker-id
        // range so campaign workers never collide with it.
        engine
            .seed_taggers(1 << 20, cfg.registered_taggers)
            .expect("population seeding");
    }
    let provider = engine
        .register_provider("multi-campaign")
        .expect("provider registration");
    let mut projects = Vec::with_capacity(cfg.projects);
    for i in 0..cfg.projects {
        let dataset = DeliciousConfig {
            resources: cfg.resources,
            initial_posts: cfg.initial_posts,
            eval_posts: 0,
            popularity_exponent: cfg.popularity_exponent,
            seed: cfg
                .seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1)),
            ..DeliciousConfig::default()
        }
        .generate()
        .dataset;
        projects.push(
            engine
                .add_project(
                    provider,
                    ProjectSpec::demo(&format!("campaign-{i}"), cfg.budget),
                    dataset,
                )
                .expect("valid generated dataset"),
        );
    }
    (engine, projects)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worlds_are_deterministic_per_config() {
        let cfg = SweepConfig {
            resources: 100,
            initial_posts: 400,
            ..SweepConfig::default()
        };
        let (a, _) = run_strategy(&cfg, StrategyKind::FewestPosts, 200);
        let (b, _) = run_strategy(&cfg, StrategyKind::FewestPosts, 200);
        assert_eq!(a.final_quality, b.final_quality);
        assert_eq!(a.allocation, b.allocation);
    }

    #[test]
    fn informed_strategies_beat_fc_on_the_standard_corpus() {
        let cfg = SweepConfig {
            resources: 200,
            initial_posts: 1_000,
            ..SweepConfig::default()
        };
        let (fc, _) = run_strategy(&cfg, StrategyKind::FreeChoice, 600);
        let (fpmu, _) = run_strategy(&cfg, StrategyKind::FpMu { min_posts: 5 }, 600);
        assert!(
            fpmu.improvement() > fc.improvement(),
            "FP-MU {} vs FC {}",
            fpmu.improvement(),
            fc.improvement()
        );
    }

    #[test]
    fn gini_detects_concentration() {
        assert!(gini(&[1, 1, 1, 1]) < 0.01);
        assert!(gini(&[0, 0, 0, 100]) > 0.7);
    }

    #[test]
    fn registered_population_and_schedule_do_not_change_outcomes() {
        // The large-population scenario (registered taggers ≫ per-round
        // workers) must produce the same campaign results as the plain
        // one, in either reputation schedule — the population is pure
        // scan load for the rescan schedule, never signal.
        let base_cfg = MultiCampaignConfig {
            projects: 2,
            resources: 30,
            initial_posts: 120,
            budget: 40,
            workers: 8,
            ..MultiCampaignConfig::default()
        };
        let (mut base, projects) = build_multi_campaign(&base_cfg);
        let base_summaries = base.run_all_on(base_cfg.budget, 2).unwrap();
        for reputation in [Some(ReputationMode::Ledger), Some(ReputationMode::Rescan)] {
            let cfg = MultiCampaignConfig {
                registered_taggers: 2_000,
                reputation,
                ..base_cfg.clone()
            };
            let (mut e, p) = build_multi_campaign(&cfg);
            assert_eq!(p, projects);
            let summaries = e.run_all_on(cfg.budget, 2).unwrap();
            assert_eq!(
                summaries, base_summaries,
                "population/schedule changed outcomes under {reputation:?}"
            );
        }
    }

    #[test]
    fn multi_campaign_builder_is_deterministic_and_runnable() {
        let cfg = MultiCampaignConfig {
            projects: 3,
            resources: 30,
            initial_posts: 120,
            budget: 40,
            workers: 8,
            ..MultiCampaignConfig::default()
        };
        let (mut a, pa) = build_multi_campaign(&cfg);
        let (mut b, pb) = build_multi_campaign(&cfg);
        assert_eq!(pa.len(), 3);
        assert_eq!(pa, pb);
        let sa = a.run_all_on(cfg.budget, 2).unwrap();
        let sb = b.run_all_on(cfg.budget, 4).unwrap();
        assert_eq!(sa, sb, "same scenario, different thread counts");
        assert_eq!(a.store_checksum(), b.store_checksum());
    }
}
