//! Scenario builders shared by the figure harness and the benches.

use itag_model::delicious::{DeliciousConfig, DeliciousDataset};
use itag_quality::metric::QualityMetric;
use itag_strategy::framework::{Framework, RunReport};
use itag_strategy::simenv::SimWorld;
use itag_strategy::StrategyKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters of one strategy-comparison sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    pub resources: usize,
    pub initial_posts: usize,
    pub seed: u64,
    pub metric: QualityMetric,
    pub batch_size: usize,
    pub noise: f64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            resources: 1_000,
            initial_posts: 5_000,
            seed: 0xDE11,
            metric: QualityMetric::default(),
            batch_size: 10,
            noise: 0.0,
        }
    }
}

impl SweepConfig {
    /// The generated corpus for this sweep (deterministic in the seed).
    pub fn corpus(&self) -> DeliciousDataset {
        DeliciousConfig {
            resources: self.resources,
            initial_posts: self.initial_posts,
            eval_posts: 0,
            seed: self.seed,
            ..DeliciousConfig::default()
        }
        .generate()
    }
}

/// Builds a fresh simulation world from a sweep config.
pub fn sim_world(cfg: &SweepConfig) -> SimWorld {
    SimWorld::new(cfg.corpus().dataset, cfg.metric).with_noise(cfg.noise)
}

/// Runs one strategy to `budget` on a fresh world; returns the report and
/// the world (for post-hoc counters like "#resources ≥ τ").
pub fn run_strategy(cfg: &SweepConfig, kind: StrategyKind, budget: u32) -> (RunReport, SimWorld) {
    let mut world = sim_world(cfg);
    let mut strategy = kind.build();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5EED);
    let report = Framework {
        batch_size: cfg.batch_size,
        record_every: (budget / 20).max(1),
    }
    .run(&mut world, strategy.as_mut(), budget, &mut rng);
    (report, world)
}

/// Gini coefficient of an allocation vector (task concentration).
pub fn gini(counts: &[u32]) -> f64 {
    itag_model::dataset::DatasetStats::compute(counts).gini
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worlds_are_deterministic_per_config() {
        let cfg = SweepConfig {
            resources: 100,
            initial_posts: 400,
            ..SweepConfig::default()
        };
        let (a, _) = run_strategy(&cfg, StrategyKind::FewestPosts, 200);
        let (b, _) = run_strategy(&cfg, StrategyKind::FewestPosts, 200);
        assert_eq!(a.final_quality, b.final_quality);
        assert_eq!(a.allocation, b.allocation);
    }

    #[test]
    fn informed_strategies_beat_fc_on_the_standard_corpus() {
        let cfg = SweepConfig {
            resources: 200,
            initial_posts: 1_000,
            ..SweepConfig::default()
        };
        let (fc, _) = run_strategy(&cfg, StrategyKind::FreeChoice, 600);
        let (fpmu, _) = run_strategy(&cfg, StrategyKind::FpMu { min_posts: 5 }, 600);
        assert!(
            fpmu.improvement() > fc.improvement(),
            "FP-MU {} vs FC {}",
            fpmu.improvement(),
            fc.improvement()
        );
    }

    #[test]
    fn gini_detects_concentration() {
        assert!(gini(&[1, 1, 1, 1]) < 0.01);
        assert!(gini(&[0, 0, 0, 100]) > 0.7);
    }
}
