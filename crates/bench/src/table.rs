//! Plain-text table rendering for experiment output (paper-style rows on
//! stdout, plus CSV for plotting).

/// A column-aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column-aligned text rendering.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// CSV rendering (no quoting — experiment cells are numeric/labels).
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats an `f64` with 4 decimals (the standard cell format).
pub fn f(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats a signed delta with 4 decimals.
pub fn delta(v: f64) -> String {
    format!("{v:+.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(["strategy", "q"]);
        t.row(["FC", "0.1"]).row(["FP-MU", "0.9"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("strategy"));
        assert!(lines[2].ends_with("0.1"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_is_machine_readable() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(f(0.123456), "0.1235");
        assert_eq!(delta(0.5), "+0.5000");
        assert_eq!(delta(-0.25), "-0.2500");
    }
}
