//! Snapshot-equivalence under concurrency: a [`StoreSnapshot`] captured at
//! epoch `e` while writers are running must be byte-identical to a quiesced
//! twin store that replayed exactly batches `1..=e` — the MVCC staleness
//! contract. Three legs:
//!
//! * a proptest where a writer thread commits a random batch sequence while
//!   the main thread captures snapshots mid-flight, then every capture is
//!   checked against its replay twin (checksum + full scans);
//! * a multi-writer linearizability check: per-writer progress markers must
//!   be prefix-consistent and atomic with their batch, and the sum of all
//!   markers must equal the captured epoch;
//! * a writer-freedom check: a held snapshot never blocks commits.

use itag_store::{Store, TableId, WriteBatch};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const T: TableId = TableId(7);

/// One randomly generated committed batch: puts and deletes over a small
/// key universe so overwrites and deletes of live keys actually happen.
fn arb_batch() -> impl Strategy<Value = Vec<(bool, u8, u8)>> {
    prop::collection::vec((any::<bool>(), 0u8..32, any::<u8>()), 1..6)
}

fn build_batch(spec: &[(bool, u8, u8)]) -> WriteBatch {
    let mut b = WriteBatch::new();
    for &(is_put, key, val) in spec {
        if is_put {
            b.put(T, vec![key], vec![val, key]);
        } else {
            b.delete(T, vec![key]);
        }
    }
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Capture snapshots while a writer commits; every snapshot at epoch
    /// `e` must digest and scan identically to a fresh store that replayed
    /// batches `1..=e` with no concurrency at all.
    #[test]
    fn concurrent_snapshots_equal_their_replay_twins(
        batches in prop::collection::vec(arb_batch(), 1..40),
        shards in 1usize..5,
    ) {
        let store = Arc::new(Store::in_memory_sharded(shards));
        let writer = {
            let store = Arc::clone(&store);
            let batches = batches.clone();
            std::thread::spawn(move || {
                for spec in &batches {
                    store.commit(build_batch(spec)).unwrap();
                }
            })
        };

        // Capture greedily while the writer runs; dedup by epoch later.
        let mut snaps = Vec::new();
        loop {
            let snap = store.read_snapshot();
            let done = snap.epoch() as usize >= batches.len();
            snaps.push(snap);
            if done {
                break;
            }
            std::thread::yield_now();
        }
        writer.join().unwrap();
        snaps.push(store.read_snapshot());

        for snap in &snaps {
            let e = snap.epoch() as usize;
            prop_assert!(e <= batches.len());
            let twin = Store::in_memory_sharded(shards);
            for spec in &batches[..e] {
                twin.commit(build_batch(spec)).unwrap();
            }
            prop_assert_eq!(snap.content_checksum(), twin.content_checksum());
            prop_assert_eq!(snap.scan_all(T), twin.scan_all(T));
            prop_assert_eq!(snap.count(T), twin.count(T));
            prop_assert_eq!(snap.last_key(T), twin.last_key(T));
        }
    }
}

/// Several writers race; each writer `w` commits batch `b` containing both
/// the payload key `(w, b)` and an overwrite of its progress marker
/// `(w, 0) -> b`. Any snapshot must then satisfy, per writer:
/// marker = b  ⇔  payload keys 1..=b present and none beyond — batches are
/// atomic and a writer's own history is a prefix. The markers also sum to
/// the captured epoch (every batch is exactly one LSN).
#[test]
fn snapshots_are_atomic_and_prefix_consistent_across_writers() {
    const WRITERS: u8 = 4;
    const BATCHES: u8 = 50;
    let store = Arc::new(Store::in_memory_sharded(4));
    let stop = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (1..=WRITERS)
        .map(|w| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                for b in 1..=BATCHES {
                    let mut batch = WriteBatch::new();
                    batch.put(T, vec![w, b], vec![b]);
                    batch.put(T, vec![w, 0], vec![b]);
                    store.commit(batch).unwrap();
                }
            })
        })
        .collect();

    let checker = {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut checked = 0u32;
            while !stop.load(Ordering::Relaxed) || checked == 0 {
                let snap = store.read_snapshot();
                let mut marker_sum = 0u64;
                for w in 1..=WRITERS {
                    let marker = snap.get(T, &[w, 0]).map(|v| v.as_ref()[0]).unwrap_or(0);
                    marker_sum += u64::from(marker);
                    for b in 1..=BATCHES {
                        let present = snap.contains(T, &[w, b]);
                        assert_eq!(
                            present,
                            b <= marker,
                            "writer {w}: marker={marker} but key {b} present={present}"
                        );
                    }
                }
                assert_eq!(
                    marker_sum,
                    snap.epoch(),
                    "markers must account for every committed LSN"
                );
                checked += 1;
            }
            checked
        })
    };

    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let checked = checker.join().unwrap();
    assert!(checked > 0);

    let last = store.read_snapshot();
    assert_eq!(last.epoch(), u64::from(WRITERS) * u64::from(BATCHES));
    assert_eq!(
        last.count(T),
        usize::from(WRITERS) * (usize::from(BATCHES) + 1)
    );
}

/// A held snapshot must never block writers: commits proceed and the epoch
/// advances while old captures stay frozen.
#[test]
fn held_snapshots_never_block_writers() {
    let store = Store::in_memory_sharded(4);
    store.put(T, vec![1], vec![1]).unwrap();
    let pinned = store.read_snapshot();

    // Writers keep committing with the snapshot alive the whole time.
    for i in 0..100u8 {
        store.put(T, vec![i], vec![i, i]).unwrap();
    }
    assert_eq!(store.epoch(), 101);
    assert_eq!(pinned.epoch(), 1);
    assert_eq!(pinned.count(T), 1);
    assert_eq!(pinned.get(T, &[1]).unwrap().as_ref(), &[1]);

    // A second capture sees the new world; the first is still frozen.
    let fresh = store.read_snapshot();
    assert_eq!(fresh.count(T), 100);
    drop(pinned);
    assert_eq!(store.get(T, &[1]).unwrap().unwrap().as_ref(), &[1, 1]);
}
