//! Fault-torture harness for the storage layer: for every named storage
//! fault site × fault kind, run a scripted workload with the fault
//! armed, assert the failure surfaces as a **typed error, never a
//! panic**, then reopen/recover and assert the store digest is
//! identical to a fault-free twin that stopped at the same durable
//! point.
//!
//! Every test in this binary arms the process-global fault plan, so the
//! whole binary is a dedicated isolation domain: the [`ArmedFaults`]
//! guard serializes the tests against each other, and no fault-free
//! store test lives here.

#![cfg(feature = "faults")]

use itag_store::db::{Store, StoreOptions};
use itag_store::faults::{self, ArmedFaults, FaultKind, FaultPlan, FaultSpec, Trigger};
use itag_store::testutil::TestDir;
use itag_store::{Durability, StoreError, SyncPolicy, TableId};

const T: TableId = TableId(3);

/// Strict options: `Ok` from a commit means durable (one fsync per
/// group), so the set of successful puts *is* the durable point.
fn opts() -> StoreOptions {
    StoreOptions {
        durability: Durability::Sync,
        sync_policy: SyncPolicy::Always,
        checkpoint_every: 0,
        shards: 2,
        ..StoreOptions::default()
    }
}

fn key(i: u32) -> Vec<u8> {
    format!("key-{i:04}").into_bytes()
}

fn val(i: u32) -> Vec<u8> {
    format!("value-{i:04}-{}", i.wrapping_mul(2654435761)).into_bytes()
}

/// Runs `n` single-put commits against `store`, returning the indices
/// that committed `Ok` and every error encountered (all must be typed —
/// a panic would abort the test on the spot).
fn workload(store: &Store, n: u32) -> (Vec<u32>, Vec<StoreError>) {
    let mut ok = Vec::new();
    let mut errs = Vec::new();
    for i in 0..n {
        match store.put(T, key(i), val(i)) {
            Ok(()) => ok.push(i),
            Err(e) => errs.push(e),
        }
    }
    (ok, errs)
}

/// Builds the fault-free twin: a fresh durable store holding exactly the
/// given puts, and returns its content digest.
fn twin_digest(ok: &[u32]) -> u64 {
    let dir = TestDir::new("torture-twin");
    let store = Store::open(dir.path(), opts()).expect("twin open");
    for &i in ok {
        store.put(T, key(i), val(i)).expect("twin put");
    }
    store.content_checksum()
}

fn arm_one(site: &'static str, kind: FaultKind, trigger: Trigger) -> ArmedFaults {
    faults::arm(&FaultPlan::new().site(site, FaultSpec::new(kind, trigger)))
}

/// The shared scenario for call-layer kinds on the WAL sites: arm, run,
/// expect typed errors after the trigger, reopen, compare digests.
fn torture_wal_site(site: &'static str, kind: FaultKind) {
    let dir = TestDir::new("torture-wal");
    let store = Store::open(dir.path(), opts()).expect("open");
    let guard = arm_one(site, kind, Trigger::Nth(8));

    let (ok, errs) = workload(&store, 20);
    assert!(!errs.is_empty(), "{site}: fault never surfaced");
    assert!(ok.len() < 20, "{site}: every put succeeded despite fault");
    assert!(guard.fired(site) >= 1, "{site}: trigger never fired");
    // The triggering commit reports the root I/O error; once the store
    // is broken, later commits fail with `Broken`. Both are retryable.
    for e in &errs {
        assert!(
            matches!(e, StoreError::Io(_) | StoreError::Broken(_)),
            "{site}: untyped/unexpected error {e:?}"
        );
        assert!(e.is_retryable(), "{site}: {e} should be retryable");
    }
    assert!(
        matches!(errs[0], StoreError::Io(_)),
        "{site}: first failure should carry the root I/O error, got {:?}",
        errs[0]
    );

    drop(store);
    drop(guard);

    // Reopening heals the store. The recovered state must be a *prefix*
    // of the workload that contains every acknowledged commit. It may
    // contain one unacknowledged commit beyond that: a failed fsync is
    // ambiguous (the frame reached the file before the sync error), and
    // surviving is the legal side of that ambiguity — losing an
    // acknowledged commit is not.
    let recovered = Store::open(dir.path(), opts()).expect("reopen after fault");
    let k = recovered.stats().recovered_entries as usize;
    assert!(
        k >= ok.len(),
        "{site}: lost acknowledged commits ({k} < {})",
        ok.len()
    );
    assert!(k < 20, "{site}: the broken store kept accepting appends");
    let prefix: Vec<u32> = (0..k as u32).collect();
    assert_eq!(
        ok,
        prefix[..ok.len()],
        "{site}: acknowledged commits are not a prefix"
    );
    assert_eq!(
        recovered.content_checksum(),
        twin_digest(&prefix),
        "{site}: recovered digest diverged from the durable-prefix twin"
    );
    // And the healed store accepts writes again.
    recovered
        .put(T, b"post-recovery".to_vec(), b"ok".to_vec())
        .expect("healed store rejects writes");
}

#[test]
fn wal_append_enospc_is_typed_and_recovery_matches_twin() {
    torture_wal_site(faults::WAL_APPEND, FaultKind::Enospc);
}

#[test]
fn wal_append_eio_is_typed_and_recovery_matches_twin() {
    torture_wal_site(faults::WAL_APPEND, FaultKind::Eio);
}

#[test]
fn wal_sync_enospc_is_typed_and_recovery_matches_twin() {
    torture_wal_site(faults::WAL_SYNC, FaultKind::Enospc);
}

#[test]
fn wal_sync_eio_is_typed_and_recovery_matches_twin() {
    torture_wal_site(faults::WAL_SYNC, FaultKind::Eio);
}

/// EINTR and short writes are *absorbed* kinds: the retry loops in
/// `write_all`/`BufWriter` must soak them up, so the workload succeeds,
/// the injection demonstrably happened, and the store is byte-identical
/// to a fault-free twin of the **full** workload.
#[test]
fn wal_eintr_and_short_writes_are_absorbed_by_retries() {
    for kind in [FaultKind::Eintr, FaultKind::Short] {
        let dir = TestDir::new("torture-absorb");
        let store = Store::open(dir.path(), opts()).expect("open");
        let guard = arm_one(faults::WAL_APPEND, kind, Trigger::Every(3));

        let (ok, errs) = workload(&store, 20);
        assert!(errs.is_empty(), "{kind:?}: absorbed kind surfaced {errs:?}");
        assert_eq!(ok.len(), 20);
        assert!(guard.fired(faults::WAL_APPEND) >= 1, "{kind:?} never fired");

        drop(store);
        drop(guard);

        let recovered = Store::open(dir.path(), opts()).expect("reopen");
        let all: Vec<u32> = (0..20).collect();
        assert_eq!(
            recovered.content_checksum(),
            twin_digest(&all),
            "{kind:?}: absorbed faults changed the durable contents"
        );
    }
}

/// Crash-at-byte-offset on the WAL: every write past the offset is
/// silently swallowed (power loss), so commits keep reporting `Ok`.
/// After the "crash" (store dropped while armed), recovery must land on
/// exactly the prefix the torn-tail contract pins, and the recovered
/// contents must match a twin of that prefix.
#[test]
fn wal_crash_at_offset_recovers_to_durable_prefix() {
    for offset in [8u64, 64, 200, 500] {
        let dir = TestDir::new("torture-crash");
        let store = Store::open(dir.path(), opts()).expect("open");
        let guard = arm_one(faults::WAL_APPEND, FaultKind::Crash(offset), Trigger::Once);

        let (ok, errs) = workload(&store, 20);
        assert!(errs.is_empty(), "crash swallows silently, got {errs:?}");
        assert_eq!(ok.len(), 20);

        // Simulated power loss: the store handle dies while the fault is
        // still armed, so even drop-time flushes are swallowed.
        drop(store);
        assert!(
            guard.fired(faults::WAL_APPEND) >= 1,
            "offset {offset} never crossed"
        );
        drop(guard);

        let recovered = Store::open(dir.path(), opts()).expect("reopen after crash");
        let k = recovered.stats().recovered_entries as u32;
        assert!(k < 20, "offset {offset}: crash cut nothing");
        let prefix: Vec<u32> = (0..k).collect();
        assert_eq!(
            recovered.content_checksum(),
            twin_digest(&prefix),
            "offset {offset}: recovered digest is not the {k}-put prefix"
        );
    }
}

/// Checkpoint faults (both the whole-operation kind and a mid-stream
/// `nth` trigger) fail typed, leave the store fully usable, and never
/// install a torn snapshot over the good state.
#[test]
fn checkpoint_stream_faults_are_typed_and_do_not_poison() {
    for trigger in [Trigger::Once, Trigger::Nth(2)] {
        let dir = TestDir::new("torture-ckpt");
        let store = Store::open(dir.path(), opts()).expect("open");
        let (ok, errs) = workload(&store, 10);
        assert!(errs.is_empty());

        let guard = arm_one(faults::CHECKPOINT_STREAM, FaultKind::Eio, trigger);
        let err = store.checkpoint().expect_err("checkpoint should fail");
        assert!(matches!(err, StoreError::Io(_)), "got {err:?}");
        assert!(guard.fired(faults::CHECKPOINT_STREAM) >= 1);
        drop(guard);

        // A failed checkpoint breaks nothing: writes continue, and after
        // reopen the contents match the full fault-free twin.
        store
            .put(T, key(100), val(100))
            .expect("store poisoned by checkpoint fault");
        store.checkpoint().expect("retry after disarm");
        drop(store);

        let recovered = Store::open(dir.path(), opts()).expect("reopen");
        let mut all = ok;
        all.push(100);
        assert_eq!(recovered.content_checksum(), twin_digest(&all));
    }
}

/// The reference snapshot writer: a whole-operation fault is typed, and
/// byte-level crash faults can only tear the temp file — the install
/// rename never happens, so the target path stays absent/intact.
#[test]
fn snapshot_write_faults_never_install_torn_snapshots() {
    use itag_store::snapshot::{self, Snapshot, TableDump};
    let dir = TestDir::new("torture-snapwrite");
    let path = dir.path().join("db.snp");
    let snap = Snapshot {
        last_lsn: 7,
        tables: vec![TableDump {
            table: T,
            entries: vec![(b"k".to_vec(), b"v".to_vec())],
        }],
    };

    let guard = arm_one(faults::SNAPSHOT_WRITE, FaultKind::Enospc, Trigger::Once);
    let err = snapshot::write(&path, &snap).expect_err("write should fail");
    assert!(matches!(err, StoreError::Io(_)), "got {err:?}");
    assert_eq!(guard.fired(faults::SNAPSHOT_WRITE), 1);
    drop(guard);
    assert!(
        snapshot::read(&path).expect("read").is_none(),
        "failed write installed a file"
    );

    // Crash mid-payload: writes swallowed, sync "succeeds", but the temp
    // file is torn — and a torn temp file must never install.
    let guard = arm_one(faults::SNAPSHOT_WRITE, FaultKind::Crash(10), Trigger::Once);
    let res = snapshot::write(&path, &snap);
    drop(guard);
    match res {
        // The producer noticed nothing (power loss): the installed bytes
        // are torn, and `read` must say so with a typed error.
        Ok(()) => {
            assert!(matches!(snapshot::read(&path), Err(StoreError::Corrupt(_))));
            std::fs::remove_file(&path).ok();
        }
        Err(e) => assert!(matches!(e, StoreError::Io(_)), "got {e:?}"),
    }

    // Disarmed, the same write succeeds and roundtrips.
    snapshot::write(&path, &snap).expect("clean write");
    assert_eq!(snapshot::read(&path).expect("read").expect("some"), snap);
}

/// Recovery faults: a store that cannot scan its WAL (or load its
/// snapshot) reports a typed error from `open`, and the next open —
/// fault cleared — recovers the identical durable contents.
#[test]
fn recovery_scan_fault_is_typed_and_next_open_heals() {
    let dir = TestDir::new("torture-recov");
    let store = Store::open(dir.path(), opts()).expect("open");
    let (ok, errs) = workload(&store, 12);
    assert!(errs.is_empty());
    // Half the workload behind a checkpoint so both recovery readers
    // (snapshot load + WAL scan) run on reopen.
    store.checkpoint().expect("checkpoint");
    for i in 12..16 {
        store.put(T, key(i), val(i)).expect("post-checkpoint put");
    }
    drop(store);

    let guard = arm_one(faults::RECOVERY_SCAN, FaultKind::Eio, Trigger::Once);
    let Err(err) = Store::open(dir.path(), opts()) else {
        panic!("open should fail");
    };
    assert!(matches!(err, StoreError::Io(_)), "got {err:?}");
    assert_eq!(guard.fired(faults::RECOVERY_SCAN), 1);

    // Second trigger position: fail the *WAL scan* (the snapshot load
    // consumes the first poll).
    drop(guard);
    let guard = arm_one(faults::RECOVERY_SCAN, FaultKind::Eio, Trigger::Nth(2));
    let Err(err) = Store::open(dir.path(), opts()) else {
        panic!("open should fail on wal scan");
    };
    assert!(matches!(err, StoreError::Io(_)), "got {err:?}");
    drop(guard);

    let recovered = Store::open(dir.path(), opts()).expect("healed open");
    let mut all: Vec<u32> = ok;
    all.extend(12..16);
    assert_eq!(recovered.content_checksum(), twin_digest(&all));
}

/// A broken store stays consistently broken until reopened: every
/// post-fault commit fails `Broken` (no flapping), reads still work.
#[test]
fn broken_store_fails_closed_until_reopen() {
    let dir = TestDir::new("torture-broken");
    let store = Store::open(dir.path(), opts()).expect("open");
    let guard = arm_one(faults::WAL_APPEND, FaultKind::Eio, Trigger::Nth(3));
    let (ok, errs) = workload(&store, 6);
    assert_eq!(ok, vec![0, 1]);
    assert_eq!(errs.len(), 4);
    drop(guard);
    // Disarmed, but the store stays broken — the log can't be trusted.
    let err = store
        .put(T, key(99), val(99))
        .expect_err("broken store accepted a write");
    assert!(matches!(err, StoreError::Broken(_)), "got {err:?}");
    // Reads keep serving the applied state.
    assert_eq!(
        store.get(T, &key(0)).expect("read"),
        Some(bytes::Bytes::from(val(0)))
    );
    assert!(store.get(T, &key(3)).expect("read").is_none());
}
