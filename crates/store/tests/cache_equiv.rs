//! Entity-cache equivalence: the decoded-record cache must be invisible —
//! every read, every digest, every recovered state is bit-identical with
//! the cache on, off, or pathologically small. Random typed operation
//! sequences (cached upserts, plain upserts, read-modify-writes, deletes,
//! point reads) drive three stores that differ only in cache
//! configuration; any divergence is a cache coherence bug.

use itag_store::table::Entity;
use itag_store::{Store, StoreOptions, TableId, TypedTable, WriteBatch};
use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Item {
    id: u32,
    label: String,
    score: u64,
}

impl Entity for Item {
    const TABLE: TableId = TableId(21);
    const NAME: &'static str = "item";
    type Key = u32;

    fn primary_key(&self) -> u32 {
        self.id
    }
}

#[derive(Debug, Clone)]
enum TypedOp {
    /// Upsert through the write-through (cached) staging path.
    UpsertCached {
        id: u32,
        score: u64,
    },
    /// Upsert through the plain staging path (cache must invalidate).
    UpsertPlain {
        id: u32,
        score: u64,
    },
    /// Read-modify-write via `TypedTable::update`.
    Bump {
        id: u32,
    },
    Delete {
        id: u32,
    },
    /// Point read; the *value* must agree across stores.
    Get {
        id: u32,
    },
}

fn op_strategy() -> impl Strategy<Value = TypedOp> {
    prop_oneof![
        3 => (0u32..24, any::<u64>()).prop_map(|(id, score)| TypedOp::UpsertCached { id, score }),
        3 => (0u32..24, any::<u64>()).prop_map(|(id, score)| TypedOp::UpsertPlain { id, score }),
        2 => (0u32..24).prop_map(|id| TypedOp::Bump { id }),
        1 => (0u32..24).prop_map(|id| TypedOp::Delete { id }),
        3 => (0u32..24).prop_map(|id| TypedOp::Get { id }),
    ]
}

fn item(id: u32, score: u64) -> Item {
    Item {
        id,
        label: format!("item-{id}"),
        score,
    }
}

fn apply(table: &TypedTable<Item>, op: &TypedOp) -> Option<Option<Item>> {
    let store = table.store();
    match op {
        TypedOp::UpsertCached { id, score } => {
            let mut b = WriteBatch::new();
            table
                .stage_upsert_cached(&mut b, &item(*id, *score))
                .unwrap();
            store.commit(b).unwrap();
            None
        }
        TypedOp::UpsertPlain { id, score } => {
            let mut b = WriteBatch::new();
            table.stage_upsert(&mut b, &item(*id, *score)).unwrap();
            store.commit(b).unwrap();
            None
        }
        TypedOp::Bump { id } => {
            table
                .update(id, |it| it.score = it.score.wrapping_add(1))
                .unwrap();
            None
        }
        TypedOp::Delete { id } => {
            table.delete(id).unwrap();
            None
        }
        TypedOp::Get { id } => Some(table.get(id).unwrap()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cache_on_off_and_tiny_are_bit_identical(
        ops in proptest::collection::vec(op_strategy(), 1..80)
    ) {
        let configs = [
            StoreOptions { entity_cache: true, ..StoreOptions::default() },
            StoreOptions { entity_cache: false, ..StoreOptions::default() },
            // A 2-entry cache evicts constantly — hammers the refill path.
            StoreOptions { entity_cache: true, entity_cache_capacity: 2, ..StoreOptions::default() },
        ];
        let tables: Vec<TypedTable<Item>> = configs
            .into_iter()
            .map(|o| TypedTable::new(Arc::new(Store::in_memory_with(o))))
            .collect();

        for op in &ops {
            let reads: Vec<Option<Option<Item>>> =
                tables.iter().map(|t| apply(t, op)).collect();
            prop_assert_eq!(&reads[0], &reads[1], "cached vs uncached read diverged: {:?}", op);
            prop_assert_eq!(&reads[0], &reads[2], "cached vs tiny-cache read diverged: {:?}", op);
        }

        let d0 = tables[0].store().content_checksum();
        prop_assert_eq!(d0, tables[1].store().content_checksum(), "stored bytes diverged (off)");
        prop_assert_eq!(d0, tables[2].store().content_checksum(), "stored bytes diverged (tiny)");

        // The cache-off store must never touch the cache counters.
        let off_stats = tables[1].store().stats();
        prop_assert_eq!((off_stats.cache_hits, off_stats.cache_misses), (0, 0));
    }
}
