//! Model-based testing of the storage engine: arbitrary operation
//! sequences are applied both to the [`Store`] and to a reference model
//! (`BTreeMap`), with random restarts in between for the durable variant.
//! Any divergence — in content, order, or counts — is a bug.

use itag_store::db::{Durability, Store, StoreOptions};
use itag_store::testutil::TestDir;
use itag_store::{TableId, WriteBatch};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Put { table: u8, key: u8, value: Vec<u8> },
    Delete { table: u8, key: u8 },
    Batch(Vec<(u8, u8, Option<Vec<u8>>)>),
    Checkpoint,
    Reopen,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u8..3, any::<u8>(), proptest::collection::vec(any::<u8>(), 0..16))
            .prop_map(|(table, key, value)| Op::Put { table, key, value }),
        2 => (0u8..3, any::<u8>()).prop_map(|(table, key)| Op::Delete { table, key }),
        2 => proptest::collection::vec(
                (0u8..3, any::<u8>(), proptest::option::of(proptest::collection::vec(any::<u8>(), 0..8))),
                1..8
            ).prop_map(Op::Batch),
        1 => Just(Op::Checkpoint),
        1 => Just(Op::Reopen),
    ]
}

type Model = BTreeMap<(u8, u8), Vec<u8>>;

fn apply_model(model: &mut Model, op: &Op) {
    match op {
        Op::Put { table, key, value } => {
            model.insert((*table, *key), value.clone());
        }
        Op::Delete { table, key } => {
            model.remove(&(*table, *key));
        }
        Op::Batch(ops) => {
            for (table, key, value) in ops {
                match value {
                    Some(v) => {
                        model.insert((*table, *key), v.clone());
                    }
                    None => {
                        model.remove(&(*table, *key));
                    }
                }
            }
        }
        Op::Checkpoint | Op::Reopen => {}
    }
}

fn apply_store(store: &Store, op: &Op) {
    match op {
        Op::Put { table, key, value } => {
            store
                .put(TableId(*table as u16), vec![*key], value.clone())
                .unwrap();
        }
        Op::Delete { table, key } => {
            store.delete(TableId(*table as u16), vec![*key]).unwrap();
        }
        Op::Batch(ops) => {
            let mut batch = WriteBatch::new();
            for (table, key, value) in ops {
                match value {
                    Some(v) => batch.put(TableId(*table as u16), vec![*key], v.clone()),
                    None => batch.delete(TableId(*table as u16), vec![*key]),
                };
            }
            store.commit(batch).unwrap();
        }
        Op::Checkpoint => {
            if store.is_durable() {
                store.checkpoint().unwrap();
            }
        }
        Op::Reopen => {}
    }
}

fn assert_equivalent(store: &Store, model: &Model) {
    for table in 0u8..3 {
        let expected: Vec<(Vec<u8>, Vec<u8>)> = model
            .range((table, 0)..=(table, 255))
            .map(|((_, k), v)| (vec![*k], v.clone()))
            .collect();
        let actual: Vec<(Vec<u8>, Vec<u8>)> = store
            .scan_all(TableId(table as u16))
            .into_iter()
            .map(|(k, v)| (k.to_vec(), v.to_vec()))
            .collect();
        assert_eq!(actual, expected, "table {table} diverged");
        assert_eq!(store.count(TableId(table as u16)), expected.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn in_memory_store_matches_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let store = Store::in_memory();
        let mut model = Model::new();
        for op in &ops {
            apply_store(&store, op);
            apply_model(&mut model, op);
        }
        assert_equivalent(&store, &model);
    }

    #[test]
    fn sharded_store_matches_model_across_shard_counts(
        ops in proptest::collection::vec(op_strategy(), 1..60)
    ) {
        // The same op sequence applied under shard counts 1, 2 and 16 must
        // agree with the model on every get, range scan and count — the
        // partitioning is invisible at the API.
        let mut model = Model::new();
        let stores = [
            Store::in_memory_sharded(1),
            Store::in_memory_sharded(2),
            Store::in_memory_sharded(16),
        ];
        for op in &ops {
            for store in &stores {
                apply_store(store, op);
            }
            apply_model(&mut model, op);
        }
        for store in &stores {
            assert_equivalent(store, &model);
            // Point gets and bounded range scans agree too.
            for table in 0u8..3 {
                for key in 0u8..=255 {
                    let expected = model.get(&(table, key)).cloned();
                    let actual = store
                        .get(TableId(table as u16), &[key])
                        .unwrap()
                        .map(|b| b.to_vec());
                    prop_assert_eq!(actual, expected, "get({}, {}) diverged", table, key);
                }
                let expected: Vec<(Vec<u8>, Vec<u8>)> = model
                    .range((table, 40)..(table, 200))
                    .map(|((_, k), v)| (vec![*k], v.clone()))
                    .collect();
                let actual: Vec<(Vec<u8>, Vec<u8>)> = store
                    .scan_range(TableId(table as u16), &[40], Some(&[200]))
                    .into_iter()
                    .map(|(k, v)| (k.to_vec(), v.to_vec()))
                    .collect();
                prop_assert_eq!(actual, expected, "range scan diverged on table {}", table);
            }
        }
        // Identical logical contents → identical digests, shard count aside.
        let d0 = stores[0].content_checksum();
        prop_assert_eq!(d0, stores[1].content_checksum());
        prop_assert_eq!(d0, stores[2].content_checksum());
    }

    #[test]
    fn durable_store_matches_model_across_restarts(
        ops in proptest::collection::vec(op_strategy(), 1..40)
    ) {
        let dir = TestDir::new("model-based");
        let opts = StoreOptions {
            durability: Durability::Buffered,
            ..StoreOptions::default()
        };
        let mut store = Store::open(dir.path(), opts.clone()).unwrap();
        let mut model = Model::new();
        for op in &ops {
            if matches!(op, Op::Reopen) {
                store.sync().unwrap();
                drop(store);
                store = Store::open(dir.path(), opts.clone()).unwrap();
                assert_equivalent(&store, &model);
                continue;
            }
            apply_store(&store, op);
            apply_model(&mut model, op);
        }
        store.sync().unwrap();
        drop(store);
        let store = Store::open(dir.path(), opts).unwrap();
        assert_equivalent(&store, &model);
    }
}

/// Failure injection: truncate the WAL at every possible byte boundary.
/// Recovery must never panic, never report corruption for a clean tail
/// cut, and must recover a *prefix* of the committed history.
#[test]
fn wal_truncation_fuzz_recovers_a_prefix() {
    let dir = TestDir::new("wal-fuzz");
    let opts = StoreOptions {
        durability: Durability::Sync,
        ..StoreOptions::default()
    };
    // Commit a known sequence: key i → value i, one commit each.
    {
        let store = Store::open(dir.path(), opts.clone()).unwrap();
        for i in 0..30u8 {
            store.put(TableId(1), vec![i], vec![i]).unwrap();
        }
    }
    let wal_path = dir.path().join("db.wal");
    let full = std::fs::read(&wal_path).unwrap();

    // Sweep truncation points (step 3 keeps the test fast while covering
    // header-, length-, crc- and payload-interior cuts).
    for cut in (8..full.len()).step_by(3) {
        std::fs::write(&wal_path, &full[..cut]).unwrap();
        let store = Store::open(dir.path(), opts.clone()).unwrap();
        let recovered = store.count(TableId(1));
        // A prefix: keys 0..recovered present, nothing else.
        for i in 0..30u8 {
            let present = store.get(TableId(1), &[i]).unwrap().is_some();
            assert_eq!(
                present,
                (i as usize) < recovered,
                "cut={cut}: key {i} breaks the prefix property (recovered={recovered})"
            );
        }
        drop(store);
    }

    // Restore the full WAL: everything comes back.
    std::fs::write(&wal_path, &full).unwrap();
    let store = Store::open(dir.path(), opts).unwrap();
    assert_eq!(store.count(TableId(1)), 30);
}
