//! End-to-end check of the `ITAG_FAULTS` env knob: the documented plan
//! string, set in the environment before the first store open, arms the
//! fault layer with no programmatic `arm` call at all.
//!
//! `init_env` latches the environment exactly once per process, so this
//! binary holds a single test (test binaries are the process-isolation
//! unit — see `fault_torture.rs`). Setting the variable from test code
//! is fine here: the env-var lint rule skips `tests/` directories.

#![cfg(feature = "faults")]

use itag_store::db::{Store, StoreOptions};
use itag_store::faults;
use itag_store::testutil::TestDir;
use itag_store::{Durability, StoreError, SyncPolicy, TableId};

#[test]
fn env_plan_arms_injection_without_programmatic_arming() {
    // Must run before anything calls `init_env` in this process — this
    // is the only test in the binary, so that is guaranteed.
    std::env::set_var("ITAG_FAULTS", "wal.append:eio@nth2");

    let opts = StoreOptions {
        durability: Durability::Sync,
        sync_policy: SyncPolicy::Always,
        checkpoint_every: 0,
        ..StoreOptions::default()
    };
    let dir = TestDir::new("env-faults");
    let store = Store::open(dir.path(), opts.clone()).expect("open");
    let t = TableId(1);

    store
        .put(t, b"a".to_vec(), b"1".to_vec())
        .expect("first put passes");
    let err = store
        .put(t, b"b".to_vec(), b"2".to_vec())
        .expect_err("second append should hit the env-armed fault");
    assert!(matches!(err, StoreError::Io(_)), "got {err:?}");
    assert_eq!(faults::fired(faults::WAL_APPEND), 1, "env plan never fired");
    drop(store);

    // `nth2` is consumed; the same env plan leaves a fresh store usable,
    // and recovery of the first store keeps the acknowledged commit.
    let healed = Store::open(dir.path(), opts).expect("reopen");
    assert!(healed.get(t, b"a").expect("read").is_some());
    healed
        .put(t, b"c".to_vec(), b"3".to_vec())
        .expect("healed put");
}
