//! Crash-injection property test for WAL recovery.
//!
//! Appends random batches, then simulates a torn write by truncating the
//! log at **every byte offset inside the last frame** (header cuts, CRC
//! cuts, payload-interior cuts). Reopening must never panic, must recover
//! exactly the committed prefix (all batches but the torn one), and the
//! next append must heal the tail so a further reopen sees it.

use itag_store::db::{Durability, Store, StoreOptions, SyncPolicy};
use itag_store::testutil::TestDir;
use itag_store::wal::WAL_MAGIC;
use itag_store::{TableId, WriteBatch};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Every fsync cadence under test. Recovery semantics (prefix property,
/// torn-tail truncation, healing) must be identical across all of them —
/// the policies only change *when* fsync happens, never what a reopened
/// store contains after a clean shutdown.
const POLICIES: [SyncPolicy; 3] = [
    SyncPolicy::Always,
    SyncPolicy::EveryN(2),
    SyncPolicy::Batched,
];

/// One random mutation: `(table, key, Some(value) | None)`.
type ModelOp = (u8, u8, Option<Vec<u8>>);
type Model = BTreeMap<(u8, u8), Vec<u8>>;

fn batch_strategy() -> impl Strategy<Value = Vec<ModelOp>> {
    proptest::collection::vec(
        (
            0u8..3,
            any::<u8>(),
            proptest::option::of(proptest::collection::vec(any::<u8>(), 0..12)),
        ),
        1..6,
    )
}

fn apply_model(model: &mut Model, batch: &[ModelOp]) {
    for (table, key, value) in batch {
        match value {
            Some(v) => {
                model.insert((*table, *key), v.clone());
            }
            None => {
                model.remove(&(*table, *key));
            }
        }
    }
}

fn to_write_batch(batch: &[ModelOp]) -> WriteBatch {
    let mut b = WriteBatch::new();
    for (table, key, value) in batch {
        match value {
            Some(v) => b.put(TableId(*table as u16), vec![*key], v.clone()),
            None => b.delete(TableId(*table as u16), vec![*key]),
        };
    }
    b
}

fn assert_matches_model(store: &Store, model: &Model, context: &str) {
    for table in 0u8..3 {
        let expected: Vec<(Vec<u8>, Vec<u8>)> = model
            .range((table, 0)..=(table, 255))
            .map(|((_, k), v)| (vec![*k], v.clone()))
            .collect();
        let actual: Vec<(Vec<u8>, Vec<u8>)> = store
            .scan_all(TableId(table as u16))
            .into_iter()
            .map(|(k, v)| (k.to_vec(), v.to_vec()))
            .collect();
        assert_eq!(actual, expected, "{context}: table {table} diverged");
    }
}

/// Byte offset where the last WAL frame starts (frames are
/// `[len: u32 LE][crc: u32 LE][payload]` after the 8-byte magic).
fn last_frame_start(wal: &[u8]) -> usize {
    let mut offset = WAL_MAGIC.len();
    let mut last = offset;
    while offset + 8 <= wal.len() {
        let len = u32::from_le_bytes(wal[offset..offset + 4].try_into().unwrap()) as usize;
        if wal.len() - offset - 8 < len {
            break;
        }
        last = offset;
        offset += 8 + len;
    }
    last
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn torn_tail_recovers_exactly_the_prefix_and_heals(
        batches in proptest::collection::vec(batch_strategy(), 2..7)
    ) {
        for (pi, policy) in POLICIES.into_iter().enumerate() {
            let dir = TestDir::new(&format!("wal-crash-prop-{pi}"));
            let opts = StoreOptions {
                durability: Durability::Sync,
                sync_policy: policy,
                ..StoreOptions::default()
            };

            // Commit every batch; one WAL frame each (writers are
            // sequential). The store is dropped cleanly, so every frame is
            // in the file regardless of the fsync cadence.
            let mut prefix_model = Model::new();
            {
                let store = Store::open(dir.path(), opts.clone()).unwrap();
                for batch in &batches {
                    store.commit(to_write_batch(batch)).unwrap();
                }
            }
            for batch in &batches[..batches.len() - 1] {
                apply_model(&mut prefix_model, batch);
            }
            let mut full_model = prefix_model.clone();
            apply_model(&mut full_model, batches.last().unwrap());

            let wal_path = dir.path().join("db.wal");
            let full = std::fs::read(&wal_path).unwrap();
            let tail_start = last_frame_start(&full);
            prop_assert!(tail_start < full.len(), "log must hold at least one frame");

            for cut in tail_start..full.len() {
                // Tear the file mid-frame and reopen: the torn batch
                // vanishes, everything before it survives.
                std::fs::write(&wal_path, &full[..cut]).unwrap();
                let store = Store::open(dir.path(), opts.clone()).unwrap();
                prop_assert!(
                    store.stats().recovered_torn_tail || cut == tail_start,
                    "{policy:?} cut={cut}: a mid-frame cut must be reported as torn"
                );
                assert_matches_model(&store, &prefix_model, &format!("{policy:?} cut={cut}"));

                // The next append heals the tail: reopen again and the
                // healed write is there on top of the recovered prefix.
                store.put(TableId(7), vec![cut as u8], vec![1, 2, 3]).unwrap();
                store.sync().unwrap();
                drop(store);
                let healed = Store::open(dir.path(), opts.clone()).unwrap();
                assert_matches_model(&healed, &prefix_model, &format!("{policy:?} healed cut={cut}"));
                prop_assert_eq!(
                    healed.get(TableId(7), &[cut as u8]).unwrap().map(|b| b.to_vec()),
                    Some(vec![1, 2, 3]),
                    "{:?} cut={}: healing append must survive reopen", policy, cut
                );
                prop_assert!(
                    !healed.stats().recovered_torn_tail,
                    "{:?} cut={}: the healed log has no torn tail", policy, cut
                );
            }

            // Sanity: the untouched log recovers every batch.
            std::fs::write(&wal_path, &full).unwrap();
            let store = Store::open(dir.path(), opts).unwrap();
            assert_matches_model(&store, &full_model, &format!("{policy:?} full log"));
        }
    }

    #[test]
    fn clean_shutdown_state_is_identical_across_sync_policies(
        batches in proptest::collection::vec(batch_strategy(), 1..10)
    ) {
        // Same batch sequence, one store per fsync policy, clean shutdown:
        // every reopened store must hold bit-identical contents (the
        // policies trade durability-under-power-loss for fsync count, not
        // committed state).
        let mut digests = Vec::new();
        for (pi, policy) in POLICIES.into_iter().enumerate() {
            let dir = TestDir::new(&format!("wal-sync-equiv-{pi}"));
            let opts = StoreOptions {
                durability: Durability::Sync,
                sync_policy: policy,
                ..StoreOptions::default()
            };
            {
                let store = Store::open(dir.path(), opts.clone()).unwrap();
                for batch in &batches {
                    store.commit(to_write_batch(batch)).unwrap();
                }
            }
            let reopened = Store::open(dir.path(), opts).unwrap();
            digests.push(reopened.content_checksum());
        }
        prop_assert_eq!(digests[0], digests[1], "Always vs EveryN(2) diverged");
        prop_assert_eq!(digests[0], digests[2], "Always vs Batched diverged");
    }
}
