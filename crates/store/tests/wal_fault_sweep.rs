//! Satellite of the WAL crash-proptest family: drives the fault layer's
//! byte-level kinds across **every byte offset of the last frame** and
//! pins the recovery result to the exact same prefix the torn-tail
//! suite guarantees for a file truncated at that offset.
//!
//! Every test in this binary arms the global fault plan (dedicated
//! arming binary — see `fault_torture.rs` for the isolation rule).

#![cfg(feature = "faults")]

use itag_store::faults::{self, FaultKind, FaultPlan, FaultSpec, Trigger};
use itag_store::testutil::TestDir;
use itag_store::wal::{self, Wal};
use itag_store::StoreError;

fn payload(i: u32) -> Vec<u8> {
    // Variable-length payloads so frame boundaries are irregular.
    let mut p = format!("frame-{i:03}-").into_bytes();
    p.extend(std::iter::repeat_n(b'x', (i as usize * 7) % 23));
    p
}

/// Builds a fault-free WAL with `n` frames and returns its raw bytes.
fn reference_bytes(n: u32) -> Vec<u8> {
    let dir = TestDir::new("sweep-ref");
    let path = dir.path().join("ref.wal");
    let mut w = Wal::create(&path).expect("create");
    for i in 0..n {
        w.append(&payload(i)).expect("append");
    }
    w.sync().expect("sync");
    drop(w);
    std::fs::read(&path).expect("read")
}

fn arm(site: &'static str, kind: FaultKind, trigger: Trigger) -> faults::ArmedFaults {
    faults::arm(&FaultPlan::new().site(site, FaultSpec::new(kind, trigger)))
}

/// Crash injected at byte offset `c` must recover exactly what the
/// torn-tail contract recovers from a file truncated at `c` — for every
/// offset inside the last frame (and a margin before it).
#[test]
fn crash_at_every_offset_of_last_frame_matches_torn_tail_truncation() {
    const N: u32 = 6;
    let reference = reference_bytes(N);
    let last_frame_len = 8 + payload(N - 1).len(); // header + body
    let sweep_start = reference.len() - last_frame_len - 4; // margin into frame N-2
    let torn_dir = TestDir::new("sweep-torn");

    for cut in sweep_start..reference.len() {
        // Expected: scan of the reference bytes truncated at `cut`.
        let torn_path = torn_dir.path().join(format!("torn-{cut}.wal"));
        std::fs::write(&torn_path, &reference[..cut]).expect("write torn");
        let expected = wal::scan(&torn_path).expect("scan torn");

        // Actual: a WAL written with crash-at-offset `cut` armed, the
        // writer dropped while the fault is live (power loss).
        let dir = TestDir::new("sweep-crash");
        let path = dir.path().join("crash.wal");
        let guard = arm(
            faults::WAL_APPEND,
            FaultKind::Crash(cut as u64),
            Trigger::Once,
        );
        let mut w = Wal::create(&path).expect("create");
        for i in 0..N {
            w.append(&payload(i))
                .expect("append (crash swallows silently)");
        }
        // Flush is swallowed past the offset too; sync may "succeed".
        let _ = w.sync();
        drop(w);
        drop(guard);

        let got = wal::scan(&path).expect("scan crashed");
        assert_eq!(
            got.frames, expected.frames,
            "offset {cut}: crash recovery diverged from torn-tail truncation"
        );
        assert_eq!(
            got.valid_len, expected.valid_len,
            "offset {cut}: valid prefix length diverged"
        );
    }
}

/// A short write on every single poll must be fully absorbed by the
/// `write_all` retry loop: all frames recover.
#[test]
fn short_write_on_every_poll_recovers_every_frame() {
    let dir = TestDir::new("sweep-short");
    let path = dir.path().join("short.wal");
    let guard = arm(faults::WAL_APPEND, FaultKind::Short, Trigger::Every(1));
    let mut w = Wal::create(&path).expect("create");
    for i in 0..40 {
        w.append(&payload(i)).expect("append");
    }
    w.sync().expect("sync");
    drop(w);
    assert!(guard.fired(faults::WAL_APPEND) > 0, "short never fired");
    drop(guard);

    let s = wal::scan(&path).expect("scan");
    assert_eq!(s.frames.len(), 40);
    assert!(!s.truncated_tail);
    for (i, f) in s.frames.iter().enumerate() {
        assert_eq!(*f, payload(i as u32), "frame {i} corrupted by short writes");
    }
}

/// ENOSPC on the n-th append poll recovers exactly n-1 frames — the
/// call-layer check fails the operation before any bytes are written.
#[test]
fn enospc_on_nth_append_recovers_exactly_the_preceding_frames() {
    for n in [1u64, 3, 10] {
        let dir = TestDir::new("sweep-enospc");
        let path = dir.path().join("enospc.wal");
        let guard = arm(faults::WAL_APPEND, FaultKind::Enospc, Trigger::Nth(n));
        let mut w = Wal::create(&path).expect("create");
        let mut failed_at = None;
        for i in 0..10u32 {
            match w.append(&payload(i)) {
                Ok(()) => {}
                Err(e) => {
                    assert!(matches!(e, StoreError::Io(_)), "untyped error {e:?}");
                    failed_at = Some(i);
                    break;
                }
            }
        }
        assert_eq!(
            failed_at,
            Some(n as u32 - 1),
            "fault fired at the wrong poll"
        );
        w.sync().expect("sync of surviving frames");
        drop(w);
        drop(guard);

        let s = wal::scan(&path).expect("scan");
        assert_eq!(
            s.frames.len(),
            n as usize - 1,
            "nth({n}): wrong number of recovered frames"
        );
        assert!(!s.truncated_tail);
    }
}
