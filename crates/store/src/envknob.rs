//! The store's sanctioned environment reads.
//!
//! `ITAG_NO_CACHE` is consumed at two layers with different error
//! postures: the engine routes it through [`parse_no_cache`] and fails
//! loudly on garbage (`EngineError::Config`), while the raw store stays
//! conservative and treats an unparseable value as "cache off". Both
//! layers share this module's parser so the two decisions can never
//! disagree about what a value *means* — only about what to do when it
//! means nothing. The repo lint (`itag-lint`, rule `env-var`) pins this
//! module and `core::config` as the only files allowed to call
//! `std::env::var`.
//!
//! `ITAG_FAULTS` arms the deterministic fault-injection layer (see
//! [`crate::faults`]) with a comma-separated `<site>:<kind>[@<trigger>]`
//! plan. Its posture is strict everywhere: a plan that does not parse
//! panics at [`crate::faults::init_env`] time, because silently running
//! a "fault storm" that injects nothing would be worse than aborting.

/// Parses `ITAG_NO_CACHE`: `1`/`true` force the cache off, `0`/`false`
/// leave it alone, unset/empty means unset, anything else is an error.
pub fn parse_no_cache(raw: Option<&str>) -> std::result::Result<Option<bool>, String> {
    let Some(raw) = raw else { return Ok(None) };
    match raw.trim() {
        "" => Ok(None),
        "1" | "true" => Ok(Some(true)),
        "0" | "false" => Ok(Some(false)),
        _ => Err(format!(
            "ITAG_NO_CACHE={raw:?} is not a valid cache switch (expected 0/1/true/false)"
        )),
    }
}

/// Whether the `ITAG_NO_CACHE` environment variable forces the entity
/// cache off for a raw store. Unrecognized values count as "off": the
/// store cannot surface a config error from deep inside `assemble`, and
/// disabling the cache is the behavior-preserving direction (presence
/// semantics only, never a wrong answer). The engine rejects the same
/// garbage loudly before a store is ever built.
pub fn env_disables_cache() -> bool {
    match parse_no_cache(std::env::var("ITAG_NO_CACHE").ok().as_deref()) {
        Ok(force_off) => force_off == Some(true),
        Err(_) => true,
    }
}

/// Parses an `ITAG_FAULTS` value: comma-separated `<site>:<kind>[@<trigger>]`
/// entries, validated against the known fault sites. Unset or empty means
/// no plan.
pub fn parse_faults(
    raw: Option<&str>,
) -> std::result::Result<Vec<(String, crate::faults::FaultSpec)>, String> {
    let Some(raw) = raw else {
        return Ok(Vec::new());
    };
    crate::faults::parse_plan(raw).map_err(|e| format!("ITAG_FAULTS: {e}"))
}

/// Reads and parses `ITAG_FAULTS` from the environment.
pub fn env_fault_plan() -> std::result::Result<Vec<(String, crate::faults::FaultSpec)>, String> {
    parse_faults(std::env::var("ITAG_FAULTS").ok().as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_documented_values() {
        assert_eq!(parse_no_cache(None), Ok(None));
        assert_eq!(parse_no_cache(Some("")), Ok(None));
        assert_eq!(parse_no_cache(Some("  ")), Ok(None));
        assert_eq!(parse_no_cache(Some("1")), Ok(Some(true)));
        assert_eq!(parse_no_cache(Some("true")), Ok(Some(true)));
        assert_eq!(parse_no_cache(Some("0")), Ok(Some(false)));
        assert_eq!(parse_no_cache(Some(" false ")), Ok(Some(false)));
    }

    #[test]
    fn parse_rejects_garbage_with_the_variable_name() {
        for bad in ["yes", "no", "2", "TRUE!"] {
            let err = parse_no_cache(Some(bad)).unwrap_err();
            assert!(err.contains("ITAG_NO_CACHE") && err.contains(bad), "{err}");
        }
    }

    #[test]
    fn parse_faults_is_strict_and_names_the_variable() {
        assert!(parse_faults(None).unwrap().is_empty());
        assert!(parse_faults(Some("")).unwrap().is_empty());
        let plan = parse_faults(Some("wal.append:eio@nth2,wal.sync:enospc")).unwrap();
        assert_eq!(plan.len(), 2);
        for bad in [
            "wal.append",
            "nope:eio",
            "wal.append:zap",
            "wal.append:eio@weird",
        ] {
            let err = parse_faults(Some(bad)).unwrap_err();
            assert!(err.contains("ITAG_FAULTS"), "{err}");
        }
    }
}
