//! Deterministic fault injection for the storage and serving layers.
//!
//! A **fault site** is a named point in the I/O path (`wal.append`,
//! `server.accept`, ...) that can be armed with a [`FaultSpec`]: a fault
//! *kind* (what goes wrong) plus a *trigger* (when it goes wrong). Sites
//! are polled at two layers:
//!
//! * the **call layer** — [`check_io`] at the entry of the guarded
//!   operation; this is where whole-operation errors (`ENOSPC`, `EIO`)
//!   fire, and where every non-file site (recovery, server accept,
//!   session writes) is polled;
//! * the **file layer** — [`FaultFile`], a `std::fs::File` wrapper that
//!   injects `EINTR`, short writes, and crash-at-byte-offset (silently
//!   swallowed writes, simulating power loss) into the byte stream, and
//!   routes `sync_data`/`sync_all` failures through the call layer of a
//!   separate sync site.
//!
//! A kind only ever fires at its own layer, and a poll at the *other*
//! layer does not consume a trigger hit — so `wal.append:short@once`
//! fires at the first buffered byte write even though `Wal::append` also
//! polls the same site at its entry.
//!
//! Arming is either programmatic ([`arm`], returning a guard that
//! restores the previous plan on drop) or environmental (`ITAG_FAULTS`,
//! parsed strictly via [`crate::envknob::parse_faults`] and installed
//! once per process by [`init_env`]). Everything is deterministic: the
//! only randomness is a seeded splitmix64 stream owned by the
//! [`Trigger::Seeded`] variant.
//!
//! ## Test isolation
//!
//! The armed plan is **process-global**. A test that arms faults affects
//! every store and server in the same process, so fault-arming tests
//! must live in dedicated test binaries (`fault_torture`,
//! `wal_fault_sweep`, `server_faults`, ...) where *every* test arms (the
//! [`ArmedFaults`] guard serializes armers against each other).
//!
//! ## Cost when disarmed / compiled out
//!
//! With the `faults` feature on but nothing armed, every poll is one
//! relaxed atomic load. With the feature off (`--no-default-features`),
//! [`check_io`] is an inlined `Ok(())`, [`FaultFile`] is a transparent
//! delegating wrapper, and the registry does not exist — mirroring the
//! `lockcheck` pattern in the `parking_lot` shim.

use std::io;

// ---------------------------------------------------------------------------
// Site names — the single source of truth; storage and serving layers
// import these constants rather than repeating the strings.
// ---------------------------------------------------------------------------

/// WAL frame append (call layer) and the WAL file's byte stream (file layer).
pub const WAL_APPEND: &str = "wal.append";
/// WAL flush + fsync.
pub const WAL_SYNC: &str = "wal.sync";
/// Reference snapshot writer (`snapshot::write`).
pub const SNAPSHOT_WRITE: &str = "snapshot.write";
/// Streaming checkpoint writer (`snapshot::SnapshotWriter`).
pub const CHECKPOINT_STREAM: &str = "checkpoint.stream";
/// Recovery-time reads: WAL scan and snapshot load.
pub const RECOVERY_SCAN: &str = "recovery.scan";
/// Server accept loop (a fired fault drops the fresh connection).
pub const SERVER_ACCEPT: &str = "server.accept";
/// Server response writes (a fired fault drops the session).
pub const SERVER_SESSION_WRITE: &str = "server.session_write";

/// Every site the stack declares, for validation of parsed plans.
pub const SITES: &[&str] = &[
    WAL_APPEND,
    WAL_SYNC,
    SNAPSHOT_WRITE,
    CHECKPOINT_STREAM,
    RECOVERY_SCAN,
    SERVER_ACCEPT,
    SERVER_SESSION_WRITE,
];

// ---------------------------------------------------------------------------
// Specs: kind + trigger. These types exist regardless of the feature so
// parsing and plan construction compile everywhere.
// ---------------------------------------------------------------------------

/// What goes wrong when the trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `ENOSPC` (os error 28) from the whole operation. Call layer.
    Enospc,
    /// `EIO` (os error 5) from the whole operation. Call layer.
    Eio,
    /// `EINTR` (os error 4) from one `write`. File layer; absorbed by
    /// `write_all`/`BufWriter` retry loops, so it exercises the retry
    /// machinery rather than failing the operation.
    Eintr,
    /// A short write: half the buffer is written and reported. File
    /// layer; also absorbed by retry loops (a 1-byte buffer shortens to
    /// zero and surfaces as `WriteZero`).
    Short,
    /// Power-loss simulation: every byte past the given cumulative file
    /// offset is silently swallowed (reported as written, never hits the
    /// disk), including later flushes and drop-time writes. The trigger
    /// is ignored — the offset *is* the trigger. File layer.
    Crash(u64),
}

impl FaultKind {
    #[cfg_attr(not(feature = "faults"), allow(dead_code))]
    fn is_call_layer(self) -> bool {
        matches!(self, FaultKind::Enospc | FaultKind::Eio)
    }
}

/// When the fault fires, counted in qualifying polls at the kind's layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Fires on the first poll only.
    Once,
    /// Fires on the K-th poll only (1-based).
    Nth(u64),
    /// Fires on every N-th poll.
    Every(u64),
    /// Passes the first K polls, then fires on every poll.
    After(u64),
    /// Fires on each poll with probability `pct`/100, drawn from a
    /// splitmix64 stream seeded with `seed` — deterministic across runs.
    Seeded { seed: u64, pct: u8 },
}

/// One armed fault: kind + trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    pub kind: FaultKind,
    pub trigger: Trigger,
}

impl FaultSpec {
    pub fn new(kind: FaultKind, trigger: Trigger) -> Self {
        FaultSpec { kind, trigger }
    }

    /// Parses the `<kind>[@<trigger>]` half of the `ITAG_FAULTS` grammar,
    /// e.g. `eio@nth3`, `enospc`, `short@every2`, `crash100`,
    /// `eio@seeded7x25`. A missing trigger means `once`.
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let (kind_s, trig_s) = match s.split_once('@') {
            Some((k, t)) => (k, Some(t)),
            None => (s, None),
        };
        let kind = match kind_s {
            "enospc" => FaultKind::Enospc,
            "eio" => FaultKind::Eio,
            "eintr" => FaultKind::Eintr,
            "short" => FaultKind::Short,
            _ => {
                if let Some(off) = kind_s.strip_prefix("crash") {
                    let off: u64 = off.parse().map_err(|_| {
                        format!("fault kind {kind_s:?}: crash needs a byte offset (crash<N>)")
                    })?;
                    FaultKind::Crash(off)
                } else {
                    return Err(format!(
                        "unknown fault kind {kind_s:?} (expected enospc/eio/eintr/short/crash<N>)"
                    ));
                }
            }
        };
        let trigger = match trig_s {
            None => Trigger::Once,
            Some("once") => Trigger::Once,
            Some(t) => {
                if let Some(k) = t.strip_prefix("nth") {
                    Trigger::Nth(parse_num(t, k)?)
                } else if let Some(n) = t.strip_prefix("every") {
                    Trigger::Every(parse_num(t, n)?)
                } else if let Some(k) = t.strip_prefix("after") {
                    Trigger::After(parse_num(t, k)?)
                } else if let Some(rest) = t.strip_prefix("seeded") {
                    let (seed_s, pct_s) = rest.split_once('x').ok_or_else(|| {
                        format!("fault trigger {t:?}: seeded wants seeded<SEED>x<PCT>")
                    })?;
                    let seed = parse_num(t, seed_s)?;
                    let pct = parse_num(t, pct_s)? as u8;
                    if pct > 100 {
                        return Err(format!("fault trigger {t:?}: percentage above 100"));
                    }
                    Trigger::Seeded { seed, pct }
                } else {
                    return Err(format!(
                        "unknown fault trigger {t:?} \
                         (expected once/nth<K>/every<N>/after<K>/seeded<S>x<P>)"
                    ));
                }
            }
        };
        Ok(FaultSpec { kind, trigger })
    }
}

fn parse_num(ctx: &str, s: &str) -> Result<u64, String> {
    s.parse()
        .map_err(|_| format!("fault trigger {ctx:?}: {s:?} is not a number"))
}

/// Parses the full `ITAG_FAULTS` grammar: `<site>:<spec>` entries
/// separated by commas, where `<spec>` is `<kind>[@<trigger>]`. Site
/// names are validated against [`SITES`]. Empty input means no plan.
pub fn parse_plan(raw: &str) -> Result<Vec<(String, FaultSpec)>, String> {
    let mut entries = Vec::new();
    for part in raw.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (site, spec_s) = part
            .split_once(':')
            .ok_or_else(|| format!("fault entry {part:?}: expected <site>:<kind>[@<trigger>]"))?;
        if !SITES.contains(&site) {
            return Err(format!(
                "unknown fault site {site:?} (known: {})",
                SITES.join(", ")
            ));
        }
        let spec = FaultSpec::parse(spec_s)?;
        entries.push((site.to_string(), spec));
    }
    Ok(entries)
}

/// A programmatic plan for [`arm`]: sites paired with specs, built with
/// the fluent [`FaultPlan::site`] or parsed via [`FaultPlan::parse`].
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    entries: Vec<(String, FaultSpec)>,
}

impl FaultPlan {
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Arms `site` with `spec` (replacing an earlier entry for the site).
    pub fn site(mut self, site: &str, spec: FaultSpec) -> Self {
        self.entries.retain(|(s, _)| s != site);
        self.entries.push((site.to_string(), spec));
        self
    }

    /// Parses the same grammar as `ITAG_FAULTS`.
    pub fn parse(raw: &str) -> Result<FaultPlan, String> {
        Ok(FaultPlan {
            entries: parse_plan(raw)?,
        })
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Splitmix64 — the workspace's stock deterministic bit mixer.
#[cfg_attr(not(feature = "faults"), allow(dead_code))]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// Live machinery (feature = "faults").
// ---------------------------------------------------------------------------

#[cfg(feature = "faults")]
mod live {
    use super::*;
    use parking_lot::Mutex;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Fast gate: true while any plan (env or programmatic) is armed.
    /// With this false, a poll is one relaxed load and nothing else.
    static ACTIVE: AtomicBool = AtomicBool::new(false);

    /// Serializes [`arm`] holders: a second armer blocks until the first
    /// guard drops. Deliberately not a lock so no guard is held across
    /// the workload (which would trip lockcheck's fsync probe).
    static ARM_HELD: AtomicBool = AtomicBool::new(false);

    /// The armed plan. Unnamed (lockcheck-untracked) on purpose: polls
    /// happen under storage locks and the registry lock is leaf-only.
    static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

    /// The env-armed base plan, restored when an [`ArmedFaults`] drops.
    static ENV_PLAN: Mutex<Option<Vec<(String, FaultSpec)>>> = Mutex::new(None);

    #[derive(Default)]
    pub(super) struct Registry {
        sites: HashMap<String, SiteState>,
    }

    struct SiteState {
        spec: FaultSpec,
        /// Qualifying polls at the spec's own layer.
        polls: u64,
        fired: u64,
        /// Seeded-trigger stream state.
        rng: u64,
        /// Cumulative file-layer bytes seen (crash offsets count these).
        bytes: u64,
    }

    impl SiteState {
        fn new(spec: FaultSpec) -> Self {
            let rng = match spec.trigger {
                Trigger::Seeded { seed, .. } => seed,
                _ => 0,
            };
            SiteState {
                spec,
                polls: 0,
                fired: 0,
                rng,
                bytes: 0,
            }
        }

        /// Counts one qualifying poll and decides whether to fire.
        fn fire(&mut self) -> bool {
            self.polls += 1;
            let hit = match self.spec.trigger {
                Trigger::Once => self.polls == 1,
                Trigger::Nth(k) => self.polls == k,
                Trigger::Every(n) => n > 0 && self.polls.is_multiple_of(n),
                Trigger::After(k) => self.polls > k,
                Trigger::Seeded { pct, .. } => (splitmix64(&mut self.rng) >> 33) % 100 < pct as u64,
            };
            if hit {
                self.fired += 1;
            }
            hit
        }
    }

    fn install(entries: &[(String, FaultSpec)]) {
        let mut reg = REGISTRY.lock();
        let mut sites = HashMap::new();
        for (site, spec) in entries {
            sites.insert(site.clone(), SiteState::new(*spec));
        }
        let any = !sites.is_empty();
        *reg = Some(Registry { sites });
        ACTIVE.store(any, Ordering::SeqCst);
    }

    pub(super) fn check_io_impl(site: &str) -> io::Result<()> {
        if !ACTIVE.load(Ordering::Relaxed) {
            return Ok(());
        }
        let mut reg = REGISTRY.lock();
        let Some(reg) = reg.as_mut() else {
            return Ok(());
        };
        let Some(st) = reg.sites.get_mut(site) else {
            return Ok(());
        };
        let errno = match st.spec.kind {
            FaultKind::Enospc => 28,
            FaultKind::Eio => 5,
            // File-layer kinds are not consumed by call-layer polls.
            _ => return Ok(()),
        };
        if st.fire() {
            Err(io::Error::from_raw_os_error(errno))
        } else {
            Ok(())
        }
    }

    /// File-layer decision for one `write(buf)`: how many bytes to pass
    /// through to the real file, and what to report to the caller.
    pub(super) enum WriteDecision {
        /// Write everything, report the real result.
        Pass,
        /// Report `Err(EINTR)` without writing.
        Eintr,
        /// Write only `keep` bytes and report `Ok(keep)`.
        Short { keep: usize },
        /// Write only `keep` bytes but report the full length as
        /// written (power already lost past the crash offset).
        Swallow { keep: usize },
    }

    pub(super) fn file_write_decision(site: &str, len: usize) -> WriteDecision {
        if !ACTIVE.load(Ordering::Relaxed) {
            return WriteDecision::Pass;
        }
        let mut reg = REGISTRY.lock();
        let Some(reg) = reg.as_mut() else {
            return WriteDecision::Pass;
        };
        let Some(st) = reg.sites.get_mut(site) else {
            return WriteDecision::Pass;
        };
        if st.spec.kind.is_call_layer() {
            return WriteDecision::Pass;
        }
        match st.spec.kind {
            FaultKind::Crash(offset) => {
                let before = st.bytes;
                st.bytes += len as u64;
                if before >= offset {
                    WriteDecision::Swallow { keep: 0 }
                } else if st.bytes > offset {
                    // This write crosses the crash point.
                    st.fired += 1;
                    WriteDecision::Swallow {
                        keep: (offset - before) as usize,
                    }
                } else {
                    WriteDecision::Pass
                }
            }
            FaultKind::Eintr => {
                if st.fire() {
                    WriteDecision::Eintr
                } else {
                    st.bytes += len as u64;
                    WriteDecision::Pass
                }
            }
            FaultKind::Short => {
                if st.fire() {
                    // Never shorten to zero: `Ok(0)` from `write` means
                    // "pipe closed" and turns retry loops into
                    // `WriteZero` errors instead of exercising them.
                    let keep = (len / 2).max(1);
                    st.bytes += keep as u64;
                    WriteDecision::Short { keep }
                } else {
                    st.bytes += len as u64;
                    WriteDecision::Pass
                }
            }
            FaultKind::Enospc | FaultKind::Eio => WriteDecision::Pass,
        }
    }

    pub(super) fn fired_impl(site: &str) -> u64 {
        REGISTRY
            .lock()
            .as_ref()
            .and_then(|r| r.sites.get(site))
            .map(|s| s.fired)
            .unwrap_or(0)
    }

    // lint: allow(panic-path)
    pub(super) fn init_env_impl() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let entries = match crate::envknob::env_fault_plan() {
                Ok(entries) => entries,
                // Strict posture: an unparseable plan aborts rather than
                // silently testing nothing.
                Err(e) => panic!("{e}"),
            };
            if !entries.is_empty() {
                install(&entries);
            }
            *ENV_PLAN.lock() = Some(entries);
        });
    }

    pub(super) fn arm_impl(plan: &FaultPlan) -> ArmedFaults {
        init_env_impl();
        while ARM_HELD
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::thread::yield_now();
        }
        install(&plan.entries);
        ArmedFaults { _priv: () }
    }

    pub(super) fn disarm_impl() {
        let env = ENV_PLAN.lock().clone().unwrap_or_default();
        install(&env);
        ARM_HELD.store(false, Ordering::Release);
    }
}

/// Guard returned by [`arm`]. While alive it owns the process-global
/// plan; dropping it restores the `ITAG_FAULTS` base plan (or nothing)
/// and lets the next armer in.
#[must_use = "faults are disarmed when the guard drops"]
pub struct ArmedFaults {
    #[allow(dead_code)]
    _priv: (),
}

impl ArmedFaults {
    /// Times the armed plan actually fired at `site` so far.
    pub fn fired(&self, site: &str) -> u64 {
        fired(site)
    }
}

#[cfg(feature = "faults")]
impl Drop for ArmedFaults {
    fn drop(&mut self) {
        live::disarm_impl();
    }
}

// ---------------------------------------------------------------------------
// Public polls — real with the feature on, inert without it.
// ---------------------------------------------------------------------------

/// True when the crate was built with fault injection compiled in.
pub fn compiled_in() -> bool {
    cfg!(feature = "faults")
}

/// Call-layer poll: returns the injected error when `site` is armed with
/// a call-layer kind whose trigger fires.
#[cfg(feature = "faults")]
#[inline]
pub fn check_io(site: &str) -> io::Result<()> {
    live::check_io_impl(site)
}

/// Call-layer poll (fault injection compiled out — always `Ok`).
#[cfg(not(feature = "faults"))]
#[inline(always)]
pub fn check_io(_site: &str) -> io::Result<()> {
    Ok(())
}

/// Parses `ITAG_FAULTS` once per process and installs it as the base
/// plan. Called from `Store` construction and by [`arm`]; panics on an
/// unparseable plan, and (without the `faults` feature) on any non-empty
/// plan — silently ignoring a requested fault storm would be worse.
#[cfg(feature = "faults")]
pub fn init_env() {
    live::init_env_impl();
}

/// See the feature-on twin.
#[cfg(not(feature = "faults"))]
// lint: allow(panic-path)
pub fn init_env() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| match crate::envknob::env_fault_plan() {
        Ok(entries) if entries.is_empty() => {}
        Ok(_) => panic!("ITAG_FAULTS is set but itag-store was built without the `faults` feature"),
        Err(e) => panic!("{e}"),
    });
}

/// Installs `plan` as the process-global fault plan, serializing against
/// other armers. See the module docs for the test-isolation rules.
#[cfg(feature = "faults")]
pub fn arm(plan: &FaultPlan) -> ArmedFaults {
    live::arm_impl(plan)
}

/// Arming stub: without the `faults` feature a non-empty plan panics
/// (the caller asked for faults that cannot fire).
#[cfg(not(feature = "faults"))]
pub fn arm(plan: &FaultPlan) -> ArmedFaults {
    assert!(
        plan.is_empty(),
        "itag-store was built without the `faults` feature; cannot arm a fault plan"
    );
    ArmedFaults { _priv: () }
}

/// Times the armed plan fired at `site` (0 when nothing is armed).
#[cfg(feature = "faults")]
pub fn fired(site: &str) -> u64 {
    live::fired_impl(site)
}

/// See the feature-on twin.
#[cfg(not(feature = "faults"))]
pub fn fired(_site: &str) -> u64 {
    0
}

// ---------------------------------------------------------------------------
// FaultFile — the faulty `File` wrapper.
// ---------------------------------------------------------------------------

/// Wraps a `std::fs::File`, injecting file-layer faults armed at
/// `write_site` into the write path and call-layer faults armed at
/// `sync_site` into `sync_data`/`sync_all`. With the `faults` feature
/// off this is a transparent delegating wrapper.
pub struct FaultFile {
    inner: std::fs::File,
    #[cfg_attr(not(feature = "faults"), allow(dead_code))]
    write_site: &'static str,
    sync_site: &'static str,
}

impl FaultFile {
    /// Wraps `inner`; sync faults default to the same site as writes.
    pub fn new(inner: std::fs::File, write_site: &'static str) -> Self {
        FaultFile {
            inner,
            write_site,
            sync_site: write_site,
        }
    }

    /// Routes `sync_data`/`sync_all` polls to a separate site (the WAL
    /// uses `wal.append` for bytes and `wal.sync` for fsync).
    pub fn with_sync_site(mut self, sync_site: &'static str) -> Self {
        self.sync_site = sync_site;
        self
    }

    pub fn sync_data(&self) -> io::Result<()> {
        check_io(self.sync_site)?;
        self.inner.sync_data()
    }

    pub fn sync_all(&self) -> io::Result<()> {
        check_io(self.sync_site)?;
        self.inner.sync_all()
    }

    pub fn set_len(&self, size: u64) -> io::Result<()> {
        self.inner.set_len(size)
    }

    pub fn get_ref(&self) -> &std::fs::File {
        &self.inner
    }
}

impl io::Write for FaultFile {
    #[cfg(feature = "faults")]
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        use live::WriteDecision;
        match live::file_write_decision(self.write_site, buf.len()) {
            WriteDecision::Pass => self.inner.write(buf),
            WriteDecision::Eintr => Err(io::Error::from_raw_os_error(4)),
            WriteDecision::Short { keep } => {
                self.inner.write_all(&buf[..keep])?;
                Ok(keep)
            }
            WriteDecision::Swallow { keep } => {
                self.inner.write_all(&buf[..keep])?;
                Ok(buf.len())
            }
        }
    }

    #[cfg(not(feature = "faults"))]
    #[inline(always)]
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl io::Seek for FaultFile {
    fn seek(&mut self, pos: io::SeekFrom) -> io::Result<u64> {
        self.inner.seek(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_grammar_roundtrips() {
        assert_eq!(
            FaultSpec::parse("eio").unwrap(),
            FaultSpec::new(FaultKind::Eio, Trigger::Once)
        );
        assert_eq!(
            FaultSpec::parse("enospc@nth3").unwrap(),
            FaultSpec::new(FaultKind::Enospc, Trigger::Nth(3))
        );
        assert_eq!(
            FaultSpec::parse("short@every2").unwrap(),
            FaultSpec::new(FaultKind::Short, Trigger::Every(2))
        );
        assert_eq!(
            FaultSpec::parse("eintr@after5").unwrap(),
            FaultSpec::new(FaultKind::Eintr, Trigger::After(5))
        );
        assert_eq!(
            FaultSpec::parse("crash1024").unwrap(),
            FaultSpec::new(FaultKind::Crash(1024), Trigger::Once)
        );
        assert_eq!(
            FaultSpec::parse("eio@seeded7x25").unwrap(),
            FaultSpec::new(FaultKind::Eio, Trigger::Seeded { seed: 7, pct: 25 })
        );
    }

    #[test]
    fn spec_grammar_rejects_garbage() {
        for bad in [
            "nope",
            "eio@sometimes",
            "crash",
            "crashx",
            "eio@nthx",
            "eio@seeded7",
            "eio@seeded7x200",
        ] {
            assert!(FaultSpec::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn plan_grammar_validates_sites() {
        let plan = parse_plan("wal.append:eio@nth2, wal.sync:enospc").unwrap();
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[0].0, WAL_APPEND);
        assert!(parse_plan("").unwrap().is_empty());
        assert!(parse_plan("bogus.site:eio").is_err());
        assert!(parse_plan("wal.append").is_err());
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = 42;
        let mut b = 42;
        for _ in 0..100 {
            assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        }
    }

    // The lib test binary runs these alongside every other store unit
    // test, so they may only arm the `server.*` sites — the one pair no
    // store code path ever polls. The real storage sites are exercised
    // by the dedicated `fault_torture` / `wal_fault_sweep` binaries.

    #[cfg(feature = "faults")]
    #[test]
    fn arm_guard_fires_and_restores() {
        // Serialized with every other arming test by the guard itself.
        let guard =
            arm(&FaultPlan::new()
                .site(SERVER_ACCEPT, FaultSpec::new(FaultKind::Eio, Trigger::Once)));
        let err = check_io(SERVER_ACCEPT).unwrap_err();
        assert_eq!(err.raw_os_error(), Some(5));
        assert_eq!(guard.fired(SERVER_ACCEPT), 1);
        // `once` does not fire twice.
        assert!(check_io(SERVER_ACCEPT).is_ok());
        drop(guard);
        assert!(check_io(SERVER_ACCEPT).is_ok());
        assert_eq!(fired(SERVER_ACCEPT), 0);
    }

    #[cfg(feature = "faults")]
    #[test]
    fn nth_trigger_counts_polls() {
        let site = SERVER_SESSION_WRITE;
        let guard =
            arm(&FaultPlan::new().site(site, FaultSpec::new(FaultKind::Enospc, Trigger::Nth(3))));
        assert!(check_io(site).is_ok());
        assert!(check_io(site).is_ok());
        let err = check_io(site).unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28));
        assert!(check_io(site).is_ok());
        assert_eq!(guard.fired(site), 1);
    }
}
