//! Point-in-time snapshots of the full table set.
//!
//! A snapshot is the serbin encoding of every table's sorted contents plus
//! the LSN it covers, wrapped in `[magic][crc][len][payload]` and installed
//! with the write-to-temp + atomic-rename idiom so that a crash during
//! checkpointing can never destroy the previous snapshot.
//!
//! Two producers exist for the same byte format: [`write`] serializes an
//! in-memory [`Snapshot`] (the reference implementation, used by tests),
//! and [`SnapshotWriter`] streams entries straight from the store's shard
//! iterators to disk — no intermediate clone of the table contents — by
//! hand-rolling serbin's struct/seq layout (plain field concatenation,
//! varint-prefixed sequences) and back-patching the header's crc/len once
//! the payload length is known. `streamed_snapshot_matches_write` pins the
//! two outputs byte-for-byte.

use crate::codec::{crc32, write_uvarint, Crc32};
use crate::error::{Result, StoreError};
use crate::faults::{self, FaultFile};
use crate::{serbin, TableId};
use serde::{Deserialize, Serialize};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// `ITAGSNP1` — snapshot file magic + format version.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"ITAGSNP1";

/// Serialized form of a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Snapshot {
    /// LSN of the last WAL entry folded into this snapshot. Replay resumes
    /// with the first WAL entry whose LSN is greater.
    pub last_lsn: u64,
    /// Every table's full sorted contents.
    pub tables: Vec<TableDump>,
}

/// One table inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableDump {
    pub table: TableId,
    /// Key/value pairs in key order.
    pub entries: Vec<(Vec<u8>, Vec<u8>)>,
}

/// Writes `snapshot` to `path` atomically (temp file + rename). The
/// `snapshot.write` fault site covers the whole producer: the entry
/// check fails the operation outright, and the [`FaultFile`] wrapper
/// injects byte-level faults into the temp file (a torn temp file never
/// installs — the rename only happens after a clean sync).
pub fn write(path: &Path, snapshot: &Snapshot) -> Result<()> {
    faults::check_io(faults::SNAPSHOT_WRITE)?;
    let payload = serbin::to_bytes(snapshot)?;
    let tmp = path.with_extension("snp.tmp");
    {
        let mut file = FaultFile::new(std::fs::File::create(&tmp)?, faults::SNAPSHOT_WRITE);
        file.write_all(&SNAPSHOT_MAGIC)?;
        file.write_all(&crc32(&payload).to_le_bytes())?;
        file.write_all(&(payload.len() as u64).to_le_bytes())?;
        file.write_all(&payload)?;
        file.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    // Persist the rename itself where the platform allows it.
    if let Some(dir) = path.parent() {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_data();
        }
    }
    Ok(())
}

/// Streams a snapshot to disk entry by entry (see module docs). The
/// declared table and entry counts are enforced: [`SnapshotWriter::finish`]
/// fails if they were not met exactly, because the counts are the seq
/// length prefixes already written into the payload.
pub struct SnapshotWriter {
    out: BufWriter<FaultFile>,
    crc: Crc32,
    payload_len: u64,
    tmp: PathBuf,
    path: PathBuf,
    tables_left: u64,
    entries_left: u64,
    varint_buf: Vec<u8>,
}

impl SnapshotWriter {
    /// Opens the temp file and writes the header placeholder plus the
    /// snapshot preamble (`last_lsn`, table count).
    pub fn create(path: &Path, last_lsn: u64, table_count: u64) -> Result<Self> {
        faults::check_io(faults::CHECKPOINT_STREAM)?;
        let tmp = path.with_extension("snp.tmp");
        let mut out = BufWriter::new(FaultFile::new(
            std::fs::File::create(&tmp)?,
            faults::CHECKPOINT_STREAM,
        ));
        out.write_all(&SNAPSHOT_MAGIC)?;
        // crc + len are back-patched in finish().
        out.write_all(&[0u8; 12])?;
        let mut w = SnapshotWriter {
            out,
            crc: Crc32::new(),
            payload_len: 0,
            tmp,
            path: path.to_path_buf(),
            tables_left: table_count,
            entries_left: 0,
            varint_buf: Vec::with_capacity(10),
        };
        w.emit_varint(last_lsn)?;
        w.emit_varint(table_count)?;
        Ok(w)
    }

    fn emit(&mut self, bytes: &[u8]) -> Result<()> {
        self.crc.update(bytes);
        self.payload_len += bytes.len() as u64;
        self.out.write_all(bytes)?;
        Ok(())
    }

    fn emit_varint(&mut self, v: u64) -> Result<()> {
        self.varint_buf.clear();
        write_uvarint(&mut self.varint_buf, v);
        let buf = std::mem::take(&mut self.varint_buf);
        self.emit(&buf)?;
        self.varint_buf = buf;
        Ok(())
    }

    /// Starts the next table dump. The previous table must be complete.
    pub fn begin_table(&mut self, table: TableId, entry_count: u64) -> Result<()> {
        // Per-table poll so `nth`/`every` triggers can fail a checkpoint
        // mid-stream, not only at creation.
        faults::check_io(faults::CHECKPOINT_STREAM)?;
        if self.entries_left != 0 {
            return Err(StoreError::Codec(format!(
                "snapshot table started with {} entries still owed",
                self.entries_left
            )));
        }
        if self.tables_left == 0 {
            return Err(StoreError::Codec(
                "snapshot writer got more tables than declared".into(),
            ));
        }
        self.tables_left -= 1;
        self.entries_left = entry_count;
        self.emit_varint(table.0 as u64)?;
        self.emit_varint(entry_count)
    }

    /// Appends one key/value pair of the current table (key order is the
    /// caller's responsibility — the store feeds a merged ordered scan).
    pub fn entry(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        if self.entries_left == 0 {
            return Err(StoreError::Codec(
                "snapshot writer got more entries than declared".into(),
            ));
        }
        self.entries_left -= 1;
        self.emit_varint(key.len() as u64)?;
        self.emit(key)?;
        self.emit_varint(value.len() as u64)?;
        self.emit(value)
    }

    /// Back-patches crc + payload length, fsyncs, and atomically installs
    /// the snapshot over `path`.
    pub fn finish(mut self) -> Result<()> {
        if self.tables_left != 0 || self.entries_left != 0 {
            return Err(StoreError::Codec(format!(
                "snapshot writer finished early: {} tables / {} entries owed",
                self.tables_left, self.entries_left
            )));
        }
        self.out.flush()?;
        let crc = self.crc.finish();
        let len = self.payload_len;
        let file = self.out.get_mut();
        file.seek(SeekFrom::Start(SNAPSHOT_MAGIC.len() as u64))?;
        file.write_all(&crc.to_le_bytes())?;
        file.write_all(&len.to_le_bytes())?;
        file.sync_data()?;
        std::fs::rename(&self.tmp, &self.path)?;
        // Persist the rename itself where the platform allows it.
        if let Some(dir) = self.path.parent() {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_data();
            }
        }
        Ok(())
    }
}

/// Reads a snapshot if one exists. `Ok(None)` means a fresh database.
// lint: allow(panic-path)
pub fn read(path: &Path) -> Result<Option<Snapshot>> {
    let mut file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    // Polled after the open so a fresh directory (no snapshot yet) does
    // not consume a recovery-fault trigger.
    faults::check_io(faults::RECOVERY_SCAN)?;
    let mut data = Vec::new();
    file.read_to_end(&mut data)?;

    let header = SNAPSHOT_MAGIC.len() + 4 + 8;
    if data.len() < header {
        return Err(StoreError::Corrupt("snapshot shorter than header".into()));
    }
    if data[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(StoreError::Corrupt("bad snapshot magic".into()));
    }
    let corrupt_header = || StoreError::Corrupt("snapshot header unreadable".into());
    let crc = crate::codec::read_le_u32(&data[8..12]).ok_or_else(corrupt_header)?;
    let len = crate::codec::read_le_u64(&data[12..20]).ok_or_else(corrupt_header)? as usize;
    let payload = data
        .get(header..header + len)
        .ok_or_else(|| StoreError::Corrupt("snapshot payload truncated".into()))?;
    if crc32(payload) != crc {
        return Err(StoreError::Corrupt("snapshot checksum mismatch".into()));
    }
    Ok(Some(serbin::from_bytes(payload)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TestDir;

    fn sample() -> Snapshot {
        Snapshot {
            last_lsn: 42,
            tables: vec![
                TableDump {
                    table: TableId(1),
                    entries: vec![
                        (b"a".to_vec(), b"1".to_vec()),
                        (b"b".to_vec(), b"2".to_vec()),
                    ],
                },
                TableDump {
                    table: TableId(9),
                    entries: vec![],
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let dir = TestDir::new("snap-rt");
        let path = dir.path().join("db.snp");
        write(&path, &sample()).unwrap();
        let back = read(&path).unwrap().unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn streamed_snapshot_matches_write() {
        // The streaming writer hand-rolls serbin's layout; the two
        // producers must emit byte-identical files.
        let dir = TestDir::new("snap-stream");
        let snap = sample();
        let ref_path = dir.path().join("ref.snp");
        write(&ref_path, &snap).unwrap();

        let stream_path = dir.path().join("stream.snp");
        let mut w =
            SnapshotWriter::create(&stream_path, snap.last_lsn, snap.tables.len() as u64).unwrap();
        for dump in &snap.tables {
            w.begin_table(dump.table, dump.entries.len() as u64)
                .unwrap();
            for (k, v) in &dump.entries {
                w.entry(k, v).unwrap();
            }
        }
        w.finish().unwrap();

        assert_eq!(
            std::fs::read(&ref_path).unwrap(),
            std::fs::read(&stream_path).unwrap(),
            "streamed snapshot bytes diverged from the reference encoder"
        );
        assert_eq!(read(&stream_path).unwrap().unwrap(), snap);
    }

    #[test]
    fn snapshot_writer_enforces_declared_counts() {
        let dir = TestDir::new("snap-counts");
        let path = dir.path().join("db.snp");
        // Fewer tables than declared.
        let w = SnapshotWriter::create(&path, 1, 2).unwrap();
        assert!(w.finish().is_err());
        // More entries than declared.
        let mut w = SnapshotWriter::create(&path, 1, 1).unwrap();
        w.begin_table(TableId(1), 0).unwrap();
        assert!(w.entry(b"k", b"v").is_err());
        // Fewer entries than declared.
        let mut w = SnapshotWriter::create(&path, 1, 1).unwrap();
        w.begin_table(TableId(1), 2).unwrap();
        w.entry(b"k", b"v").unwrap();
        assert!(w.finish().is_err());
        // A failed stream never installs over the target path.
        assert!(read(&path).unwrap().is_none());
    }

    #[test]
    fn missing_snapshot_is_none() {
        let dir = TestDir::new("snap-none");
        assert!(read(&dir.path().join("db.snp")).unwrap().is_none());
    }

    #[test]
    fn corrupted_payload_is_detected() {
        let dir = TestDir::new("snap-corrupt");
        let path = dir.path().join("db.snp");
        write(&path, &sample()).unwrap();
        let mut data = std::fs::read(&path).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0x01;
        std::fs::write(&path, &data).unwrap();
        assert!(matches!(read(&path), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn leftover_tmp_file_does_not_shadow_snapshot() {
        let dir = TestDir::new("snap-tmp");
        let path = dir.path().join("db.snp");
        // A crash can leave a garbage temp file behind; a subsequent write
        // must still install atomically over it.
        std::fs::write(path.with_extension("snp.tmp"), b"garbage").unwrap();
        write(&path, &sample()).unwrap();
        assert_eq!(read(&path).unwrap().unwrap(), sample());
    }

    #[test]
    fn truncated_snapshot_is_corrupt_not_panic() {
        let dir = TestDir::new("snap-trunc");
        let path = dir.path().join("db.snp");
        write(&path, &sample()).unwrap();
        let data = std::fs::read(&path).unwrap();
        for cut in [0usize, 4, 10, data.len() / 2] {
            std::fs::write(&path, &data[..cut]).unwrap();
            assert!(read(&path).is_err(), "cut={cut}");
        }
    }
}
