//! Point-in-time snapshots of the full table set.
//!
//! A snapshot is the serbin encoding of every table's sorted contents plus
//! the LSN it covers, wrapped in `[magic][crc][len][payload]` and installed
//! with the write-to-temp + atomic-rename idiom so that a crash during
//! checkpointing can never destroy the previous snapshot.

use crate::codec::crc32;
use crate::error::{Result, StoreError};
use crate::{serbin, TableId};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::path::Path;

/// `ITAGSNP1` — snapshot file magic + format version.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"ITAGSNP1";

/// Serialized form of a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Snapshot {
    /// LSN of the last WAL entry folded into this snapshot. Replay resumes
    /// with the first WAL entry whose LSN is greater.
    pub last_lsn: u64,
    /// Every table's full sorted contents.
    pub tables: Vec<TableDump>,
}

/// One table inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableDump {
    pub table: TableId,
    /// Key/value pairs in key order.
    pub entries: Vec<(Vec<u8>, Vec<u8>)>,
}

/// Writes `snapshot` to `path` atomically (temp file + rename).
pub fn write(path: &Path, snapshot: &Snapshot) -> Result<()> {
    let payload = serbin::to_bytes(snapshot)?;
    let tmp = path.with_extension("snp.tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&SNAPSHOT_MAGIC)?;
        file.write_all(&crc32(&payload).to_le_bytes())?;
        file.write_all(&(payload.len() as u64).to_le_bytes())?;
        file.write_all(&payload)?;
        file.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    // Persist the rename itself where the platform allows it.
    if let Some(dir) = path.parent() {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_data();
        }
    }
    Ok(())
}

/// Reads a snapshot if one exists. `Ok(None)` means a fresh database.
pub fn read(path: &Path) -> Result<Option<Snapshot>> {
    let mut file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let mut data = Vec::new();
    file.read_to_end(&mut data)?;

    let header = SNAPSHOT_MAGIC.len() + 4 + 8;
    if data.len() < header {
        return Err(StoreError::Corrupt("snapshot shorter than header".into()));
    }
    if data[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(StoreError::Corrupt("bad snapshot magic".into()));
    }
    let crc = u32::from_le_bytes(data[8..12].try_into().unwrap());
    let len = u64::from_le_bytes(data[12..20].try_into().unwrap()) as usize;
    let payload = data
        .get(header..header + len)
        .ok_or_else(|| StoreError::Corrupt("snapshot payload truncated".into()))?;
    if crc32(payload) != crc {
        return Err(StoreError::Corrupt("snapshot checksum mismatch".into()));
    }
    Ok(Some(serbin::from_bytes(payload)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TestDir;

    fn sample() -> Snapshot {
        Snapshot {
            last_lsn: 42,
            tables: vec![
                TableDump {
                    table: TableId(1),
                    entries: vec![
                        (b"a".to_vec(), b"1".to_vec()),
                        (b"b".to_vec(), b"2".to_vec()),
                    ],
                },
                TableDump {
                    table: TableId(9),
                    entries: vec![],
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let dir = TestDir::new("snap-rt");
        let path = dir.path().join("db.snp");
        write(&path, &sample()).unwrap();
        let back = read(&path).unwrap().unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn missing_snapshot_is_none() {
        let dir = TestDir::new("snap-none");
        assert!(read(&dir.path().join("db.snp")).unwrap().is_none());
    }

    #[test]
    fn corrupted_payload_is_detected() {
        let dir = TestDir::new("snap-corrupt");
        let path = dir.path().join("db.snp");
        write(&path, &sample()).unwrap();
        let mut data = std::fs::read(&path).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0x01;
        std::fs::write(&path, &data).unwrap();
        assert!(matches!(read(&path), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn leftover_tmp_file_does_not_shadow_snapshot() {
        let dir = TestDir::new("snap-tmp");
        let path = dir.path().join("db.snp");
        // A crash can leave a garbage temp file behind; a subsequent write
        // must still install atomically over it.
        std::fs::write(path.with_extension("snp.tmp"), b"garbage").unwrap();
        write(&path, &sample()).unwrap();
        assert_eq!(read(&path).unwrap().unwrap(), sample());
    }

    #[test]
    fn truncated_snapshot_is_corrupt_not_panic() {
        let dir = TestDir::new("snap-trunc");
        let path = dir.path().join("db.snp");
        write(&path, &sample()).unwrap();
        let data = std::fs::read(&path).unwrap();
        for cut in [0usize, 4, 10, data.len() / 2] {
            std::fs::write(&path, &data[..cut]).unwrap();
            assert!(read(&path).is_err(), "cut={cut}");
        }
    }
}
