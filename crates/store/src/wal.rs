//! Write-ahead log with CRC-framed records and torn-tail recovery.
//!
//! On-disk layout: a fixed 8-byte file header (`magic || version`) followed
//! by frames of `[len: u32 LE][crc32(payload): u32 LE][payload]`. Recovery
//! scans frames until EOF or the first frame whose length or checksum is
//! invalid — that point is treated as a torn write (the classic ARIES-style
//! assumption for an append-only log) and the file is truncated there on the
//! next append.

use crate::codec::{crc32, read_le_u32};
use crate::error::{Result, StoreError};
use crate::faults::{self, FaultFile};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// `ITAGWAL1` — identifies a WAL file and its format version.
pub const WAL_MAGIC: [u8; 8] = *b"ITAGWAL1";

/// Frame header size: length + checksum.
const FRAME_HEADER: usize = 8;

/// Appender half of the WAL. One writer exists per store.
///
/// The file sits behind a [`FaultFile`] so the `wal.append` fault site
/// can inject short writes, `EINTR`, and crash-at-byte-offset into the
/// byte stream (offsets count from the start of the file, magic
/// included) and `wal.sync` can fail the fsync.
pub struct Wal {
    writer: BufWriter<FaultFile>,
    path: PathBuf,
    /// Bytes of the file known to contain valid frames (header included).
    len: u64,
    appended_frames: u64,
}

fn wrap(file: File) -> FaultFile {
    FaultFile::new(file, faults::WAL_APPEND).with_sync_site(faults::WAL_SYNC)
}

impl Wal {
    /// Creates a fresh WAL at `path`, truncating any existing file.
    pub fn create(path: &Path) -> Result<Self> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        let mut file = wrap(file);
        file.write_all(&WAL_MAGIC)?;
        file.flush()?;
        Ok(Wal {
            writer: BufWriter::new(file),
            path: path.to_path_buf(),
            len: WAL_MAGIC.len() as u64,
            appended_frames: 0,
        })
    }

    /// Opens an existing WAL for appending after recovery decided that the
    /// first `valid_len` bytes hold intact frames. Anything after that point
    /// is a torn tail and is cut off.
    pub fn open_for_append(path: &Path, valid_len: u64) -> Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(valid_len)?;
        let mut file = wrap(file);
        file.seek(SeekFrom::End(0))?;
        Ok(Wal {
            writer: BufWriter::new(file),
            path: path.to_path_buf(),
            len: valid_len,
            appended_frames: 0,
        })
    }

    /// Appends one frame. The frame is buffered; call [`Wal::sync`] to make
    /// it durable (the store decides based on its durability level).
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        faults::check_io(faults::WAL_APPEND)?;
        let len = u32::try_from(payload.len())
            .map_err(|_| StoreError::Codec("WAL frame larger than 4 GiB".into()))?;
        self.writer.write_all(&len.to_le_bytes())?;
        self.writer.write_all(&crc32(payload).to_le_bytes())?;
        self.writer.write_all(payload)?;
        self.len += (FRAME_HEADER + payload.len()) as u64;
        self.appended_frames += 1;
        Ok(())
    }

    /// Flushes buffered frames and fsyncs the file. This is the store's
    /// single fsync choke point, so it doubles as the lockcheck probe for
    /// "lock held across fsync" (see `parking_lot::lockcheck`).
    pub fn sync(&mut self) -> Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        parking_lot::lockcheck::note_fsync();
        Ok(())
    }

    /// Flushes buffered frames to the OS without fsync.
    pub fn flush(&mut self) -> Result<()> {
        self.writer.flush()?;
        Ok(())
    }

    /// Total bytes written (valid prefix).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no frames have been written beyond the header.
    pub fn is_empty(&self) -> bool {
        self.len <= WAL_MAGIC.len() as u64
    }

    /// Frames appended through this handle (diagnostics).
    pub fn appended_frames(&self) -> u64 {
        self.appended_frames
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Outcome of scanning a WAL file on startup.
pub struct WalScan {
    /// Intact frame payloads, in append order.
    pub frames: Vec<Vec<u8>>,
    /// Length of the valid prefix; the file should be truncated here before
    /// further appends.
    pub valid_len: u64,
    /// True when a torn tail was detected (and silently dropped).
    pub truncated_tail: bool,
}

/// Reads every intact frame from the WAL at `path`.
///
/// * A missing file yields an empty scan (fresh database).
/// * A bad magic header is a hard [`StoreError::Corrupt`] — the file is not
///   a WAL at all, and destroying it silently would lose someone's data.
/// * A torn final frame is expected after a crash and is dropped.
// lint: allow(panic-path)
pub fn scan(path: &Path) -> Result<WalScan> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(WalScan {
                frames: Vec::new(),
                valid_len: WAL_MAGIC.len() as u64,
                truncated_tail: false,
            })
        }
        Err(e) => return Err(e.into()),
    };
    // Polled after the open so a fresh directory (no WAL yet) does not
    // consume a recovery-fault trigger.
    faults::check_io(faults::RECOVERY_SCAN)?;
    let mut data = Vec::new();
    file.read_to_end(&mut data)?;

    if data.len() < WAL_MAGIC.len() {
        // File exists but even the header is torn: treat as empty.
        return Ok(WalScan {
            frames: Vec::new(),
            valid_len: WAL_MAGIC.len() as u64,
            truncated_tail: true,
        });
    }
    if data[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(StoreError::Corrupt(format!(
            "{} is not an iTag WAL (bad magic)",
            path.display()
        )));
    }

    let mut frames = Vec::new();
    let mut offset = WAL_MAGIC.len();
    let mut truncated_tail = false;
    while offset < data.len() {
        if data.len() - offset < FRAME_HEADER {
            truncated_tail = true;
            break;
        }
        let (Some(len), Some(crc)) = (
            read_le_u32(&data[offset..]).map(|v| v as usize),
            read_le_u32(&data[offset + 4..]),
        ) else {
            // Unreachable given the FRAME_HEADER length check above, but
            // a short read is a torn tail, never a panic.
            truncated_tail = true;
            break;
        };
        let body_start = offset + FRAME_HEADER;
        if data.len() - body_start < len {
            truncated_tail = true;
            break;
        }
        let payload = &data[body_start..body_start + len];
        if crc32(payload) != crc {
            truncated_tail = true;
            break;
        }
        frames.push(payload.to_vec());
        offset = body_start + len;
    }

    Ok(WalScan {
        frames,
        valid_len: offset as u64,
        truncated_tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TestDir;

    #[test]
    fn append_and_scan_roundtrip() {
        let dir = TestDir::new("wal-roundtrip");
        let path = dir.path().join("test.wal");
        let mut wal = Wal::create(&path).unwrap();
        for i in 0..100u32 {
            wal.append(&i.to_le_bytes()).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);

        let scan = scan(&path).unwrap();
        assert_eq!(scan.frames.len(), 100);
        assert!(!scan.truncated_tail);
        for (i, frame) in scan.frames.iter().enumerate() {
            assert_eq!(frame.as_slice(), (i as u32).to_le_bytes());
        }
    }

    #[test]
    fn missing_file_is_empty_scan() {
        let dir = TestDir::new("wal-missing");
        let scan = scan(&dir.path().join("nope.wal")).unwrap();
        assert!(scan.frames.is_empty());
        assert!(!scan.truncated_tail);
    }

    #[test]
    fn torn_tail_is_dropped_and_recovery_can_continue() {
        let dir = TestDir::new("wal-torn");
        let path = dir.path().join("test.wal");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(b"frame-one").unwrap();
        wal.append(b"frame-two").unwrap();
        wal.sync().unwrap();
        drop(wal);

        // Simulate a torn write: chop bytes off the final frame.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();

        let s = scan(&path).unwrap();
        assert_eq!(s.frames.len(), 1);
        assert_eq!(s.frames[0], b"frame-one");
        assert!(s.truncated_tail);

        // Re-open for append at the valid prefix and write again.
        let mut wal = Wal::open_for_append(&path, s.valid_len).unwrap();
        wal.append(b"frame-three").unwrap();
        wal.sync().unwrap();
        drop(wal);

        let s = scan(&path).unwrap();
        assert_eq!(s.frames.len(), 2);
        assert_eq!(s.frames[1], b"frame-three");
        assert!(!s.truncated_tail);
    }

    #[test]
    fn corrupt_frame_crc_truncates_from_that_frame() {
        let dir = TestDir::new("wal-crc");
        let path = dir.path().join("test.wal");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(b"good").unwrap();
        wal.append(b"will-be-corrupted").unwrap();
        wal.append(b"unreachable").unwrap();
        wal.sync().unwrap();
        drop(wal);

        let mut data = std::fs::read(&path).unwrap();
        // Flip a byte inside the second frame's payload.
        let second_payload_start = WAL_MAGIC.len() + FRAME_HEADER + 4 + FRAME_HEADER;
        data[second_payload_start] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();

        let s = scan(&path).unwrap();
        assert_eq!(s.frames.len(), 1);
        assert!(s.truncated_tail);
    }

    #[test]
    fn bad_magic_is_hard_error() {
        let dir = TestDir::new("wal-magic");
        let path = dir.path().join("test.wal");
        std::fs::write(&path, b"NOTAWAL!extra-bytes-here").unwrap();
        assert!(matches!(scan(&path), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn empty_payload_frames_are_legal() {
        let dir = TestDir::new("wal-empty-frame");
        let path = dir.path().join("test.wal");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(b"").unwrap();
        wal.append(b"x").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let s = scan(&path).unwrap();
        assert_eq!(s.frames.len(), 2);
        assert!(s.frames[0].is_empty());
    }
}
