//! Low-level encoding utilities: a fast non-cryptographic hasher, CRC32
//! integrity checksums, and LEB128 variable-length integers.
//!
//! The hasher is the FxHash algorithm used by rustc (public domain): very
//! fast for the small integer keys that dominate iTag's hot maps (tag ids,
//! resource ids). HashDoS resistance is irrelevant here — all keys are
//! internally generated.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::OnceLock;

/// Multiplicative constant from the FxHash algorithm.
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash hasher: `hash = (hash.rotl(5) ^ word) * SEED` per input word.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    // lint: allow(panic-path)
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[..8]);
            self.add_to_hash(u64::from_le_bytes(buf));
            bytes = &bytes[8..];
        }
        if !bytes.is_empty() {
            let mut buf = [0u8; 8];
            buf[..bytes.len()].copy_from_slice(bytes);
            self.add_to_hash(u64::from_le_bytes(buf));
            self.add_to_hash(bytes.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`]; the default map type across iTag.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

static CRC_TABLE: OnceLock<[u32; 256]> = OnceLock::new();

fn crc_table() -> &'static [u32; 256] {
    CRC_TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    })
}

/// Reads a little-endian `u32` from the front of `b`, or `None` when `b`
/// is too short. The file-format scanners use these instead of
/// slice-`try_into().unwrap()` so a short buffer is a recoverable
/// condition (torn tail, corrupt header) rather than a panic.
pub fn read_le_u32(b: &[u8]) -> Option<u32> {
    let arr: [u8; 4] = b.get(..4)?.try_into().ok()?;
    Some(u32::from_le_bytes(arr))
}

/// Little-endian `u64` counterpart of [`read_le_u32`].
pub fn read_le_u64(b: &[u8]) -> Option<u64> {
    let arr: [u8; 8] = b.get(..8)?.try_into().ok()?;
    Some(u64::from_le_bytes(arr))
}

/// CRC-32 (IEEE 802.3 polynomial) over `data`. Used to frame WAL records and
/// snapshot payloads so torn or bit-rotted writes are detected on recovery.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

/// Incremental CRC-32 over a byte stream; `update` in any chunking yields
/// the same digest as one-shot [`crc32`]. Lets the streaming snapshot
/// writer checksum while it writes instead of buffering the payload.
#[derive(Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    // lint: allow(panic-path)
    pub fn update(&mut self, data: &[u8]) {
        let table = crc_table();
        for &b in data {
            self.state = table[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// Appends `v` to `out` as an unsigned LEB128 varint (1–10 bytes).
pub fn write_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint from the front of `input`, returning the
/// value and the remaining slice.
pub fn read_uvarint(input: &[u8]) -> Option<(u64, &[u8])> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in input.iter().enumerate() {
        if shift >= 64 {
            return None; // overlong encoding
        }
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some((v, &input[i + 1..]));
        }
        shift += 7;
    }
    None // truncated
}

/// Zig-zag maps a signed integer onto an unsigned one so small-magnitude
/// negatives stay short in varint form.
#[inline]
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline]
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn incremental_crc32_matches_one_shot_for_any_chunking() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let expect = crc32(&data);
        for chunk in [1usize, 3, 7, 64, 999, 1000] {
            let mut c = Crc32::new();
            for part in data.chunks(chunk) {
                c.update(part);
            }
            assert_eq!(c.finish(), expect, "chunk size {chunk}");
        }
        assert_eq!(
            Crc32::new().finish(),
            0,
            "empty stream matches crc32(b\"\")"
        );
    }

    #[test]
    fn crc32_detects_single_bit_flip() {
        let data = b"the quick brown fox".to_vec();
        let base = crc32(&data);
        for bit in 0..data.len() * 8 {
            let mut copy = data.clone();
            copy[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&copy), base, "bit {bit} flip undetected");
        }
    }

    #[test]
    fn uvarint_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_uvarint(&mut buf, v);
            let (got, rest) = read_uvarint(&buf).unwrap();
            assert_eq!(got, v);
            assert!(rest.is_empty());
        }
    }

    #[test]
    fn uvarint_truncated_input_is_none() {
        let mut buf = Vec::new();
        write_uvarint(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            assert!(read_uvarint(&buf[..cut]).is_none(), "cut at {cut}");
        }
    }

    #[test]
    fn fxhash_is_deterministic_and_spreads() {
        let mut h1 = FxHasher::default();
        h1.write_u64(42);
        let mut h2 = FxHasher::default();
        h2.write_u64(42);
        assert_eq!(h1.finish(), h2.finish());

        let mut seen = FxHashSet::default();
        for i in 0..10_000u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000, "collisions on sequential u64 keys");
    }

    proptest! {
        #[test]
        fn uvarint_roundtrip(v in any::<u64>()) {
            let mut buf = Vec::new();
            write_uvarint(&mut buf, v);
            let (got, rest) = read_uvarint(&buf).unwrap();
            prop_assert_eq!(got, v);
            prop_assert!(rest.is_empty());
        }

        #[test]
        fn zigzag_roundtrip(v in any::<i64>()) {
            prop_assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }

        #[test]
        fn zigzag_small_magnitudes_are_short(v in -64i64..64) {
            let mut buf = Vec::new();
            write_uvarint(&mut buf, zigzag_encode(v));
            prop_assert_eq!(buf.len(), 1);
        }

        #[test]
        fn fxhash_bytes_matches_itself(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            let mut a = FxHasher::default();
            a.write(&data);
            let mut b = FxHasher::default();
            b.write(&data);
            prop_assert_eq!(a.finish(), b.finish());
        }
    }
}
