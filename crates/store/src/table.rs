//! Typed tables over the raw byte store: order-preserving key encoding,
//! entity CRUD, and secondary indexes.
//!
//! Keys are encoded so that byte order equals logical order (big-endian
//! integers), which makes range scans like "resources with fewest posts"
//! a single index scan — the exact access pattern the FP strategy needs.

use crate::error::{Result, StoreError};
use crate::txn::WriteBatch;
use crate::{serbin, Store, TableId};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::marker::PhantomData;
use std::sync::Arc;

/// Order-preserving binary key encoding.
///
/// Implementations must guarantee `a < b ⇔ encode(a) < encode(b)`
/// (lexicographic byte order). Fixed-width big-endian encodings satisfy
/// this; `String` keys do too but only as the **final** component of a
/// composite key (raw bytes are not self-delimiting).
pub trait KeyCodec: Sized {
    /// Appends the encoded key to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Decodes a key from exactly `bytes`.
    fn decode(bytes: &[u8]) -> Result<Self>;

    /// Convenience: encode into a fresh vector.
    fn encoded(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8);
        self.encode_into(&mut out);
        out
    }
}

macro_rules! impl_int_key {
    ($ty:ty) => {
        impl KeyCodec for $ty {
            fn encode_into(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_be_bytes());
            }

            fn decode(bytes: &[u8]) -> Result<Self> {
                let arr: [u8; std::mem::size_of::<$ty>()] = bytes.try_into().map_err(|_| {
                    StoreError::Codec(format!(
                        "key of {} bytes is not a {}",
                        bytes.len(),
                        stringify!($ty)
                    ))
                })?;
                Ok(<$ty>::from_be_bytes(arr))
            }
        }
    };
}

impl_int_key!(u16);
impl_int_key!(u32);
impl_int_key!(u64);

impl KeyCodec for String {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.as_bytes());
    }

    fn decode(bytes: &[u8]) -> Result<Self> {
        String::from_utf8(bytes.to_vec())
            .map_err(|e| StoreError::Codec(format!("key is not utf8: {e}")))
    }
}

/// Composite key of two fixed-width components. The first component must be
/// fixed-width for decoding to find the split point; we restrict to integer
/// firsts via the `FixedWidthKey` marker.
impl<A: KeyCodec + FixedWidthKey, B: KeyCodec> KeyCodec for (A, B) {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
        self.1.encode_into(out);
    }

    fn decode(bytes: &[u8]) -> Result<Self> {
        let w = A::WIDTH;
        if bytes.len() < w {
            return Err(StoreError::Codec("composite key too short".into()));
        }
        Ok((A::decode(&bytes[..w])?, B::decode(&bytes[w..])?))
    }
}

/// Marker for keys with a fixed encoded width (usable as non-final composite
/// components and as index prefixes).
pub trait FixedWidthKey {
    const WIDTH: usize;
}

impl FixedWidthKey for u16 {
    const WIDTH: usize = 2;
}
impl FixedWidthKey for u32 {
    const WIDTH: usize = 4;
}
impl FixedWidthKey for u64 {
    const WIDTH: usize = 8;
}
impl<A: FixedWidthKey, B: FixedWidthKey> FixedWidthKey for (A, B) {
    const WIDTH: usize = A::WIDTH + B::WIDTH;
}

/// A record type stored in its own table.
///
/// The `Clone + Send + Sync + 'static` bounds let decoded records live in
/// the store's shared entity cache as `Arc<E>` (see
/// [`crate::db::Store::cache_lookup`]); every record type is plain data,
/// so the bounds cost nothing.
pub trait Entity: Serialize + DeserializeOwned + Clone + Send + Sync + 'static {
    /// The table this entity lives in (statically assigned per subsystem).
    const TABLE: TableId;
    /// Human-readable name for diagnostics.
    const NAME: &'static str;
    /// Primary key type.
    type Key: KeyCodec + Ord + Clone;

    /// Extracts the primary key.
    fn primary_key(&self) -> Self::Key;
}

/// Typed view of one entity table.
pub struct TypedTable<E: Entity> {
    store: Arc<Store>,
    _marker: PhantomData<fn() -> E>,
}

impl<E: Entity> Clone for TypedTable<E> {
    fn clone(&self) -> Self {
        TypedTable {
            store: Arc::clone(&self.store),
            _marker: PhantomData,
        }
    }
}

impl<E: Entity> TypedTable<E> {
    /// Wraps `store`; no I/O happens until the first operation.
    pub fn new(store: Arc<Store>) -> Self {
        TypedTable {
            store,
            _marker: PhantomData,
        }
    }

    /// The underlying store handle.
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// Inserts or overwrites `entity`.
    pub fn upsert(&self, entity: &E) -> Result<()> {
        let mut batch = WriteBatch::with_capacity(1);
        self.stage_upsert(&mut batch, entity)?;
        self.store.commit(batch)
    }

    /// Inserts `entity`, failing with [`StoreError::Conflict`] if the key
    /// already exists.
    pub fn insert_new(&self, entity: &E) -> Result<()> {
        let key = entity.primary_key().encoded();
        if self.store.contains(E::TABLE, &key) {
            return Err(StoreError::Conflict(format!(
                "{} key {key:02x?} already exists",
                E::NAME
            )));
        }
        self.store.put(E::TABLE, key, serbin::to_bytes(entity)?)
    }

    /// Stages an upsert into an existing batch (for multi-table atomicity).
    pub fn stage_upsert(&self, batch: &mut WriteBatch, entity: &E) -> Result<()> {
        batch.put(
            E::TABLE,
            entity.primary_key().encoded(),
            serbin::to_bytes(entity)?,
        );
        Ok(())
    }

    /// Like [`TypedTable::stage_upsert`], but also hands the store a clone
    /// of the decoded entity so the commit writes it through into the
    /// entity cache — the next `get` of this key costs no decode. Use on
    /// records the hot path re-reads (resource rows, project rows); skip
    /// for write-once records (posts), where caching is pure overhead.
    pub fn stage_upsert_cached(&self, batch: &mut WriteBatch, entity: &E) -> Result<()> {
        if !self.store.entity_cache_enabled() {
            return self.stage_upsert(batch, entity);
        }
        batch.put_cached(
            E::TABLE,
            entity.primary_key().encoded(),
            serbin::to_bytes(entity)?,
            Arc::new(entity.clone()),
        );
        Ok(())
    }

    /// [`TypedTable::stage_upsert_cached`] taking ownership: the entity
    /// moves into the cache hint, so hot paths that already own the final
    /// record pay one encode and zero clones.
    pub fn stage_upsert_owned(&self, batch: &mut WriteBatch, entity: E) -> Result<()> {
        if !self.store.entity_cache_enabled() {
            return self.stage_upsert(batch, &entity);
        }
        batch.put_cached(
            E::TABLE,
            entity.primary_key().encoded(),
            serbin::to_bytes(&entity)?,
            Arc::new(entity),
        );
        Ok(())
    }

    /// Stages a delete into an existing batch.
    pub fn stage_delete(&self, batch: &mut WriteBatch, key: &E::Key) {
        batch.delete(E::TABLE, key.encoded());
    }

    /// Point lookup through the entity cache: a hit costs one clone of the
    /// cached record instead of a decode. With the cache disabled this is
    /// a plain decode — no `Arc`, no clone.
    pub fn get(&self, key: &E::Key) -> Result<Option<E>> {
        if !self.store.entity_cache_enabled() {
            return match self.store.get(E::TABLE, &key.encoded())? {
                Some(bytes) => Ok(Some(serbin::from_bytes(&bytes)?)),
                None => Ok(None),
            };
        }
        Ok(self.get_arc(key)?.map(|arc| (*arc).clone()))
    }

    /// Point lookup returning the shared cached record itself — the
    /// zero-copy variant of [`TypedTable::get`] for read-only call sites.
    pub fn get_arc(&self, key: &E::Key) -> Result<Option<Arc<E>>> {
        let enc = key.encoded();
        let Some(bytes) = self.store.get(E::TABLE, &enc)? else {
            return Ok(None);
        };
        if !self.store.entity_cache_enabled() {
            return Ok(Some(Arc::new(serbin::from_bytes(&bytes)?)));
        }
        if let Some(hit) = self.store.cache_lookup(E::TABLE, &enc, &bytes) {
            // A downcast failure would mean two entity types share a table
            // id; treat it as a miss rather than trusting the alias.
            if let Ok(arc) = hit.downcast::<E>() {
                return Ok(Some(arc));
            }
        }
        let decoded: Arc<E> = Arc::new(serbin::from_bytes(&bytes)?);
        self.store
            .cache_store(E::TABLE, &enc, bytes, decoded.clone());
        Ok(Some(decoded))
    }

    /// Read-modify-write: fetches `key`, applies `f`, and commits the new
    /// record (write-through) as one staged batch. The whole cycle runs
    /// under the store's RMW lock ([`crate::db::Store::rmw_guard`]), so
    /// concurrent `update` calls — on any table of this store — cannot
    /// lose each other's changes. Writers that commit the same key
    /// directly (outside `update`) are not excluded. Returns the updated
    /// record, or `None` if the key is absent.
    pub fn update<F: FnOnce(&mut E)>(&self, key: &E::Key, f: F) -> Result<Option<E>> {
        let _rmw = self.store.rmw_guard();
        let Some(mut entity) = self.get(key)? else {
            return Ok(None);
        };
        f(&mut entity);
        let mut batch = WriteBatch::with_capacity(1);
        self.stage_upsert_cached(&mut batch, &entity)?;
        self.store.commit(batch)?;
        Ok(Some(entity))
    }

    /// Point lookup that treats absence as an error.
    pub fn must_get(&self, key: &E::Key) -> Result<E> {
        self.get(key)?.ok_or_else(|| StoreError::NotFound {
            table: E::TABLE,
            key: key.encoded(),
        })
    }

    /// Deletes `key`; returns whether it existed.
    pub fn delete(&self, key: &E::Key) -> Result<bool> {
        let encoded = key.encoded();
        let existed = self.store.contains(E::TABLE, &encoded);
        if existed {
            self.store.delete(E::TABLE, encoded)?;
        }
        Ok(existed)
    }

    /// Every entity, in key order.
    pub fn scan_all(&self) -> Result<Vec<E>> {
        self.store
            .scan_all(E::TABLE)
            .into_iter()
            .map(|(_, v)| serbin::from_bytes(&v).map_err(Into::into))
            .collect()
    }

    /// Entities with keys in `[from, to)` (`None` = unbounded), key order.
    pub fn scan_range(&self, from: &E::Key, to: Option<&E::Key>) -> Result<Vec<E>> {
        let to_enc = to.map(|k| k.encoded());
        self.store
            .scan_range(E::TABLE, &from.encoded(), to_enc.as_deref())
            .into_iter()
            .map(|(_, v)| serbin::from_bytes(&v).map_err(Into::into))
            .collect()
    }

    /// Streams every entity through `f` in key order without materializing
    /// the table. `f` returns whether to keep going. The table's shards
    /// stay read-locked while streaming — decode-and-filter loops belong
    /// here; long computations should collect first.
    pub fn for_each<F: FnMut(E) -> bool>(&self, f: F) -> Result<()> {
        self.for_each_range_raw(&[], None, f)
    }

    /// [`TypedTable::for_each`] over keys in `[from, to)`.
    pub fn for_each_range<F: FnMut(E) -> bool>(
        &self,
        from: &E::Key,
        to: Option<&E::Key>,
        f: F,
    ) -> Result<()> {
        let to_enc = to.map(|k| k.encoded());
        self.for_each_range_raw(&from.encoded(), to_enc.as_deref(), f)
    }

    fn for_each_range_raw<F: FnMut(E) -> bool>(
        &self,
        from: &[u8],
        to: Option<&[u8]>,
        mut f: F,
    ) -> Result<()> {
        let mut decode_err = None;
        self.store
            .for_each_range(E::TABLE, from, to, |_, v| match serbin::from_bytes(v) {
                Ok(entity) => f(entity),
                Err(e) => {
                    decode_err = Some(e);
                    false
                }
            });
        match decode_err {
            Some(e) => Err(e.into()),
            None => Ok(()),
        }
    }

    /// Number of stored entities.
    pub fn count(&self) -> usize {
        self.store.count(E::TABLE)
    }
}

/// A secondary index mapping an extracted key to primary keys.
///
/// Index rows are `(secondary ‖ primary) → primary`; because the secondary
/// key is fixed-width, a prefix scan on the secondary key enumerates exactly
/// the matching primaries in `(secondary, primary)` order.
pub struct IndexDef<E: Entity, K: KeyCodec + FixedWidthKey> {
    /// Table holding the index rows.
    pub table: TableId,
    /// Extracts the indexed value from an entity.
    pub extract: fn(&E) -> K,
}

impl<E: Entity, K: KeyCodec + FixedWidthKey> IndexDef<E, K> {
    /// Stages the index maintenance for a transition `old → new` of the same
    /// primary key. Pass `old = None` for inserts, `new = None` for deletes.
    pub fn stage_update(&self, batch: &mut WriteBatch, old: Option<&E>, new: Option<&E>) {
        if let Some(o) = old {
            let pk = o.primary_key().encoded();
            batch.delete(self.table, Self::row_key(&(self.extract)(o), &pk));
        }
        if let Some(n) = new {
            let pk = n.primary_key().encoded();
            let row = Self::row_key(&(self.extract)(n), &pk);
            batch.put(self.table, row, pk);
        }
    }

    /// Stages the index row for a brand-new entity directly from its
    /// indexed value and encoded primary key — the insert half of
    /// [`IndexDef::stage_update`] without needing a built `E` (lets hot
    /// paths stage records from borrowed parts). Byte-compatible with
    /// `stage_update(None, Some(e))` by construction.
    pub fn stage_insert(&self, batch: &mut WriteBatch, key: &K, primary_key_encoded: &[u8]) {
        batch.put(
            self.table,
            Self::row_key(key, primary_key_encoded),
            primary_key_encoded.to_vec(),
        );
    }

    /// The delete half of [`IndexDef::stage_update`] from the indexed value
    /// and encoded primary key alone.
    pub fn stage_remove(&self, batch: &mut WriteBatch, key: &K, primary_key_encoded: &[u8]) {
        batch.delete(self.table, Self::row_key(key, primary_key_encoded));
    }

    /// `secondary ‖ primary` row key, allocated at exact size (the
    /// secondary width is statically known).
    fn row_key(key: &K, primary_key_encoded: &[u8]) -> Vec<u8> {
        let mut row = Vec::with_capacity(K::WIDTH + primary_key_encoded.len());
        key.encode_into(&mut row);
        row.extend_from_slice(primary_key_encoded);
        row
    }

    /// Primary keys of entities whose indexed value equals `key`.
    pub fn lookup(&self, store: &Store, key: &K) -> Result<Vec<E::Key>> {
        store
            .scan_prefix(self.table, &key.encoded())
            .into_iter()
            .map(|(_, pk)| E::Key::decode(&pk))
            .collect()
    }

    /// Primary keys for indexed values in `[from, to)`, ascending by
    /// `(indexed value, primary key)` — e.g. "fewest posts first".
    pub fn range(&self, store: &Store, from: &K, to: Option<&K>) -> Result<Vec<E::Key>> {
        let to_enc = to.map(|k| k.encoded());
        store
            .scan_range(self.table, &from.encoded(), to_enc.as_deref())
            .into_iter()
            .map(|(_, pk)| E::Key::decode(&pk))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Widget {
        id: u32,
        posts: u32,
        name: String,
    }

    impl Entity for Widget {
        const TABLE: TableId = TableId(10);
        const NAME: &'static str = "widget";
        type Key = u32;

        fn primary_key(&self) -> u32 {
            self.id
        }
    }

    const POSTS_IDX: IndexDef<Widget, u32> = IndexDef {
        table: TableId(11),
        extract: |w| w.posts,
    };

    fn table() -> TypedTable<Widget> {
        TypedTable::new(Arc::new(Store::in_memory()))
    }

    #[test]
    fn key_encoding_preserves_order() {
        let mut keys: Vec<u32> = vec![0, 1, 255, 256, 65535, 65536, u32::MAX];
        keys.sort_unstable();
        let encoded: Vec<Vec<u8>> = keys.iter().map(|k| k.encoded()).collect();
        let mut sorted = encoded.clone();
        sorted.sort();
        assert_eq!(encoded, sorted);
    }

    #[test]
    fn composite_key_roundtrip_and_order() {
        let k: (u32, u64) = (7, 9);
        let bytes = k.encoded();
        assert_eq!(<(u32, u64)>::decode(&bytes).unwrap(), k);

        let a = (1u32, u64::MAX).encoded();
        let b = (2u32, 0u64).encoded();
        assert!(a < b, "first component dominates");
    }

    #[test]
    fn crud_roundtrip() {
        let t = table();
        let w = Widget {
            id: 1,
            posts: 0,
            name: "r1".into(),
        };
        t.upsert(&w).unwrap();
        assert_eq!(t.get(&1).unwrap().unwrap(), w);
        assert_eq!(t.count(), 1);
        assert!(t.delete(&1).unwrap());
        assert!(!t.delete(&1).unwrap());
        assert!(t.get(&1).unwrap().is_none());
    }

    #[test]
    fn insert_new_conflicts_on_duplicate() {
        let t = table();
        let w = Widget {
            id: 5,
            posts: 0,
            name: "x".into(),
        };
        t.insert_new(&w).unwrap();
        assert!(matches!(t.insert_new(&w), Err(StoreError::Conflict(_))));
    }

    #[test]
    fn must_get_reports_not_found() {
        let t = table();
        assert!(matches!(t.must_get(&99), Err(StoreError::NotFound { .. })));
    }

    #[test]
    fn scan_range_in_key_order() {
        let t = table();
        for id in [30u32, 10, 20, 40] {
            t.upsert(&Widget {
                id,
                posts: id,
                name: String::new(),
            })
            .unwrap();
        }
        let hits = t.scan_range(&10, Some(&40)).unwrap();
        let ids: Vec<u32> = hits.iter().map(|w| w.id).collect();
        assert_eq!(ids, vec![10, 20, 30]);
        assert_eq!(t.scan_all().unwrap().len(), 4);
    }

    #[test]
    fn secondary_index_tracks_updates() {
        let t = table();
        let store = Arc::clone(t.store());
        let mk = |id: u32, posts: u32| Widget {
            id,
            posts,
            name: String::new(),
        };

        // Insert three widgets with post counts 5, 0, 5.
        for (id, posts) in [(1, 5), (2, 0), (3, 5)] {
            let w = mk(id, posts);
            let mut b = WriteBatch::new();
            t.stage_upsert(&mut b, &w).unwrap();
            POSTS_IDX.stage_update(&mut b, None, Some(&w));
            store.commit(b).unwrap();
        }

        assert_eq!(POSTS_IDX.lookup(&store, &5).unwrap(), vec![1, 3]);
        assert_eq!(POSTS_IDX.lookup(&store, &0).unwrap(), vec![2]);

        // Widget 1 gains a post: 5 → 6.
        let old = mk(1, 5);
        let new = mk(1, 6);
        let mut b = WriteBatch::new();
        t.stage_upsert(&mut b, &new).unwrap();
        POSTS_IDX.stage_update(&mut b, Some(&old), Some(&new));
        store.commit(b).unwrap();

        assert_eq!(POSTS_IDX.lookup(&store, &5).unwrap(), vec![3]);
        assert_eq!(POSTS_IDX.lookup(&store, &6).unwrap(), vec![1]);

        // Range scan enumerates "fewest posts first".
        let asc = POSTS_IDX.range(&store, &0, None).unwrap();
        assert_eq!(asc, vec![2, 3, 1]);

        // Delete widget 3 entirely.
        let w3 = mk(3, 5);
        let mut b = WriteBatch::new();
        t.stage_delete(&mut b, &3);
        POSTS_IDX.stage_update(&mut b, Some(&w3), None);
        store.commit(b).unwrap();
        assert!(POSTS_IDX.lookup(&store, &5).unwrap().is_empty());
    }

    #[test]
    fn string_keys_roundtrip() {
        #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
        struct Named {
            key: String,
            v: u8,
        }
        impl Entity for Named {
            const TABLE: TableId = TableId(12);
            const NAME: &'static str = "named";
            type Key = String;
            fn primary_key(&self) -> String {
                self.key.clone()
            }
        }
        let t: TypedTable<Named> = TypedTable::new(Arc::new(Store::in_memory()));
        t.upsert(&Named {
            key: "alpha".into(),
            v: 1,
        })
        .unwrap();
        assert_eq!(t.get(&"alpha".to_string()).unwrap().unwrap().v, 1);
    }
}
