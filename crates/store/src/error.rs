//! Error type shared by every layer of the storage engine.

use crate::TableId;

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, StoreError>;

/// Errors surfaced by the storage engine.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A WAL frame or snapshot failed its integrity check. Recovery treats a
    /// corrupt *tail* frame as a torn write and truncates; corruption in the
    /// middle of the log is reported through this variant.
    Corrupt(String),
    /// Encoding or decoding of a record failed.
    Codec(String),
    /// A durable operation was attempted on an in-memory store.
    NotDurable,
    /// The requested key does not exist.
    NotFound { table: TableId, key: Vec<u8> },
    /// A uniqueness constraint on a typed table or index was violated.
    Conflict(String),
    /// The store poisoned itself after a group-commit failure: the WAL
    /// and memtables can no longer be trusted to agree, so every commit
    /// fails with this until the store is reopened (which re-runs
    /// recovery from the durable prefix). Distinct from [`Corrupt`]:
    /// nothing on disk is corrupt — the durable prefix is intact and a
    /// reopen heals the store.
    ///
    /// [`Corrupt`]: StoreError::Corrupt
    Broken(String),
}

impl StoreError {
    /// Whether retrying the failed operation against a *fresh* store
    /// handle can succeed. `Io` (a transient filesystem failure, e.g.
    /// `ENOSPC` that clears) and `Broken` (healed by reopening) are
    /// retryable; corruption, codec, and constraint failures are not —
    /// the same inputs will fail the same way. Serving layers use this
    /// to decide between degrading (stop writes, keep reads) and
    /// failing hard.
    pub fn is_retryable(&self) -> bool {
        matches!(self, StoreError::Io(_) | StoreError::Broken(_))
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::Corrupt(m) => write!(f, "corruption detected: {m}"),
            StoreError::Codec(m) => write!(f, "codec error: {m}"),
            StoreError::NotDurable => write!(f, "operation requires a durable (on-disk) store"),
            StoreError::NotFound { table, key } => {
                write!(f, "key {key:02x?} not found in {table}")
            }
            StoreError::Conflict(m) => write!(f, "constraint violation: {m}"),
            StoreError::Broken(m) => write!(f, "store broken (reopen to recover): {m}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<crate::serbin::CodecError> for StoreError {
    fn from(e: crate::serbin::CodecError) -> Self {
        StoreError::Codec(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = StoreError::NotFound {
            table: TableId(7),
            key: vec![0xAB],
        };
        let s = e.to_string();
        assert!(s.contains("table#7"), "{s}");
        assert!(s.contains("ab") || s.contains("AB"), "{s}");
    }

    #[test]
    fn io_error_source_is_preserved() {
        let e: StoreError = std::io::Error::other("boom").into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn corrupt_display() {
        let e = StoreError::Corrupt("bad crc".into());
        assert!(e.to_string().contains("bad crc"));
    }

    #[test]
    fn retryable_classification() {
        assert!(StoreError::Io(std::io::Error::other("enospc")).is_retryable());
        assert!(StoreError::Broken("group commit failed".into()).is_retryable());
        assert!(!StoreError::Corrupt("bad crc".into()).is_retryable());
        assert!(!StoreError::Codec("bad tag".into()).is_retryable());
        assert!(!StoreError::Conflict("dup".into()).is_retryable());
        assert!(!StoreError::NotDurable.is_retryable());
    }
}
