//! # itag-store — embedded storage engine
//!
//! The iTag paper runs its managers on top of a MySQL database. This crate is
//! the reproduction's substitute substrate: a small embedded storage engine
//! with the durability and access patterns the iTag managers need:
//!
//! * a **write-ahead log** with CRC-framed records and torn-tail recovery
//!   ([`wal`]),
//! * **snapshots** with atomic rename-install and WAL truncation
//!   ([`snapshot`]),
//! * logical **tables** of ordered key/value pairs with prefix and range
//!   scans ([`db::Store`]),
//! * a typed layer with order-preserving key encoding and secondary indexes
//!   ([`table`]),
//! * atomic multi-table **write batches** ([`txn`]),
//! * a compact serde binary format used for records, snapshots and exports
//!   ([`serbin`]).
//!
//! The engine is single-process and multi-reader/multi-writer: the
//! memtable set is hash-partitioned into shards (each behind its own
//! `RwLock`) and concurrent commits are funneled through a group-commit
//! WAL — one leader appends every queued frame with a single flush and
//! applies the group in LSN order (see [`db`] module docs).
//!
//! ```
//! use itag_store::db::{Store, StoreOptions};
//! use itag_store::TableId;
//!
//! let store = Store::in_memory();
//! const T: TableId = TableId(1);
//! store.put(T, b"k".to_vec(), b"v".to_vec()).unwrap();
//! assert_eq!(store.get(T, b"k").unwrap().as_deref(), Some(&b"v"[..]));
//! ```

pub mod codec;
pub mod db;
pub mod envknob;
pub mod error;
pub mod faults;
pub mod mvcc;
pub mod serbin;
pub mod snapshot;
pub mod table;
pub mod testutil;
pub mod txn;
pub mod wal;

pub use db::{Durability, Store, StoreOptions, StoreStats, SyncPolicy, DEFAULT_SHARDS};
pub use error::{Result, StoreError};
pub use mvcc::{SnapshotTable, StoreSnapshot};
pub use table::{Entity, KeyCodec, TypedTable};
pub use txn::{CachedEntity, WriteBatch};

/// Identifier of a logical table inside a [`Store`].
///
/// Table ids are assigned statically by each subsystem (see
/// `itag_core::tables`) so that snapshots remain readable across runs.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct TableId(pub u16);

impl std::fmt::Display for TableId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "table#{}", self.0)
    }
}
