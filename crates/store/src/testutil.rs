//! Test support: self-cleaning temporary directories.
//!
//! The sanctioned dependency set has no `tempfile`, so the engine carries a
//! minimal equivalent used by its own tests and by downstream crates'
//! durability tests.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A unique directory under the system temp dir, removed on drop.
pub struct TestDir {
    path: PathBuf,
}

impl TestDir {
    /// Creates `"$TMPDIR/itag-<label>-<pid>-<seq>"`.
    pub fn new(label: &str) -> Self {
        let seq = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("itag-{label}-{}-{}", std::process::id(), seq));
        std::fs::create_dir_all(&path).expect("create test dir");
        TestDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        // Best effort; leaking a temp dir must not fail a test run.
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirs_are_unique_and_cleaned() {
        let p1;
        {
            let d1 = TestDir::new("unique");
            let d2 = TestDir::new("unique");
            assert_ne!(d1.path(), d2.path());
            assert!(d1.path().is_dir());
            p1 = d1.path().to_path_buf();
        }
        assert!(!p1.exists(), "dir should be removed on drop");
    }
}
