//! Atomic multi-table write batches.
//!
//! A [`WriteBatch`] collects puts and deletes across any number of logical
//! tables; [`crate::Store::commit`] appends the whole batch as **one** WAL
//! frame and applies it to the memtables under a single writer lock, so a
//! batch is all-or-nothing both on disk and in memory. The iTag managers use
//! this to keep entity tables and their secondary indexes mutually
//! consistent.

use crate::TableId;
use serde::{Deserialize, Serialize};

/// A single mutation inside a batch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Insert or overwrite `key` in `table`.
    Put {
        table: TableId,
        key: Vec<u8>,
        value: Vec<u8>,
    },
    /// Remove `key` from `table` (no-op if absent).
    Delete { table: TableId, key: Vec<u8> },
}

/// The WAL frame payload: a batch plus its log sequence number.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct WalEntry {
    pub lsn: u64,
    pub ops: Vec<Op>,
}

/// An ordered set of mutations committed atomically.
#[derive(Debug, Default, Clone)]
pub struct WriteBatch {
    pub(crate) ops: Vec<Op>,
}

impl WriteBatch {
    /// An empty batch.
    pub fn new() -> Self {
        WriteBatch::default()
    }

    /// Pre-sizes the op list when the caller knows the batch size.
    pub fn with_capacity(n: usize) -> Self {
        WriteBatch {
            ops: Vec::with_capacity(n),
        }
    }

    /// Stages an insert/overwrite.
    pub fn put(&mut self, table: TableId, key: Vec<u8>, value: Vec<u8>) -> &mut Self {
        self.ops.push(Op::Put { table, key, value });
        self
    }

    /// Stages a delete.
    pub fn delete(&mut self, table: TableId, key: Vec<u8>) -> &mut Self {
        self.ops.push(Op::Delete { table, key });
        self
    }

    /// Number of staged operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Drops all staged operations, keeping the allocation.
    pub fn clear(&mut self) {
        self.ops.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_builder_collects_in_order() {
        let mut b = WriteBatch::new();
        b.put(TableId(1), vec![1], vec![10])
            .delete(TableId(2), vec![2])
            .put(TableId(1), vec![3], vec![30]);
        assert_eq!(b.len(), 3);
        assert!(matches!(b.ops[1], Op::Delete { .. }));
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    fn wal_entry_roundtrips_through_serbin() {
        let entry = WalEntry {
            lsn: 7,
            ops: vec![
                Op::Put {
                    table: TableId(3),
                    key: vec![0, 1],
                    value: vec![2, 3, 4],
                },
                Op::Delete {
                    table: TableId(3),
                    key: vec![9],
                },
            ],
        };
        let bytes = crate::serbin::to_bytes(&entry).unwrap();
        let back: WalEntry = crate::serbin::from_bytes(&bytes).unwrap();
        assert_eq!(back, entry);
    }
}
