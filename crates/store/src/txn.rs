//! Atomic multi-table write batches.
//!
//! A [`WriteBatch`] collects puts and deletes across any number of logical
//! tables; [`crate::Store::commit`] appends the whole batch as **one** WAL
//! frame and applies it to the memtables under a single writer lock, so a
//! batch is all-or-nothing both on disk and in memory. The iTag managers use
//! this to keep entity tables and their secondary indexes mutually
//! consistent.

use crate::TableId;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::sync::Arc;

/// A type-erased decoded entity, as stored in the entity cache and carried
/// by write-through hints (see [`WriteBatch::put_cached`]).
pub type CachedEntity = Arc<dyn Any + Send + Sync>;

/// A single mutation inside a batch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Insert or overwrite `key` in `table`.
    Put {
        table: TableId,
        key: Vec<u8>,
        value: Vec<u8>,
    },
    /// Remove `key` from `table` (no-op if absent).
    Delete { table: TableId, key: Vec<u8> },
}

/// The WAL frame payload: a batch plus its log sequence number.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct WalEntry {
    pub lsn: u64,
    pub ops: Vec<Op>,
}

/// An ordered set of mutations committed atomically.
///
/// Hints are a side channel next to the ops: `(op index, decoded entity)`
/// pairs that let the store install the already-decoded record into its
/// entity cache when the batch is applied. They are never serialized (the
/// WAL carries only the ops; the cache is rebuilt on demand after
/// recovery) and have no effect on the committed bytes.
#[derive(Default, Clone)]
pub struct WriteBatch {
    pub(crate) ops: Vec<Op>,
    pub(crate) hints: Vec<(u32, CachedEntity)>,
}

impl std::fmt::Debug for WriteBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriteBatch")
            .field("ops", &self.ops)
            .field("hints", &self.hints.len())
            .finish()
    }
}

impl WriteBatch {
    /// An empty batch.
    pub fn new() -> Self {
        WriteBatch::default()
    }

    /// Pre-sizes the op list when the caller knows the batch size.
    pub fn with_capacity(n: usize) -> Self {
        WriteBatch {
            ops: Vec::with_capacity(n),
            hints: Vec::new(),
        }
    }

    /// Stages an insert/overwrite.
    pub fn put(&mut self, table: TableId, key: Vec<u8>, value: Vec<u8>) -> &mut Self {
        self.ops.push(Op::Put { table, key, value });
        self
    }

    /// Stages an insert/overwrite together with its decoded form, which the
    /// store writes through into its entity cache when the batch commits.
    /// `decoded` must be the value `value` deserializes to — the typed
    /// layer upholds this; raw callers are on their own.
    pub fn put_cached(
        &mut self,
        table: TableId,
        key: Vec<u8>,
        value: Vec<u8>,
        decoded: CachedEntity,
    ) -> &mut Self {
        self.hints.push((self.ops.len() as u32, decoded));
        self.put(table, key, value)
    }

    /// Stages a delete.
    pub fn delete(&mut self, table: TableId, key: Vec<u8>) -> &mut Self {
        self.ops.push(Op::Delete { table, key });
        self
    }

    /// Number of staged operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Drops all staged operations, keeping the allocation.
    pub fn clear(&mut self) {
        self.ops.clear();
        self.hints.clear();
    }

    /// Appends every op of `other` after this batch's ops, preserving
    /// order. Cache hints ride along with their op (indexes are shifted
    /// past the existing tail), so a merged batch writes through exactly
    /// like its parts would have. Used by the engine's cross-project
    /// group commit to fold several projects' merge frames into one
    /// WAL frame + fsync.
    pub fn append(&mut self, other: WriteBatch) {
        let base = self.ops.len() as u32;
        self.hints
            .extend(other.hints.into_iter().map(|(i, d)| (base + i, d)));
        self.ops.extend(other.ops);
    }

    /// Rough payload size of the staged ops in bytes (keys + values; the
    /// serialization framing adds a few varint bytes per op). Drives the
    /// byte budget of the engine's cross-project commit batching.
    pub fn ops_bytes(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                Op::Put { key, value, .. } => key.len() + value.len(),
                Op::Delete { key, .. } => key.len(),
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_builder_collects_in_order() {
        let mut b = WriteBatch::new();
        b.put(TableId(1), vec![1], vec![10])
            .delete(TableId(2), vec![2])
            .put(TableId(1), vec![3], vec![30]);
        assert_eq!(b.len(), 3);
        assert!(matches!(b.ops[1], Op::Delete { .. }));
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    fn append_shifts_hint_indexes_past_the_tail() {
        let decoded: CachedEntity = Arc::new(42u32);
        let mut a = WriteBatch::new();
        a.put(TableId(1), vec![1], vec![10]);
        let mut b = WriteBatch::new();
        b.delete(TableId(2), vec![2]);
        b.put_cached(TableId(1), vec![3], vec![30], Arc::clone(&decoded));
        a.append(b);
        assert_eq!(a.len(), 3);
        assert!(matches!(a.ops[1], Op::Delete { .. }));
        assert_eq!(a.hints.len(), 1);
        // The hinted put was op 1 of `b`; after appending past one
        // existing op it must point at op 2.
        assert_eq!(a.hints[0].0, 2);
        assert_eq!(a.ops_bytes(), 1 + 1 + 1 + (1 + 1));
    }

    #[test]
    fn wal_entry_roundtrips_through_serbin() {
        let entry = WalEntry {
            lsn: 7,
            ops: vec![
                Op::Put {
                    table: TableId(3),
                    key: vec![0, 1],
                    value: vec![2, 3, 4],
                },
                Op::Delete {
                    table: TableId(3),
                    key: vec![9],
                },
            ],
        };
        let bytes = crate::serbin::to_bytes(&entry).unwrap();
        let back: WalEntry = crate::serbin::from_bytes(&bytes).unwrap();
        assert_eq!(back, entry);
    }
}
