//! The [`Store`]: ordered key/value tables + WAL + snapshots.
//!
//! Concurrency model: multi-reader / single-writer behind a
//! `parking_lot::RwLock`, matching how the iTag engine uses storage (one
//! allocation loop writes; monitoring endpoints read). Reads return
//! [`bytes::Bytes`] so monitors copy nothing.

use crate::error::{Result, StoreError};
use crate::txn::{Op, WalEntry, WriteBatch};
use crate::{serbin, snapshot, wal, TableId};
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::ops::Bound;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// How hard the store tries to make each commit durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// Pure in-memory operation; no files at all. Used by simulations and
    /// benches where the dataset is regenerated per run.
    InMemory,
    /// WAL appends are flushed to the OS per commit but not fsynced; a
    /// process crash loses nothing, a power failure may lose the tail.
    Buffered,
    /// WAL appends are fsynced per commit.
    Sync,
}

/// Tuning knobs for [`Store::open`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    pub durability: Durability,
    /// Auto-checkpoint after this many committed batches (0 = manual only).
    pub checkpoint_every: u64,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            durability: Durability::Buffered,
            checkpoint_every: 0,
        }
    }
}

/// Monotonic operation counters (cheap, lock-free reads).
#[derive(Debug, Default)]
struct Counters {
    gets: AtomicU64,
    scans: AtomicU64,
    commits: AtomicU64,
    ops_applied: AtomicU64,
    checkpoints: AtomicU64,
}

/// A point-in-time view of store activity and size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreStats {
    pub gets: u64,
    pub scans: u64,
    pub commits: u64,
    pub ops_applied: u64,
    pub checkpoints: u64,
    pub tables: usize,
    pub keys: usize,
    /// Entries replayed from the WAL during the last open.
    pub recovered_entries: u64,
    /// True if the last open had to drop a torn WAL tail.
    pub recovered_torn_tail: bool,
}

struct Inner {
    tables: BTreeMap<TableId, BTreeMap<Vec<u8>, Bytes>>,
    wal: Option<wal::Wal>,
    next_lsn: u64,
    dir: Option<PathBuf>,
    opts: StoreOptions,
    commits_since_checkpoint: u64,
    recovered_entries: u64,
    recovered_torn_tail: bool,
}

/// The storage engine. See module docs.
pub struct Store {
    inner: RwLock<Inner>,
    counters: Counters,
}

fn wal_path(dir: &Path) -> PathBuf {
    dir.join("db.wal")
}

fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join("db.snp")
}

impl Store {
    /// An ephemeral store with no durability (no files are touched).
    pub fn in_memory() -> Self {
        Store {
            inner: RwLock::new(Inner {
                tables: BTreeMap::new(),
                wal: None,
                next_lsn: 1,
                dir: None,
                opts: StoreOptions {
                    durability: Durability::InMemory,
                    checkpoint_every: 0,
                },
                commits_since_checkpoint: 0,
                recovered_entries: 0,
                recovered_torn_tail: false,
            }),
            counters: Counters::default(),
        }
    }

    /// Opens (or creates) a durable store in `dir`, running recovery:
    /// load the snapshot if present, then replay WAL entries past it.
    pub fn open(dir: &Path, opts: StoreOptions) -> Result<Self> {
        if opts.durability == Durability::InMemory {
            return Ok(Store::in_memory());
        }
        std::fs::create_dir_all(dir)?;

        let mut tables: BTreeMap<TableId, BTreeMap<Vec<u8>, Bytes>> = BTreeMap::new();
        let mut last_lsn = 0u64;
        if let Some(snap) = snapshot::read(&snapshot_path(dir))? {
            last_lsn = snap.last_lsn;
            for dump in snap.tables {
                let table = tables.entry(dump.table).or_default();
                for (k, v) in dump.entries {
                    table.insert(k, Bytes::from(v));
                }
            }
        }

        let scan = wal::scan(&wal_path(dir))?;
        let mut recovered = 0u64;
        for frame in &scan.frames {
            let entry: WalEntry = serbin::from_bytes(frame)
                .map_err(|e| StoreError::Corrupt(format!("undecodable WAL entry: {e}")))?;
            if entry.lsn <= last_lsn {
                continue; // already folded into the snapshot
            }
            last_lsn = entry.lsn;
            apply_ops(&mut tables, &entry.ops);
            recovered += 1;
        }

        let wal = wal::Wal::open_for_append(&wal_path(dir), scan.valid_len).or_else(|_| {
            // No WAL yet (fresh dir): create one.
            wal::Wal::create(&wal_path(dir))
        })?;

        Ok(Store {
            inner: RwLock::new(Inner {
                tables,
                wal: Some(wal),
                next_lsn: last_lsn + 1,
                dir: Some(dir.to_path_buf()),
                opts,
                commits_since_checkpoint: 0,
                recovered_entries: recovered,
                recovered_torn_tail: scan.truncated_tail,
            }),
            counters: Counters::default(),
        })
    }

    /// Commits a batch atomically: one WAL frame, then apply to memtables.
    pub fn commit(&self, batch: WriteBatch) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let mut inner = self.inner.write();
        let lsn = inner.next_lsn;
        inner.next_lsn += 1;
        let entry = WalEntry {
            lsn,
            ops: batch.ops,
        };

        if inner.wal.is_some() {
            let payload = serbin::to_bytes(&entry)?;
            let durability = inner.opts.durability;
            let w = inner.wal.as_mut().expect("checked above");
            w.append(&payload)?;
            match durability {
                Durability::Sync => w.sync()?,
                Durability::Buffered => w.flush()?,
                Durability::InMemory => unreachable!("in-memory store has no WAL"),
            }
        }

        let applied = entry.ops.len() as u64;
        apply_ops(&mut inner.tables, &entry.ops);
        self.counters.commits.fetch_add(1, Ordering::Relaxed);
        self.counters
            .ops_applied
            .fetch_add(applied, Ordering::Relaxed);

        inner.commits_since_checkpoint += 1;
        let auto = inner.opts.checkpoint_every;
        if auto > 0 && inner.commits_since_checkpoint >= auto && inner.wal.is_some() {
            self.checkpoint_locked(&mut inner)?;
        }
        Ok(())
    }

    /// Single-key put (a one-op batch).
    pub fn put(&self, table: TableId, key: Vec<u8>, value: Vec<u8>) -> Result<()> {
        let mut b = WriteBatch::with_capacity(1);
        b.put(table, key, value);
        self.commit(b)
    }

    /// Single-key delete (a one-op batch).
    pub fn delete(&self, table: TableId, key: Vec<u8>) -> Result<()> {
        let mut b = WriteBatch::with_capacity(1);
        b.delete(table, key);
        self.commit(b)
    }

    /// Point lookup. The returned [`Bytes`] is a zero-copy handle.
    pub fn get(&self, table: TableId, key: &[u8]) -> Result<Option<Bytes>> {
        self.counters.gets.fetch_add(1, Ordering::Relaxed);
        let inner = self.inner.read();
        Ok(inner.tables.get(&table).and_then(|t| t.get(key)).cloned())
    }

    /// True if `key` exists in `table`.
    pub fn contains(&self, table: TableId, key: &[u8]) -> bool {
        let inner = self.inner.read();
        inner
            .tables
            .get(&table)
            .map(|t| t.contains_key(key))
            .unwrap_or(false)
    }

    /// All pairs whose key starts with `prefix`, in key order.
    pub fn scan_prefix(&self, table: TableId, prefix: &[u8]) -> Vec<(Vec<u8>, Bytes)> {
        self.counters.scans.fetch_add(1, Ordering::Relaxed);
        let inner = self.inner.read();
        let Some(t) = inner.tables.get(&table) else {
            return Vec::new();
        };
        t.range::<[u8], _>((Bound::Included(prefix), Bound::Unbounded))
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Pairs in `[from, to)` (`to = None` means unbounded), in key order.
    pub fn scan_range(
        &self,
        table: TableId,
        from: &[u8],
        to: Option<&[u8]>,
    ) -> Vec<(Vec<u8>, Bytes)> {
        self.counters.scans.fetch_add(1, Ordering::Relaxed);
        let inner = self.inner.read();
        let Some(t) = inner.tables.get(&table) else {
            return Vec::new();
        };
        let upper = match to {
            Some(end) => Bound::Excluded(end),
            None => Bound::Unbounded,
        };
        t.range::<[u8], _>((Bound::Included(from), upper))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Every pair in `table`, in key order.
    pub fn scan_all(&self, table: TableId) -> Vec<(Vec<u8>, Bytes)> {
        self.scan_range(table, &[], None)
    }

    /// Number of keys in `table`.
    pub fn count(&self, table: TableId) -> usize {
        let inner = self.inner.read();
        inner.tables.get(&table).map(|t| t.len()).unwrap_or(0)
    }

    /// The largest key in `table` (used to resume id counters on reopen).
    pub fn last_key(&self, table: TableId) -> Option<Vec<u8>> {
        let inner = self.inner.read();
        inner
            .tables
            .get(&table)
            .and_then(|t| t.keys().next_back().cloned())
    }

    /// Writes a snapshot of every table and starts a fresh WAL.
    pub fn checkpoint(&self) -> Result<()> {
        let mut inner = self.inner.write();
        if inner.wal.is_none() {
            return Err(StoreError::NotDurable);
        }
        self.checkpoint_locked(&mut inner)
    }

    fn checkpoint_locked(&self, inner: &mut Inner) -> Result<()> {
        let dir = inner.dir.clone().ok_or(StoreError::NotDurable)?;
        let snap = snapshot::Snapshot {
            last_lsn: inner.next_lsn - 1,
            tables: inner
                .tables
                .iter()
                .map(|(id, t)| snapshot::TableDump {
                    table: *id,
                    entries: t.iter().map(|(k, v)| (k.clone(), v.to_vec())).collect(),
                })
                .collect(),
        };
        // Make sure every WAL frame covered by the snapshot is on disk
        // before the snapshot replaces them.
        if let Some(w) = inner.wal.as_mut() {
            w.sync()?;
        }
        snapshot::write(&snapshot_path(&dir), &snap)?;
        inner.wal = Some(wal::Wal::create(&wal_path(&dir))?);
        inner.commits_since_checkpoint = 0;
        self.counters.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Flushes and fsyncs the WAL regardless of the durability level.
    pub fn sync(&self) -> Result<()> {
        let mut inner = self.inner.write();
        if let Some(w) = inner.wal.as_mut() {
            w.sync()?;
        }
        Ok(())
    }

    /// Activity and size counters.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.read();
        StoreStats {
            gets: self.counters.gets.load(Ordering::Relaxed),
            scans: self.counters.scans.load(Ordering::Relaxed),
            commits: self.counters.commits.load(Ordering::Relaxed),
            ops_applied: self.counters.ops_applied.load(Ordering::Relaxed),
            checkpoints: self.counters.checkpoints.load(Ordering::Relaxed),
            tables: inner.tables.len(),
            keys: inner.tables.values().map(|t| t.len()).sum(),
            recovered_entries: inner.recovered_entries,
            recovered_torn_tail: inner.recovered_torn_tail,
        }
    }

    /// True when the store persists to disk.
    pub fn is_durable(&self) -> bool {
        self.inner.read().wal.is_some()
    }
}

fn apply_ops(tables: &mut BTreeMap<TableId, BTreeMap<Vec<u8>, Bytes>>, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Put { table, key, value } => {
                tables
                    .entry(*table)
                    .or_default()
                    .insert(key.clone(), Bytes::from(value.clone()));
            }
            Op::Delete { table, key } => {
                if let Some(t) = tables.get_mut(table) {
                    t.remove(key);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TestDir;

    const T1: TableId = TableId(1);
    const T2: TableId = TableId(2);

    #[test]
    fn in_memory_crud() {
        let s = Store::in_memory();
        s.put(T1, b"a".to_vec(), b"1".to_vec()).unwrap();
        s.put(T1, b"b".to_vec(), b"2".to_vec()).unwrap();
        assert_eq!(s.get(T1, b"a").unwrap().unwrap().as_ref(), b"1");
        assert!(s.get(T2, b"a").unwrap().is_none());
        s.put(T1, b"a".to_vec(), b"9".to_vec()).unwrap();
        assert_eq!(s.get(T1, b"a").unwrap().unwrap().as_ref(), b"9");
        s.delete(T1, b"a".to_vec()).unwrap();
        assert!(s.get(T1, b"a").unwrap().is_none());
        assert_eq!(s.count(T1), 1);
    }

    #[test]
    fn scans_are_ordered_and_bounded() {
        let s = Store::in_memory();
        for i in [5u8, 1, 9, 3, 7] {
            s.put(T1, vec![i], vec![i * 10]).unwrap();
        }
        let all = s.scan_all(T1);
        let keys: Vec<u8> = all.iter().map(|(k, _)| k[0]).collect();
        assert_eq!(keys, vec![1, 3, 5, 7, 9]);

        let mid = s.scan_range(T1, &[3], Some(&[8]));
        let keys: Vec<u8> = mid.iter().map(|(k, _)| k[0]).collect();
        assert_eq!(keys, vec![3, 5, 7]);
    }

    #[test]
    fn prefix_scan_stops_at_prefix_end() {
        let s = Store::in_memory();
        s.put(T1, b"ab1".to_vec(), vec![]).unwrap();
        s.put(T1, b"ab2".to_vec(), vec![]).unwrap();
        s.put(T1, b"ac0".to_vec(), vec![]).unwrap();
        let hits = s.scan_prefix(T1, b"ab");
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn batch_commit_is_atomic_across_tables() {
        let s = Store::in_memory();
        let mut b = WriteBatch::new();
        b.put(T1, b"k".to_vec(), b"v".to_vec());
        b.put(T2, b"idx".to_vec(), b"k".to_vec());
        s.commit(b).unwrap();
        assert!(s.contains(T1, b"k"));
        assert!(s.contains(T2, b"idx"));
        assert_eq!(s.stats().commits, 1);
        assert_eq!(s.stats().ops_applied, 2);
    }

    #[test]
    fn durable_store_recovers_from_wal() {
        let dir = TestDir::new("db-recover");
        {
            let s = Store::open(dir.path(), StoreOptions::default()).unwrap();
            s.put(T1, b"x".to_vec(), b"1".to_vec()).unwrap();
            s.put(T1, b"y".to_vec(), b"2".to_vec()).unwrap();
            s.delete(T1, b"x".to_vec()).unwrap();
            s.sync().unwrap();
        }
        let s = Store::open(dir.path(), StoreOptions::default()).unwrap();
        assert!(s.get(T1, b"x").unwrap().is_none());
        assert_eq!(s.get(T1, b"y").unwrap().unwrap().as_ref(), b"2");
        assert_eq!(s.stats().recovered_entries, 3);
    }

    #[test]
    fn checkpoint_then_recover_uses_snapshot_plus_tail() {
        let dir = TestDir::new("db-ckpt");
        {
            let s = Store::open(dir.path(), StoreOptions::default()).unwrap();
            for i in 0..10u8 {
                s.put(T1, vec![i], vec![i]).unwrap();
            }
            s.checkpoint().unwrap();
            // Post-checkpoint writes land in the fresh WAL.
            s.put(T1, vec![100], vec![100]).unwrap();
            s.sync().unwrap();
        }
        let s = Store::open(dir.path(), StoreOptions::default()).unwrap();
        assert_eq!(s.count(T1), 11);
        // Only the post-checkpoint entry should have been replayed.
        assert_eq!(s.stats().recovered_entries, 1);
    }

    #[test]
    fn torn_wal_tail_loses_only_the_torn_batch() {
        let dir = TestDir::new("db-torn");
        {
            let s = Store::open(
                dir.path(),
                StoreOptions {
                    durability: Durability::Sync,
                    checkpoint_every: 0,
                },
            )
            .unwrap();
            s.put(T1, b"keep".to_vec(), b"1".to_vec()).unwrap();
            s.put(T1, b"lost".to_vec(), b"2".to_vec()).unwrap();
        }
        // Tear the last frame.
        let wal = dir.path().join("db.wal");
        let data = std::fs::read(&wal).unwrap();
        std::fs::write(&wal, &data[..data.len() - 2]).unwrap();

        let s = Store::open(dir.path(), StoreOptions::default()).unwrap();
        assert!(s.contains(T1, b"keep"));
        assert!(!s.contains(T1, b"lost"));
        assert!(s.stats().recovered_torn_tail);

        // The store keeps working after tail truncation.
        s.put(T1, b"new".to_vec(), b"3".to_vec()).unwrap();
        s.sync().unwrap();
        let s2 = Store::open(dir.path(), StoreOptions::default()).unwrap();
        assert!(s2.contains(T1, b"new"));
    }

    #[test]
    fn auto_checkpoint_triggers() {
        let dir = TestDir::new("db-auto");
        let s = Store::open(
            dir.path(),
            StoreOptions {
                durability: Durability::Buffered,
                checkpoint_every: 5,
            },
        )
        .unwrap();
        for i in 0..12u8 {
            s.put(T1, vec![i], vec![i]).unwrap();
        }
        assert_eq!(s.stats().checkpoints, 2);
        drop(s);
        let s = Store::open(dir.path(), StoreOptions::default()).unwrap();
        assert_eq!(s.count(T1), 12);
    }

    #[test]
    fn empty_batch_commit_is_a_noop() {
        let s = Store::in_memory();
        s.commit(WriteBatch::new()).unwrap();
        assert_eq!(s.stats().commits, 0);
    }

    #[test]
    fn checkpoint_on_in_memory_store_is_rejected() {
        let s = Store::in_memory();
        assert!(matches!(s.checkpoint(), Err(StoreError::NotDurable)));
    }

    #[test]
    fn concurrent_readers_with_writer() {
        use std::sync::Arc;
        let s = Arc::new(Store::in_memory());
        let writer = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for i in 0..1000u32 {
                    s.put(T1, i.to_be_bytes().to_vec(), vec![1]).unwrap();
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let mut last = 0;
                    for _ in 0..200 {
                        let n = s.count(T1);
                        assert!(n >= last, "count must be monotone under puts");
                        last = n;
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(s.count(T1), 1000);
    }
}
