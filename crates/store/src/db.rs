//! The [`Store`]: sharded ordered key/value tables + group-commit WAL +
//! snapshots + a typed entity cache.
//!
//! Concurrency model: the memtable set is **hash-partitioned into N
//! shards**, each behind its own `parking_lot::RwLock`, so readers on
//! different shards never contend. Durability is a **single group-commit
//! WAL**: concurrent `commit` calls enqueue their batches under a small
//! mutex, one caller becomes the group leader, appends every queued frame
//! with one flush/fsync, applies the group to the shards in LSN order, and
//! wakes the followers. With one writer the path degenerates to the classic
//! per-commit WAL append; under contention the fsync cost is amortised
//! across the whole group.
//!
//! Consistency: a committed batch is applied while holding the write locks
//! of every shard it touches, so point reads and scans never observe half a
//! batch. Single-table queries (scans, `count`, `last_key`) lock only the
//! shards that can hold the table's keys (tracked by a per-table presence
//! mask), not the whole shard set. Reads return [`bytes::Bytes`] so
//! monitors copy nothing; memtable keys are [`Bytes`] too, so scans hand
//! keys back without re-copying them.
//!
//! ## Durability contract ([`Durability`] × [`SyncPolicy`])
//!
//! * [`Durability::InMemory`] — no files; nothing survives the process.
//! * [`Durability::Buffered`] — every commit group is `write(2)`-flushed to
//!   the OS before the commit returns: a process crash loses nothing, a
//!   power failure may lose any suffix of the log.
//! * [`Durability::Sync`] — fsync cadence is set by [`SyncPolicy`]:
//!   * [`SyncPolicy::Always`] — one fsync per commit group. A commit that
//!     returned `Ok` is durable against power failure.
//!   * [`SyncPolicy::EveryN`]`(n)` — flush per group, fsync once at least
//!     every `n` commits. Power failure loses at most the last `n - 1`
//!     commits; a process crash still loses nothing.
//!   * [`SyncPolicy::Batched`] — adaptive group fsync: after appending its
//!     group, the leader checks the commit queue **under the commit
//!     mutex** — atomically with enqueues. Writers queued behind it will
//!     form the next group, so the fsync is deferred to that group's
//!     leader; an empty queue means this group is the last of the burst
//!     and is fsynced now. A quiescent store is therefore always fully
//!     fsynced (`StoreStats::wal_unsynced_commits == 0` once every commit
//!     has returned — regression-tested); power failure mid-burst may
//!     lose the most recent groups of that burst. Process crash loses
//!     nothing.
//!
//!   Every policy fsyncs on [`Store::sync`], on checkpoints, and before a
//!   snapshot replaces WAL frames, so recovery invariants (prefix
//!   semantics, torn-tail truncation) are identical across policies.
//!
//! ## Retryable vs. fatal errors
//!
//! When a commit fails, the caller's next move depends on the
//! [`StoreError`] variant (see [`StoreError::is_retryable`]):
//!
//! * **Retryable** — `Io` (a filesystem fault: `ENOSPC`, `EIO`, ...) and
//!   `Broken` (the store poisoned itself after a group-commit I/O
//!   failure, because the WAL and memtables can no longer be trusted to
//!   agree). The durable prefix on disk is intact: **reopening the store
//!   re-runs recovery and heals it**, after which the failed operation
//!   may be retried. Serving layers degrade to read-only on these
//!   instead of dying (reads never need the WAL).
//! * **Fatal** — `Corrupt` (on-disk bytes failed an integrity check
//!   somewhere recovery cannot truncate away), `Codec`, `Conflict`,
//!   `NotFound`, `NotDurable`: retrying the same operation fails the
//!   same way; these need operator or caller intervention.
//!
//! The fault-torture suite (`tests/fault_torture.rs`) pins the healing
//! claim: for every storage fault site, an injected failure surfaces as
//! a typed error, and the reopened store's contents are byte-identical
//! to a fault-free twin that stopped at the same durable point.
//!
//! ## Entity cache
//!
//! The typed layer ([`crate::table::TypedTable`]) decodes records out of
//! the stored bytes. To keep tight read-modify-write loops from paying a
//! decode per `get`, the store carries a **per-shard decoded-entity
//! cache**: `(table, key) → (stored bytes, Arc<decoded>)`. A cached entry
//! is valid only while the memtable still holds the *same* `Bytes`
//! allocation (pointer identity — the slot keeps the old buffer alive, so
//! a match is proof nothing was overwritten). Committed puts staged via
//! [`crate::txn::WriteBatch::put_cached`] write through into the cache
//! under the same shard write lock that applies them; plain puts and
//! deletes invalidate. The cache therefore never changes results, only
//! skips decodes — `ITAG_NO_CACHE=1` (or `StoreOptions::entity_cache =
//! false`) turns it off wholesale, which the equivalence tests use to
//! prove bit-identical behaviour.

use crate::codec::FxHasher;
use crate::error::{Result, StoreError};
use crate::txn::{CachedEntity, Op, WalEntry, WriteBatch};
use crate::{serbin, snapshot, wal, TableId};
use bytes::Bytes;
use parking_lot::{Condvar, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::hash::Hasher;
use std::ops::Bound;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How hard the store tries to make each commit durable. See the module
/// docs for the full durability contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// Pure in-memory operation; no files at all. Used by simulations and
    /// benches where the dataset is regenerated per run.
    InMemory,
    /// WAL appends are flushed to the OS per commit group but not fsynced;
    /// a process crash loses nothing, a power failure may lose the tail.
    Buffered,
    /// WAL appends are fsynced per the configured [`SyncPolicy`].
    Sync,
}

/// Fsync cadence under [`Durability::Sync`]. See the module docs for the
/// durability contract of each variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// One fsync per commit group (the strongest setting, and the
    /// pre-policy behaviour of `Durability::Sync`).
    Always,
    /// Fsync once at least every `n` commits (`0` and `1` behave like
    /// [`SyncPolicy::Always`]); flush-only groups in between.
    EveryN(u64),
    /// Adaptive group fsync: sync when the commit queue drains, flush while
    /// more writers are already queued.
    Batched,
}

/// Default number of hash partitions (see [`StoreOptions::shards`]).
pub const DEFAULT_SHARDS: usize = 8;

/// Default per-(table, shard) entity-cache capacity, in entries.
pub const DEFAULT_CACHE_CAPACITY: usize = 65_536;

/// Tuning knobs for [`Store::open`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    pub durability: Durability,
    /// Fsync cadence when `durability` is [`Durability::Sync`]; ignored
    /// otherwise.
    pub sync_policy: SyncPolicy,
    /// Auto-checkpoint after this many committed batches (0 = manual only).
    pub checkpoint_every: u64,
    /// Number of hash-partitioned memtable shards (min 1). The on-disk
    /// format is shard-agnostic: a database written with one shard count
    /// reopens fine under another.
    pub shards: usize,
    /// Enables the decoded-entity cache (see module docs). `ITAG_NO_CACHE=1`
    /// in the environment forces it off regardless of this flag.
    pub entity_cache: bool,
    /// Entity-cache entries per (table, shard) before the slab is dropped
    /// and allowed to refill.
    pub entity_cache_capacity: usize,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            durability: Durability::Buffered,
            sync_policy: SyncPolicy::Always,
            checkpoint_every: 0,
            shards: DEFAULT_SHARDS,
            entity_cache: true,
            entity_cache_capacity: DEFAULT_CACHE_CAPACITY,
        }
    }
}

/// Monotonic operation counters (cheap, lock-free reads).
#[derive(Debug, Default)]
struct Counters {
    gets: AtomicU64,
    scans: AtomicU64,
    commits: AtomicU64,
    ops_applied: AtomicU64,
    checkpoints: AtomicU64,
    group_commits: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    wal_syncs: AtomicU64,
    snapshot_captures: AtomicU64,
}

/// A point-in-time view of store activity and size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreStats {
    pub gets: u64,
    pub scans: u64,
    pub commits: u64,
    pub ops_applied: u64,
    pub checkpoints: u64,
    /// WAL write groups formed (== commits when writers never contend).
    pub group_commits: u64,
    /// Entity-cache lookups resolved without a decode.
    pub cache_hits: u64,
    /// Entity-cache lookups that had to decode (cold or invalidated key).
    pub cache_misses: u64,
    /// WAL fsyncs performed (policy-driven, [`Store::sync`], checkpoints).
    pub wal_syncs: u64,
    /// Commits appended to the WAL since the last fsync. The
    /// [`SyncPolicy::Batched`] contract says a quiescent store is fully
    /// fsynced — i.e. this must read 0 once every commit has returned.
    pub wal_unsynced_commits: u64,
    /// MVCC read snapshots captured ([`Store::read_snapshot`]).
    pub snapshot_captures: u64,
    /// LSN of the last batch applied to the memtables (0 on a fresh
    /// store; recovery resumes it from the replayed WAL).
    pub epoch: u64,
    pub tables: usize,
    pub keys: usize,
    /// Number of memtable shards.
    pub shards: usize,
    /// Entries replayed from the WAL during the last open.
    pub recovered_entries: u64,
    /// True if the last open had to drop a torn WAL tail.
    pub recovered_torn_tail: bool,
}

/// One logical table's ordered pairs. Behind an [`Arc`] so an MVCC
/// snapshot ([`Store::read_snapshot`]) can share every table it captured
/// without copying a single pair: writers clone-on-write via
/// [`Arc::make_mut`], which is a no-op (refcount 1) whenever no snapshot
/// holds the table and copies only the touched table otherwise.
pub(crate) type TableMap = Arc<BTreeMap<Bytes, Bytes>>;

/// One table set partition: `table → (key → value)`. Keys are [`Bytes`] so
/// scans can return them without copying.
pub(crate) type Memtable = BTreeMap<TableId, TableMap>;

/// One decoded-entity cache partition: `table → key → slot`.
struct CacheSlot {
    /// The exact stored buffer this decode came from. Pointer identity
    /// against the live memtable value proves the slot is current (the
    /// slot keeps this allocation alive, so the address cannot be reused
    /// while the entry exists).
    value: Bytes,
    decoded: CachedEntity,
}
type CacheShard = crate::codec::FxHashMap<TableId, crate::codec::FxHashMap<Bytes, CacheSlot>>;

/// A batch waiting in the group-commit queue.
struct Pending {
    lsn: u64,
    ops: Vec<Op>,
    /// Decoded write-through hints, `(op index, entity)` ascending.
    hints: Vec<(u32, CachedEntity)>,
    /// Pre-serialized WAL frame (durable stores only).
    payload: Option<Vec<u8>>,
}

/// Shared commit ordering state, guarded by `Store::commit_mu`.
struct CommitState {
    next_lsn: u64,
    /// Every entry with `lsn <= applied_lsn` is in the memtables (and, on a
    /// durable store, flushed per the durability level).
    applied_lsn: u64,
    queue: VecDeque<Pending>,
    leader_active: bool,
    /// A manual checkpoint is quiescing: new batches hold off enqueueing so
    /// the in-flight work can drain (bounds the checkpoint's wait).
    checkpoint_waiting: bool,
    /// Set on an unrecoverable WAL I/O failure; all later commits fail.
    broken: Option<String>,
}

/// WAL + recovery bookkeeping, guarded by `Store::log_mu`. Only the group
/// leader (or a quiesced checkpoint) holds this lock.
struct LogState {
    wal: Option<wal::Wal>,
    dir: Option<PathBuf>,
    commits_since_checkpoint: u64,
    /// Commits flushed but not yet fsynced (drives [`SyncPolicy::EveryN`]).
    commits_since_sync: u64,
    /// Commits appended since the last fsync, under any policy (feeds
    /// `StoreStats::wal_unsynced_commits`; the Batched regression tests
    /// assert it drains to 0 whenever the store quiesces).
    unsynced_commits: u64,
    recovered_entries: u64,
    recovered_torn_tail: bool,
}

/// The storage engine. See module docs.
pub struct Store {
    shards: Vec<RwLock<Memtable>>,
    /// Decoded-entity cache, partitioned like `shards` (same router).
    cache: Vec<RwLock<CacheShard>>,
    cache_enabled: bool,
    cache_capacity: usize,
    /// Tables that ever held a cache entry (grows monotonically). Lets
    /// `apply_batch` skip cache invalidation entirely for write-only
    /// tables (post logs, index rows) with one lookup per batch instead
    /// of a cache-shard lock per op.
    cached_tables: RwLock<crate::codec::FxHashSet<TableId>>,
    /// Per-table shard-presence bitmask: bit `s` set ⇔ shard `s` may hold
    /// keys of the table. Grows monotonically; set *before* a batch takes
    /// its write locks so single-table readers can lock just these shards.
    /// Unused (queries fall back to locking everything) when the shard
    /// count exceeds the mask width.
    presence: RwLock<crate::codec::FxHashMap<TableId, u128>>,
    commit_mu: Mutex<CommitState>,
    commit_cv: Condvar,
    log_mu: Mutex<LogState>,
    /// Serializes read-modify-write cycles ([`Store::rmw_guard`]): holders
    /// know no *other guard holder's* write can interleave between their
    /// read and their commit.
    rmw_mu: parking_lot::Mutex<()>,
    /// LSN of the last batch applied to the memtables, published while the
    /// applying batch's shard write locks are still held. A reader that
    /// holds **all** shard read locks ([`Store::read_snapshot`]) therefore
    /// observes exactly the epoch whose batches its view contains; the
    /// lock-free [`Store::epoch`] accessor is a staleness probe only.
    epoch: AtomicU64,
    opts: StoreOptions,
    counters: Counters,
}

/// Whether the `ITAG_NO_CACHE` environment variable forces the entity
/// cache off. Delegates to the shared strict parser in
/// [`crate::envknob`] (the engine rejects garbage loudly; the raw store
/// treats it as "off" — see that module for why both postures share one
/// parser). The cache tests gate on this same function so they can never
/// desynchronize from the store's decision.
fn env_disables_cache() -> bool {
    crate::envknob::env_disables_cache()
}

/// Declares the store's reviewed lock-order exemptions and
/// held-across-fsync allowances to the shim's acquisition tracker, once
/// per process (every store constructor funnels through
/// [`Store::assemble`]). This list is the lockcheck analogue of the
/// lint's waiver budget: every entry documents an intentional pattern,
/// and anything *not* listed that trips the tracker is a real bug.
fn register_lockcheck_policy() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        use parking_lot::lockcheck;
        // `SyncPolicy::Batched`: the group leader peeks at the commit
        // queue while holding `log_mu`, inverting the usual
        // `commit_mu → log_mu` order (manual checkpoints take `log_mu`
        // under `commit_mu`). Deadlock-free by state machine: a
        // checkpoint only takes `log_mu` under `commit_mu` after
        // observing `leader_active == false` while continuously holding
        // `commit_mu`, and the queue peek runs only on the active leader
        // — the two critical sections cannot overlap.
        lockcheck::allow_edge(
            "store.log_mu",
            "store.commit_mu",
            "batched-fsync queue peek; checkpoint waits for leader_active == false \
             under commit_mu before touching log_mu",
        );
        // The WAL fsync sites that run with locks held, all by design:
        lockcheck::allow_held_across_fsync(
            "store.log_mu",
            "the group leader serializes all WAL I/O (including fsync) under the log mutex",
        );
        lockcheck::allow_held_across_fsync(
            "store.commit_mu",
            "a manual checkpoint quiesces committers and holds the commit mutex across \
             its snapshot cut, including the WAL sync that seals it",
        );
        lockcheck::allow_held_across_fsync(
            "store.rmw_mu",
            "TypedTable::update holds the read-modify-write guard across its commit, \
             which may fsync; that is the guard's entire purpose",
        );
    });
}

fn wal_path(dir: &Path) -> PathBuf {
    dir.join("db.wal")
}

fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join("db.snp")
}

/// Stable shard router: FxHash of `(table, key)` mod shard count. Must not
/// change across versions or recovery would repartition differently than
/// the writes that produced the WAL (harmless, but checksums over shard
/// contents would shift).
pub(crate) fn route(shards: usize, table: TableId, key: &[u8]) -> usize {
    if shards == 1 {
        return 0;
    }
    let mut h = FxHasher::default();
    h.write_u16(table.0);
    h.write(key);
    (h.finish() % shards as u64) as usize
}

/// Builds a WAL frame payload from a pre-serialized op list. `WalEntry`
/// is `{ lsn, ops }` and serbin encodes structs as plain field
/// concatenation (see the `serbin` module docs), so `varint(lsn) ++
/// serbin(ops)` is byte-identical to `serbin(WalEntry { lsn, ops })` —
/// which lets committers serialize their ops *outside* the commit mutex
/// and splice the LSN in under it.
fn frame_payload(lsn: u64, ops_bytes: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(10 + ops_bytes.len());
    crate::codec::write_uvarint(&mut payload, lsn);
    payload.extend_from_slice(ops_bytes);
    payload
}

/// What the group leader reports back: the WAL-append + memtable-apply
/// verdict (a failure here poisons the store — log and memory can no
/// longer be trusted to agree) and, separately, the auto-checkpoint
/// verdict (a failure here is transient and surfaced only to the leader;
/// the group itself is durable and applied).
struct LeadOutcome {
    wal_apply: Result<()>,
    checkpoint: Result<()>,
}

/// Union of table ids across a set of shard guards, ascending.
fn tables_union(guards: &[RwLockReadGuard<'_, Memtable>]) -> BTreeSet<TableId> {
    tables_union_of(guards.iter().map(|g| &**g))
}

/// Union of table ids across any set of memtable parts, ascending.
pub(crate) fn tables_union_of<'g>(parts: impl Iterator<Item = &'g Memtable>) -> BTreeSet<TableId> {
    let mut ids = BTreeSet::new();
    for p in parts {
        ids.extend(p.keys().copied());
    }
    ids
}

/// Streams one table's pairs from a set of shard guards in ascending key
/// order — a k-way merge over the per-shard ordered maps, so nothing is
/// materialized (each shard holds disjoint keys, so ties cannot occur).
pub(crate) struct MergedTableIter<'g> {
    iters: Vec<std::collections::btree_map::Range<'g, Bytes, Bytes>>,
    heads: Vec<Option<(&'g Bytes, &'g Bytes)>>,
}

impl<'g> Iterator for MergedTableIter<'g> {
    type Item = (&'g Bytes, &'g Bytes);

    fn next(&mut self) -> Option<Self::Item> {
        // Carry the best key alongside its index so the comparison never
        // has to re-index (and re-unwrap) `heads`.
        let mut best: Option<(usize, &'g Bytes)> = None;
        for (i, head) in self.heads.iter().enumerate() {
            if let Some((k, _)) = head {
                match best {
                    Some((_, bk)) if bk <= *k => {}
                    _ => best = Some((i, *k)),
                }
            }
        }
        let (i, _) = best?;
        let item = self.heads[i].take();
        self.heads[i] = self.iters[i].next();
        item
    }
}

/// Merged in-order view of `table` over any set of memtable parts,
/// bounded to `[from, to)` (`to = None` means unbounded). Shared by the
/// guard-holding live-store readers and the lock-free snapshot readers
/// ([`crate::mvcc::StoreSnapshot`]) so both paths answer identically.
pub(crate) fn merged_parts<'g>(
    parts: impl Iterator<Item = &'g Memtable>,
    table: TableId,
    from: &[u8],
    to: Option<&[u8]>,
) -> MergedTableIter<'g> {
    let upper = match to {
        Some(end) => Bound::Excluded(end),
        None => Bound::Unbounded,
    };
    let mut iters: Vec<std::collections::btree_map::Range<'g, Bytes, Bytes>> = parts
        .filter_map(|p| p.get(&table))
        .map(|t| t.range::<[u8], _>((Bound::Included(from), upper)))
        .collect();
    let heads = iters.iter_mut().map(|it| it.next()).collect();
    MergedTableIter { iters, heads }
}

/// Merged in-order view of `table` over `guards`, bounded to
/// `[from, to)` (`to = None` means unbounded).
fn merged_range<'g>(
    guards: &'g [RwLockReadGuard<'_, Memtable>],
    table: TableId,
    from: &[u8],
    to: Option<&[u8]>,
) -> MergedTableIter<'g> {
    merged_parts(guards.iter().map(|g| &**g), table, from, to)
}

impl Store {
    /// An ephemeral store with no durability (no files are touched).
    pub fn in_memory() -> Self {
        Store::in_memory_sharded(DEFAULT_SHARDS)
    }

    /// An ephemeral store with an explicit shard count (tests and benches
    /// that sweep partitioning).
    pub fn in_memory_sharded(shards: usize) -> Self {
        Store::in_memory_with(StoreOptions {
            durability: Durability::InMemory,
            shards,
            ..StoreOptions::default()
        })
    }

    /// An ephemeral store with full control over the options (the
    /// durability level is forced to [`Durability::InMemory`]).
    pub fn in_memory_with(opts: StoreOptions) -> Self {
        Store::assemble(
            StoreOptions {
                durability: Durability::InMemory,
                checkpoint_every: 0,
                ..opts
            },
            Memtable::new(),
            None,
            None,
            0,
            0,
            false,
        )
    }

    /// Opens (or creates) a durable store in `dir`, running recovery:
    /// load the snapshot if present, then replay WAL entries past it.
    pub fn open(dir: &Path, opts: StoreOptions) -> Result<Self> {
        if opts.durability == Durability::InMemory {
            return Ok(Store::in_memory_with(opts));
        }
        // Arm any `ITAG_FAULTS` plan before recovery runs, so the
        // `recovery.scan` site can fault the very first open too.
        crate::faults::init_env();
        std::fs::create_dir_all(dir)?;

        let mut tables = Memtable::new();
        let mut last_lsn = 0u64;
        if let Some(snap) = snapshot::read(&snapshot_path(dir))? {
            last_lsn = snap.last_lsn;
            for dump in snap.tables {
                let table = Arc::make_mut(tables.entry(dump.table).or_default());
                for (k, v) in dump.entries {
                    table.insert(Bytes::from(k), Bytes::from(v));
                }
            }
        }

        let scan = wal::scan(&wal_path(dir))?;
        let mut recovered = 0u64;
        for frame in &scan.frames {
            let entry: WalEntry = serbin::from_bytes(frame)
                .map_err(|e| StoreError::Corrupt(format!("undecodable WAL entry: {e}")))?;
            if entry.lsn <= last_lsn {
                continue; // already folded into the snapshot
            }
            last_lsn = entry.lsn;
            apply_ops(&mut tables, entry.ops);
            recovered += 1;
        }

        let wal = wal::Wal::open_for_append(&wal_path(dir), scan.valid_len).or_else(|_| {
            // No WAL yet (fresh dir): create one.
            wal::Wal::create(&wal_path(dir))
        })?;

        Ok(Store::assemble(
            opts,
            tables,
            Some(wal),
            Some(dir.to_path_buf()),
            last_lsn,
            recovered,
            scan.truncated_tail,
        ))
    }

    // lint: allow(panic-path)
    fn assemble(
        opts: StoreOptions,
        initial: Memtable,
        wal: Option<wal::Wal>,
        dir: Option<PathBuf>,
        last_lsn: u64,
        recovered_entries: u64,
        recovered_torn_tail: bool,
    ) -> Self {
        let n = opts.shards.max(1);
        let mut parts: Vec<Memtable> = (0..n).map(|_| Memtable::new()).collect();
        let mut presence: crate::codec::FxHashMap<TableId, u128> = Default::default();
        for (table, entries) in initial {
            // `initial` is freshly built by recovery, so each table Arc is
            // unshared and unwraps without cloning.
            let entries = Arc::try_unwrap(entries).unwrap_or_else(|shared| (*shared).clone());
            for (k, v) in entries {
                let s = route(n, table, &k);
                if n <= 128 {
                    *presence.entry(table).or_insert(0) |= 1u128 << s;
                }
                Arc::make_mut(parts[s].entry(table).or_default()).insert(k, v);
            }
        }
        let cache_enabled = opts.entity_cache && !env_disables_cache();
        register_lockcheck_policy();
        crate::faults::init_env();
        Store {
            shards: parts
                .into_iter()
                .enumerate()
                .map(|(i, m)| RwLock::named(&format!("store.shard[{i}]"), m))
                .collect(),
            cache: (0..n)
                .map(|i| RwLock::named(&format!("store.cache[{i}]"), CacheShard::default()))
                .collect(),
            cache_enabled,
            cache_capacity: opts.entity_cache_capacity.max(1),
            cached_tables: RwLock::named("store.cached_tables", Default::default()),
            presence: RwLock::named("store.presence", presence),
            commit_mu: Mutex::named(
                "store.commit_mu",
                CommitState {
                    next_lsn: last_lsn + 1,
                    applied_lsn: last_lsn,
                    queue: VecDeque::new(),
                    leader_active: false,
                    checkpoint_waiting: false,
                    broken: None,
                },
            ),
            commit_cv: Condvar::new(),
            log_mu: Mutex::named(
                "store.log_mu",
                LogState {
                    wal,
                    dir,
                    commits_since_checkpoint: 0,
                    commits_since_sync: 0,
                    unsynced_commits: 0,
                    recovered_entries,
                    recovered_torn_tail,
                },
            ),
            rmw_mu: parking_lot::Mutex::named("store.rmw_mu", ()),
            epoch: AtomicU64::new(last_lsn),
            opts,
            counters: Counters::default(),
        }
    }

    /// Guard for a read-modify-write cycle: while held, no other
    /// `rmw_guard` holder can interleave a write between this caller's
    /// read and commit ([`crate::table::TypedTable::update`] takes it).
    /// Raw `commit` callers are not excluded — full isolation would need
    /// transactions, which the store does not have.
    pub fn rmw_guard(&self) -> parking_lot::MutexGuard<'_, ()> {
        self.rmw_mu.lock()
    }

    fn shard_of(&self, table: TableId, key: &[u8]) -> usize {
        route(self.shards.len(), table, key)
    }

    /// Read-locks every shard at once (index order), giving multi-table
    /// readers (checksums, stats, checkpoints) a batch-atomic view: the
    /// group leader applies each batch while holding the write locks of
    /// all shards that batch touches.
    fn lock_all(&self) -> Vec<RwLockReadGuard<'_, Memtable>> {
        self.shards.iter().map(|s| s.read()).collect()
    }

    /// The presence mask of `table` (shards that may hold its keys).
    fn table_mask(&self, table: TableId) -> u128 {
        self.presence.read().get(&table).copied().unwrap_or(0)
    }

    /// Read-locks only the shards that can hold keys of `table`, in index
    /// order. The mask is re-checked after acquisition: writers set
    /// presence bits *before* taking their write locks, so if the mask is
    /// unchanged the guard set covers every committed (and in-flight) key
    /// of the table and the view is still batch-atomic. Falls back to
    /// locking everything when the shard count exceeds the mask width.
    // lint: allow(panic-path)
    fn lock_table_shards(&self, table: TableId) -> Vec<RwLockReadGuard<'_, Memtable>> {
        let n = self.shards.len();
        if n == 1 {
            return vec![self.shards[0].read()];
        }
        if n > 128 {
            return self.lock_all();
        }
        loop {
            let mask = self.table_mask(table);
            if mask == 0 {
                // Presence is raised before a batch locks its shards, so a
                // zero mask means no key of this table is committed yet and
                // an empty view is a correct linearization (before any
                // in-flight first batch). The re-check mirrors the non-zero
                // arm's discipline: it narrows — but cannot close — the
                // window in which a reader answers "empty" concurrently
                // with a first-ever batch, at the cost of one map lookup.
                // (Bits never clear, so a table whose rows were all deleted
                // keeps its mask and takes the non-zero arm; the
                // `presence_answers_stay_correct_*` regression test pins
                // those delete paths.)
                if self.table_mask(table) == 0 {
                    return Vec::new();
                }
                continue;
            }
            let guards: Vec<_> = (0..n)
                .filter(|s| mask >> s & 1 == 1)
                .map(|s| self.shards[s].read())
                .collect();
            if self.table_mask(table) == mask {
                return guards;
            }
            // A batch spilled the table onto a new shard while we were
            // locking; retry so we cannot observe half of it.
            drop(guards);
        }
    }

    /// Raises presence bits for every `(table, shard)` a batch touches.
    /// Called before the batch's write locks are taken — see
    /// [`Store::lock_table_shards`]. `routes[i]` is op `i`'s shard,
    /// precomputed by the caller (each key is hashed exactly once per
    /// apply).
    fn note_presence(&self, ops: &[Op], routes: &[usize]) {
        let n = self.shards.len();
        if n == 1 || n > 128 {
            return;
        }
        let mut needed: crate::codec::FxHashMap<TableId, u128> = Default::default();
        for (op, &s) in ops.iter().zip(routes) {
            if let Op::Put { table, .. } = op {
                *needed.entry(*table).or_insert(0) |= 1u128 << s;
            }
        }
        {
            let p = self.presence.read();
            if needed
                .iter()
                .all(|(t, bits)| p.get(t).is_some_and(|have| have & bits == *bits))
            {
                return; // steady state: no new bits
            }
        }
        let mut p = self.presence.write();
        for (t, bits) in needed {
            *p.entry(t).or_insert(0) |= bits;
        }
    }

    /// Commits a batch atomically: one WAL frame, then apply to memtables.
    ///
    /// Concurrent callers are batched: one becomes the group leader and
    /// writes every queued frame with a single flush/fsync.
    pub fn commit(&self, batch: WriteBatch) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        // Serialize the ops before taking the commit mutex — only the
        // tiny LSN prefix is built under the lock (see `frame_payload`).
        let ops_bytes = if self.opts.durability != Durability::InMemory {
            Some(serbin::to_bytes(&batch.ops)?)
        } else {
            None
        };

        let mut state = self.commit_mu.lock();
        // Hold off while a manual checkpoint is quiescing so its wait is
        // bounded; queued work keeps draining below regardless.
        while state.checkpoint_waiting {
            self.commit_cv.wait(&mut state);
        }
        if let Some(msg) = &state.broken {
            return Err(StoreError::Broken(msg.clone()));
        }
        let lsn = state.next_lsn;
        state.next_lsn += 1;
        state.queue.push_back(Pending {
            lsn,
            ops: batch.ops,
            hints: batch.hints,
            payload: ops_bytes.map(|b| frame_payload(lsn, &b)),
        });

        loop {
            // `applied_lsn` is checked before `broken`: a batch that made
            // it into an earlier, successful group really is durable and
            // applied, even if a *later* group has since broken the store.
            if state.applied_lsn >= lsn {
                return Ok(());
            }
            if let Some(msg) = &state.broken {
                return Err(StoreError::Broken(msg.clone()));
            }
            if state.leader_active {
                self.commit_cv.wait(&mut state);
                continue;
            }
            // Become the group leader: drain the queue, do the I/O and the
            // memtable applies without holding the commit mutex, then report
            // back and wake the followers.
            state.leader_active = true;
            let mut group: Vec<Pending> = state.queue.drain(..).collect();
            drop(state);

            let group_last_lsn = group.last().map(|p| p.lsn);
            // If the leader panics mid-group (an apply bug unwinding out
            // of `lead_group`), the followers must not wait forever on
            // `leader_active`: this guard breaks the store and wakes
            // everyone before the panic leaves `commit`. The
            // `group_commit_leader_death` schedule-explorer model in
            // `crowd` checks exactly this protocol.
            struct LeaderAbort<'a> {
                store: &'a Store,
                armed: bool,
            }
            impl Drop for LeaderAbort<'_> {
                fn drop(&mut self) {
                    if !self.armed {
                        return;
                    }
                    let mut state = self.store.commit_mu.lock();
                    state.leader_active = false;
                    state.broken = Some(
                        "group-commit leader panicked mid-group; \
                         log and memtables may disagree"
                            .into(),
                    );
                    self.store.commit_cv.notify_all();
                }
            }
            let mut abort = LeaderAbort {
                store: self,
                armed: true,
            };
            let outcome = self.lead_group(&mut group);
            abort.armed = false;

            state = self.commit_mu.lock();
            state.leader_active = false;
            match outcome.wal_apply {
                Ok(()) => {
                    if let Some(last) = group_last_lsn {
                        state.applied_lsn = state.applied_lsn.max(last);
                    }
                }
                Err(e) => {
                    // A WAL write failed mid-group; the log can no longer
                    // be trusted to match the memtables, so fail this
                    // group (applied_lsn is NOT advanced past it) and
                    // every later commit loudly instead of diverging
                    // silently. The leader reports the root cause (e.g.
                    // the `Io` fault itself); followers and later commits
                    // see `StoreError::Broken` until the store is
                    // reopened.
                    state.broken = Some(format!("group commit failed: {e}"));
                    drop(state);
                    self.commit_cv.notify_all();
                    return Err(e);
                }
            }
            self.commit_cv.notify_all();
            // The group is durable and applied even if the piggybacked
            // auto-checkpoint failed; surface such a failure to the leader
            // alone (matching the pre-sharding behaviour, where the commit
            // that tripped the threshold reported the error) and let the
            // next qualifying group retry it.
            outcome.checkpoint?;
        }
    }

    /// Group-leader work: append + flush/fsync all frames per the sync
    /// policy, apply in LSN order, bump counters, maybe auto-checkpoint.
    /// Consumes each pending batch's ops (they are applied by value, so
    /// keys and values move into the memtable without another copy).
    // lint: allow(panic-path)
    fn lead_group(&self, group: &mut [Pending]) -> LeadOutcome {
        let mut log = self.log_mu.lock();
        let wal_apply = (|| -> Result<()> {
            let LogState {
                wal,
                commits_since_sync,
                unsynced_commits,
                ..
            } = &mut *log;
            if let Some(w) = wal.as_mut() {
                for p in group.iter() {
                    // Durable commits serialize their payload on enqueue;
                    // a missing one means the queue protocol broke, and a
                    // typed error (which poisons the store via the
                    // `broken` path) beats unwinding mid-group.
                    let payload = p.payload.as_ref().ok_or_else(|| {
                        StoreError::Corrupt(format!(
                            "commit lsn {} queued without a serialized WAL payload",
                            p.lsn
                        ))
                    })?;
                    w.append(payload)?;
                }
                *unsynced_commits += group.len() as u64;
                let fsync = |w: &mut wal::Wal,
                             commits_since_sync: &mut u64,
                             unsynced_commits: &mut u64|
                 -> Result<()> {
                    w.sync()?;
                    *commits_since_sync = 0;
                    *unsynced_commits = 0;
                    self.counters.wal_syncs.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                };
                match self.opts.durability {
                    Durability::Sync => match self.opts.sync_policy {
                        SyncPolicy::Always => fsync(w, commits_since_sync, unsynced_commits)?,
                        SyncPolicy::EveryN(n) => {
                            *commits_since_sync += group.len() as u64;
                            if n <= 1 || *commits_since_sync >= n {
                                fsync(w, commits_since_sync, unsynced_commits)?;
                            } else {
                                w.flush()?;
                            }
                        }
                        SyncPolicy::Batched => {
                            // Derive the decision from the commit queue
                            // itself, read under the commit mutex — i.e.
                            // atomically with enqueues. The old lock-free
                            // depth hint was written at drain time and
                            // read here without any ordering against the
                            // enqueues it was supposed to count, so the
                            // leader could act on a count that never
                            // corresponded to the queue state. Now: if
                            // writers are queued behind this group they
                            // *will* form the next group (they hold real
                            // queue entries), and that group's leader
                            // repeats this check — the last group of any
                            // burst always observes an empty queue and
                            // fsyncs, which is what keeps the "a
                            // quiescent store is fully fsynced" contract
                            // airtight. (Lock order is safe: a checkpoint
                            // only takes `log_mu` under `commit_mu` after
                            // observing `leader_active == false`, and we
                            // are the active leader.)
                            let followers_queued = !self.commit_mu.lock().queue.is_empty();
                            if followers_queued {
                                w.flush()?;
                            } else {
                                fsync(w, commits_since_sync, unsynced_commits)?;
                            }
                        }
                    },
                    Durability::Buffered => w.flush()?,
                    Durability::InMemory => unreachable!("in-memory store has no WAL"),
                }
            }
            Ok(())
        })();
        if wal_apply.is_err() {
            return LeadOutcome {
                wal_apply,
                checkpoint: Ok(()),
            };
        }
        let mut ops_total = 0u64;
        for p in group.iter_mut() {
            let ops = std::mem::take(&mut p.ops);
            let hints = std::mem::take(&mut p.hints);
            ops_total += ops.len() as u64;
            self.apply_batch(p.lsn, ops, hints);
        }
        self.counters
            .commits
            .fetch_add(group.len() as u64, Ordering::Relaxed);
        self.counters
            .ops_applied
            .fetch_add(ops_total, Ordering::Relaxed);
        self.counters.group_commits.fetch_add(1, Ordering::Relaxed);

        let mut checkpoint = Ok(());
        if log.wal.is_some() && self.opts.checkpoint_every > 0 {
            log.commits_since_checkpoint += group.len() as u64;
            if log.commits_since_checkpoint >= self.opts.checkpoint_every {
                let last = group.last().map(|p| p.lsn).unwrap_or(0);
                checkpoint = self.checkpoint_locked(&mut log, last);
            }
        }
        LeadOutcome {
            wal_apply,
            checkpoint,
        }
    }

    /// Applies one batch while holding the write locks of every shard it
    /// touches, so concurrent readers see all of the batch or none of it.
    /// Ops are consumed: keys and values move straight into the memtable.
    /// Write-through hints install decoded entities into the cache under
    /// the same locks; unhinted puts and deletes invalidate. The batch's
    /// LSN is published as the store epoch before the write locks drop,
    /// so an all-shards reader sees epoch and contents move together.
    // lint: allow(panic-path)
    fn apply_batch(&self, lsn: u64, ops: Vec<Op>, hints: Vec<(u32, CachedEntity)>) {
        let n = self.shards.len();
        // Hash every key exactly once; the presence update, the lock set
        // and the apply loop all reuse these routes.
        let routes: Vec<usize> = ops
            .iter()
            .map(|op| match op {
                Op::Put { table, key, .. } | Op::Delete { table, key } => route(n, *table, key),
            })
            .collect();
        self.note_presence(&ops, &routes);
        let mut guards: Vec<Option<RwLockWriteGuard<'_, Memtable>>> =
            (0..n).map(|_| None).collect();
        if n <= 128 {
            let mut touched = 0u128;
            for &s in &routes {
                touched |= 1u128 << s;
            }
            for (s, guard) in guards.iter_mut().enumerate() {
                if touched >> s & 1 == 1 {
                    *guard = Some(self.shards[s].write());
                }
            }
        } else {
            let mut touched: Vec<usize> = routes.clone();
            touched.sort_unstable();
            touched.dedup();
            for &s in &touched {
                guards[s] = Some(self.shards[s].write());
            }
        }
        // One lookup per batch decides which tables need cache
        // maintenance at all; write-only tables (post logs, index rows)
        // then skip the cache-shard locks entirely.
        let cache_tables: Vec<TableId> = if self.cache_enabled {
            self.cached_tables.read().iter().copied().collect()
        } else {
            Vec::new()
        };
        let mut hints = hints.into_iter().peekable();
        for (idx, (op, &s)) in ops.into_iter().zip(routes.iter()).enumerate() {
            let hint = match hints.peek() {
                Some((h, _)) if *h as usize == idx => hints.next().map(|(_, d)| d),
                _ => None,
            };
            match op {
                Op::Put { table, key, value } => {
                    let key = Bytes::from(key);
                    let value = Bytes::from(value);
                    if self.cache_enabled && (hint.is_some() || cache_tables.contains(&table)) {
                        self.cache_apply(s, table, &key, Some(&value), hint);
                    }
                    // The guard set is computed from the same `routes`
                    // this loop indexes with, so the slot is always
                    // populated; an error path here has no caller to
                    // surface to (the batch is already in the WAL).
                    // lint: allow(store-unwrap)
                    Arc::make_mut(
                        guards[s]
                            .as_mut()
                            .expect("touched shard is locked")
                            .entry(table)
                            .or_default(),
                    )
                    .insert(key, value);
                }
                Op::Delete { table, key } => {
                    if self.cache_enabled && cache_tables.contains(&table) {
                        self.cache_apply(s, table, &key, None, None);
                    }
                    // Same invariant as the put arm above.
                    // lint: allow(store-unwrap)
                    if let Some(t) = guards[s]
                        .as_mut()
                        .expect("touched shard is locked")
                        .get_mut(&table)
                    {
                        Arc::make_mut(t).remove(key.as_slice());
                    }
                }
            }
        }
        // Publish the new epoch while the touched shards are still
        // write-locked: a capture holding every shard read lock can then
        // never observe this batch's data without its epoch or vice versa.
        // Applies are serialized (single group leader), so the store is
        // monotonic even though only the touched shards are locked here.
        self.epoch.store(lsn, Ordering::Release);
    }

    /// Registers `table` as cache-bearing (cheap read-check fast path).
    fn note_cached_table(&self, table: TableId) {
        if !self.cached_tables.read().contains(&table) {
            self.cached_tables.write().insert(table);
        }
    }

    /// Cache side of applying one op (shard write lock already held, so
    /// readers of the shard cannot interleave). `value = None` ⇒ delete.
    // lint: allow(panic-path)
    fn cache_apply(
        &self,
        shard: usize,
        table: TableId,
        key: &[u8],
        value: Option<&Bytes>,
        hint: Option<CachedEntity>,
    ) {
        match (value, hint) {
            (Some(v), Some(decoded)) => {
                self.note_cached_table(table);
                let mut cshard = self.cache[shard].write();
                let m = cshard.entry(table).or_default();
                if m.len() >= self.cache_capacity {
                    m.clear();
                }
                m.insert(
                    Bytes::copy_from_slice(key),
                    CacheSlot {
                        value: v.clone(),
                        decoded,
                    },
                );
            }
            _ => {
                // Unhinted put or delete: drop any stale decode. Take the
                // cheap read-check first — most tables are never cached.
                let stale = self.cache[shard]
                    .read()
                    .get(&table)
                    .is_some_and(|m| m.contains_key(key));
                if stale {
                    if let Some(m) = self.cache[shard].write().get_mut(&table) {
                        m.remove(key);
                    }
                }
            }
        }
    }

    /// True when the decoded-entity cache is active.
    pub fn entity_cache_enabled(&self) -> bool {
        self.cache_enabled
    }

    /// Looks up the decoded entity cached for `(table, key)`, valid only
    /// if `bytes` is the exact stored buffer the decode came from. Counts
    /// a hit or miss either way (callers decode on `None`).
    // lint: allow(panic-path)
    pub fn cache_lookup(&self, table: TableId, key: &[u8], bytes: &Bytes) -> Option<CachedEntity> {
        if !self.cache_enabled {
            return None;
        }
        let shard = self.shard_of(table, key);
        // Empty buffers may share a dangling pointer, so they are never
        // treated as cache-valid (no real entity encodes to zero bytes).
        let hit = self.cache[shard].read().get(&table).and_then(|m| {
            m.get(key).and_then(|slot| {
                (!bytes.is_empty() && slot.value.as_ptr() == bytes.as_ptr())
                    .then(|| CachedEntity::clone(&slot.decoded))
            })
        });
        match hit {
            Some(_) => self.counters.cache_hits.fetch_add(1, Ordering::Relaxed),
            None => self.counters.cache_misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Installs a read-through decode for `(table, key)`. `bytes` must be
    /// the stored buffer the decode came from.
    // lint: allow(panic-path)
    pub fn cache_store(&self, table: TableId, key: &[u8], bytes: Bytes, decoded: CachedEntity) {
        if !self.cache_enabled {
            return;
        }
        self.note_cached_table(table);
        let shard = self.shard_of(table, key);
        let mut cshard = self.cache[shard].write();
        let m = cshard.entry(table).or_default();
        if m.len() >= self.cache_capacity {
            m.clear();
        }
        m.insert(
            Bytes::copy_from_slice(key),
            CacheSlot {
                value: bytes,
                decoded,
            },
        );
    }

    /// Single-key put (a one-op batch).
    pub fn put(&self, table: TableId, key: Vec<u8>, value: Vec<u8>) -> Result<()> {
        let mut b = WriteBatch::with_capacity(1);
        b.put(table, key, value);
        self.commit(b)
    }

    /// Single-key delete (a one-op batch).
    pub fn delete(&self, table: TableId, key: Vec<u8>) -> Result<()> {
        let mut b = WriteBatch::with_capacity(1);
        b.delete(table, key);
        self.commit(b)
    }

    /// Point lookup. The returned [`Bytes`] is a zero-copy handle.
    // lint: allow(panic-path)
    pub fn get(&self, table: TableId, key: &[u8]) -> Result<Option<Bytes>> {
        self.counters.gets.fetch_add(1, Ordering::Relaxed);
        let shard = self.shards[self.shard_of(table, key)].read();
        Ok(shard.get(&table).and_then(|t| t.get(key)).cloned())
    }

    /// True if `key` exists in `table`.
    pub fn contains(&self, table: TableId, key: &[u8]) -> bool {
        let shard = self.shards[self.shard_of(table, key)].read();
        shard
            .get(&table)
            .map(|t| t.contains_key(key))
            .unwrap_or(false)
    }

    /// All pairs whose key starts with `prefix`, in key order. Keys and
    /// values are zero-copy handles onto the stored buffers.
    pub fn scan_prefix(&self, table: TableId, prefix: &[u8]) -> Vec<(Bytes, Bytes)> {
        self.counters.scans.fetch_add(1, Ordering::Relaxed);
        let guards = self.lock_table_shards(table);
        merged_range(&guards, table, prefix, None)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Pairs in `[from, to)` (`to = None` means unbounded), in key order.
    /// Keys and values are zero-copy handles onto the stored buffers.
    pub fn scan_range(
        &self,
        table: TableId,
        from: &[u8],
        to: Option<&[u8]>,
    ) -> Vec<(Bytes, Bytes)> {
        self.counters.scans.fetch_add(1, Ordering::Relaxed);
        let guards = self.lock_table_shards(table);
        merged_range(&guards, table, from, to)
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Every pair in `table`, in key order.
    pub fn scan_all(&self, table: TableId) -> Vec<(Bytes, Bytes)> {
        self.scan_range(table, &[], None)
    }

    /// Streams the pairs of `table` in `[from, to)` through `f` in key
    /// order, without materializing the result set. `f` returns whether to
    /// keep going. The table's shards stay read-locked for the duration,
    /// so the view is batch-atomic — keep callbacks short.
    pub fn for_each_range<F>(&self, table: TableId, from: &[u8], to: Option<&[u8]>, mut f: F)
    where
        F: FnMut(&Bytes, &Bytes) -> bool,
    {
        self.counters.scans.fetch_add(1, Ordering::Relaxed);
        let guards = self.lock_table_shards(table);
        for (k, v) in merged_range(&guards, table, from, to) {
            if !f(k, v) {
                break;
            }
        }
    }

    /// Number of keys in `table`. Locks only the table's shards.
    pub fn count(&self, table: TableId) -> usize {
        let guards = self.lock_table_shards(table);
        guards
            .iter()
            .filter_map(|g| g.get(&table))
            .map(|t| t.len())
            .sum()
    }

    /// The largest key in `table` (used to resume id counters on reopen).
    /// Locks only the table's shards.
    pub fn last_key(&self, table: TableId) -> Option<Bytes> {
        let guards = self.lock_table_shards(table);
        guards
            .iter()
            .filter_map(|g| g.get(&table))
            .filter_map(|t| t.keys().next_back())
            .max()
            .cloned()
    }

    /// Ids of every table that has ever been written, ascending.
    pub fn table_ids(&self) -> Vec<TableId> {
        let guards = self.lock_all();
        tables_union(&guards).into_iter().collect()
    }

    /// Order-independent digest of the full logical contents (every table,
    /// every pair, in key order). Shard-count invariant; used by the
    /// determinism tests to compare stores byte-for-byte.
    pub fn content_checksum(&self) -> u64 {
        let guards = self.lock_all();
        let mut h = FxHasher::default();
        for table in tables_union(&guards) {
            h.write_u16(table.0);
            for (k, v) in merged_range(&guards, table, &[], None) {
                h.write_usize(k.len());
                h.write(k);
                h.write_usize(v.len());
                h.write(v);
            }
        }
        h.finish()
    }

    /// Writes a snapshot of every table and starts a fresh WAL.
    pub fn checkpoint(&self) -> Result<()> {
        if self.opts.durability == Durability::InMemory {
            return Err(StoreError::NotDurable);
        }
        // Quiesce: raise the checkpoint flag so new batches hold off
        // enqueueing (bounding this wait even under sustained traffic),
        // then wait for the in-flight work to drain. Holding the commit
        // mutex afterwards keeps enqueues blocked for the duration of the
        // checkpoint, so the snapshot is a clean LSN cut.
        let mut state = self.commit_mu.lock();
        while state.checkpoint_waiting {
            self.commit_cv.wait(&mut state); // serialize checkpointers
        }
        state.checkpoint_waiting = true;
        while state.leader_active || !state.queue.is_empty() {
            self.commit_cv.wait(&mut state);
        }
        let last = state.applied_lsn;
        let result = {
            let mut log = self.log_mu.lock();
            self.checkpoint_locked(&mut log, last)
        };
        state.checkpoint_waiting = false;
        self.commit_cv.notify_all();
        result
    }

    /// Streams every shard's tables straight into the snapshot writer —
    /// no intermediate clone of the memtable contents. Readers stay
    /// unblocked (shards are only read-locked); writers are already
    /// quiesced by the caller (manual checkpoint) or are the group leader
    /// itself (auto-checkpoint).
    fn checkpoint_locked(&self, log: &mut LogState, last_lsn: u64) -> Result<()> {
        let dir = log.dir.clone().ok_or(StoreError::NotDurable)?;
        // Make sure every WAL frame covered by the snapshot is on disk
        // before the snapshot replaces them.
        if let Some(w) = log.wal.as_mut() {
            w.sync()?;
            self.counters.wal_syncs.fetch_add(1, Ordering::Relaxed);
        }
        {
            let guards = self.lock_all();
            let tables = tables_union(&guards);
            let mut writer = snapshot::SnapshotWriter::create(
                &snapshot_path(&dir),
                last_lsn,
                tables.len() as u64,
            )?;
            for table in tables {
                let entries: u64 = guards
                    .iter()
                    .filter_map(|g| g.get(&table))
                    .map(|t| t.len() as u64)
                    .sum();
                writer.begin_table(table, entries)?;
                for (k, v) in merged_range(&guards, table, &[], None) {
                    writer.entry(k, v)?;
                }
            }
            writer.finish()?;
        }
        log.wal = Some(wal::Wal::create(&wal_path(&dir))?);
        log.commits_since_checkpoint = 0;
        log.commits_since_sync = 0;
        log.unsynced_commits = 0;
        self.counters.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Flushes and fsyncs the WAL regardless of the durability level.
    pub fn sync(&self) -> Result<()> {
        let mut log = self.log_mu.lock();
        if let Some(w) = log.wal.as_mut() {
            w.sync()?;
            self.counters.wal_syncs.fetch_add(1, Ordering::Relaxed);
        }
        log.commits_since_sync = 0;
        log.unsynced_commits = 0;
        Ok(())
    }

    /// Activity and size counters.
    pub fn stats(&self) -> StoreStats {
        let (tables, keys) = {
            let guards = self.lock_all();
            let keys = guards
                .iter()
                .map(|g| g.values().map(|t| t.len()).sum::<usize>())
                .sum();
            (tables_union(&guards).len(), keys)
        };
        let (recovered_entries, recovered_torn_tail, wal_unsynced_commits) = {
            let log = self.log_mu.lock();
            (
                log.recovered_entries,
                log.recovered_torn_tail,
                log.unsynced_commits,
            )
        };
        StoreStats {
            gets: self.counters.gets.load(Ordering::Relaxed),
            scans: self.counters.scans.load(Ordering::Relaxed),
            commits: self.counters.commits.load(Ordering::Relaxed),
            ops_applied: self.counters.ops_applied.load(Ordering::Relaxed),
            checkpoints: self.counters.checkpoints.load(Ordering::Relaxed),
            group_commits: self.counters.group_commits.load(Ordering::Relaxed),
            cache_hits: self.counters.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.counters.cache_misses.load(Ordering::Relaxed),
            wal_syncs: self.counters.wal_syncs.load(Ordering::Relaxed),
            wal_unsynced_commits,
            snapshot_captures: self.counters.snapshot_captures.load(Ordering::Relaxed),
            epoch: self.epoch(),
            tables,
            keys,
            shards: self.shards.len(),
            recovered_entries,
            recovered_torn_tail,
        }
    }

    /// LSN of the last batch applied to the memtables, read without any
    /// lock. Monotonic; equal to the epoch a [`Store::read_snapshot`]
    /// call would capture *at some point* during this call — use it as a
    /// cheap staleness probe ("has anything committed since my snapshot's
    /// epoch?"), not as a fence.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Captures a point-in-time read snapshot of every table.
    ///
    /// Cost: all shard read locks are held just long enough to clone each
    /// shard's *table directory* — `O(shards × tables)` [`Arc`] clones,
    /// never the pairs themselves (copy-on-write: a later commit that
    /// touches a captured table clones only that table). The capture
    /// linearizes against the group leader's applies, so the returned
    /// view contains exactly the batches `1..=epoch` and nothing else,
    /// byte-identical to a quiesced store at that LSN. Once this method
    /// returns, the snapshot never blocks writers — it holds no lock,
    /// only shared table references.
    pub fn read_snapshot(&self) -> crate::mvcc::StoreSnapshot {
        let guards = self.lock_all();
        let epoch = self.epoch.load(Ordering::Acquire);
        let shards: Vec<Memtable> = guards.iter().map(|g| (**g).clone()).collect();
        drop(guards);
        self.counters
            .snapshot_captures
            .fetch_add(1, Ordering::Relaxed);
        crate::mvcc::StoreSnapshot::assemble(epoch, shards)
    }

    /// True when the store persists to disk.
    pub fn is_durable(&self) -> bool {
        self.opts.durability != Durability::InMemory
    }

    /// Number of memtable shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

/// Recovery-time apply onto the single pre-shard memtable (no cache, no
/// presence — [`Store::assemble`] derives both from the final contents).
fn apply_ops(tables: &mut Memtable, ops: Vec<Op>) {
    for op in ops {
        match op {
            Op::Put { table, key, value } => {
                Arc::make_mut(tables.entry(table).or_default())
                    .insert(Bytes::from(key), Bytes::from(value));
            }
            Op::Delete { table, key } => {
                if let Some(t) = tables.get_mut(&table) {
                    Arc::make_mut(t).remove(key.as_slice());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TestDir;
    use std::sync::Arc;

    const T1: TableId = TableId(1);
    const T2: TableId = TableId(2);

    #[test]
    fn in_memory_crud() {
        let s = Store::in_memory();
        s.put(T1, b"a".to_vec(), b"1".to_vec()).unwrap();
        s.put(T1, b"b".to_vec(), b"2".to_vec()).unwrap();
        assert_eq!(s.get(T1, b"a").unwrap().unwrap().as_ref(), b"1");
        assert!(s.get(T2, b"a").unwrap().is_none());
        s.put(T1, b"a".to_vec(), b"9".to_vec()).unwrap();
        assert_eq!(s.get(T1, b"a").unwrap().unwrap().as_ref(), b"9");
        s.delete(T1, b"a".to_vec()).unwrap();
        assert!(s.get(T1, b"a").unwrap().is_none());
        assert_eq!(s.count(T1), 1);
    }

    #[test]
    fn scans_are_ordered_and_bounded() {
        let s = Store::in_memory();
        for i in [5u8, 1, 9, 3, 7] {
            s.put(T1, vec![i], vec![i * 10]).unwrap();
        }
        let all = s.scan_all(T1);
        let keys: Vec<u8> = all.iter().map(|(k, _)| k[0]).collect();
        assert_eq!(keys, vec![1, 3, 5, 7, 9]);

        let mid = s.scan_range(T1, &[3], Some(&[8]));
        let keys: Vec<u8> = mid.iter().map(|(k, _)| k[0]).collect();
        assert_eq!(keys, vec![3, 5, 7]);
    }

    #[test]
    fn prefix_scan_stops_at_prefix_end() {
        let s = Store::in_memory();
        s.put(T1, b"ab1".to_vec(), vec![]).unwrap();
        s.put(T1, b"ab2".to_vec(), vec![]).unwrap();
        s.put(T1, b"ac0".to_vec(), vec![]).unwrap();
        let hits = s.scan_prefix(T1, b"ab");
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn streaming_scan_matches_collected_scan_and_stops_early() {
        let s = Store::in_memory_sharded(4);
        for i in 0..50u8 {
            s.put(T1, vec![i], vec![i]).unwrap();
        }
        let mut streamed = Vec::new();
        s.for_each_range(T1, &[], None, |k, v| {
            streamed.push((k.clone(), v.clone()));
            true
        });
        assert_eq!(streamed, s.scan_all(T1));

        let mut first_three = Vec::new();
        s.for_each_range(T1, &[], None, |k, _| {
            first_three.push(k[0]);
            first_three.len() < 3
        });
        assert_eq!(first_three, vec![0, 1, 2]);
    }

    #[test]
    fn batch_commit_is_atomic_across_tables() {
        let s = Store::in_memory();
        let mut b = WriteBatch::new();
        b.put(T1, b"k".to_vec(), b"v".to_vec());
        b.put(T2, b"idx".to_vec(), b"k".to_vec());
        s.commit(b).unwrap();
        assert!(s.contains(T1, b"k"));
        assert!(s.contains(T2, b"idx"));
        assert_eq!(s.stats().commits, 1);
        assert_eq!(s.stats().ops_applied, 2);
    }

    #[test]
    fn durable_store_recovers_from_wal() {
        let dir = TestDir::new("db-recover");
        {
            let s = Store::open(dir.path(), StoreOptions::default()).unwrap();
            s.put(T1, b"x".to_vec(), b"1".to_vec()).unwrap();
            s.put(T1, b"y".to_vec(), b"2".to_vec()).unwrap();
            s.delete(T1, b"x".to_vec()).unwrap();
            s.sync().unwrap();
        }
        let s = Store::open(dir.path(), StoreOptions::default()).unwrap();
        assert!(s.get(T1, b"x").unwrap().is_none());
        assert_eq!(s.get(T1, b"y").unwrap().unwrap().as_ref(), b"2");
        assert_eq!(s.stats().recovered_entries, 3);
    }

    #[test]
    fn checkpoint_then_recover_uses_snapshot_plus_tail() {
        let dir = TestDir::new("db-ckpt");
        {
            let s = Store::open(dir.path(), StoreOptions::default()).unwrap();
            for i in 0..10u8 {
                s.put(T1, vec![i], vec![i]).unwrap();
            }
            s.checkpoint().unwrap();
            // Post-checkpoint writes land in the fresh WAL.
            s.put(T1, vec![100], vec![100]).unwrap();
            s.sync().unwrap();
        }
        let s = Store::open(dir.path(), StoreOptions::default()).unwrap();
        assert_eq!(s.count(T1), 11);
        // Only the post-checkpoint entry should have been replayed.
        assert_eq!(s.stats().recovered_entries, 1);
    }

    #[test]
    fn torn_wal_tail_loses_only_the_torn_batch() {
        let dir = TestDir::new("db-torn");
        {
            let s = Store::open(
                dir.path(),
                StoreOptions {
                    durability: Durability::Sync,
                    ..StoreOptions::default()
                },
            )
            .unwrap();
            s.put(T1, b"keep".to_vec(), b"1".to_vec()).unwrap();
            s.put(T1, b"lost".to_vec(), b"2".to_vec()).unwrap();
        }
        // Tear the last frame.
        let wal = dir.path().join("db.wal");
        let data = std::fs::read(&wal).unwrap();
        std::fs::write(&wal, &data[..data.len() - 2]).unwrap();

        let s = Store::open(dir.path(), StoreOptions::default()).unwrap();
        assert!(s.contains(T1, b"keep"));
        assert!(!s.contains(T1, b"lost"));
        assert!(s.stats().recovered_torn_tail);

        // The store keeps working after tail truncation.
        s.put(T1, b"new".to_vec(), b"3".to_vec()).unwrap();
        s.sync().unwrap();
        let s2 = Store::open(dir.path(), StoreOptions::default()).unwrap();
        assert!(s2.contains(T1, b"new"));
    }

    #[test]
    fn auto_checkpoint_triggers() {
        let dir = TestDir::new("db-auto");
        let s = Store::open(
            dir.path(),
            StoreOptions {
                durability: Durability::Buffered,
                checkpoint_every: 5,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        for i in 0..12u8 {
            s.put(T1, vec![i], vec![i]).unwrap();
        }
        assert_eq!(s.stats().checkpoints, 2);
        drop(s);
        let s = Store::open(dir.path(), StoreOptions::default()).unwrap();
        assert_eq!(s.count(T1), 12);
    }

    #[test]
    fn empty_batch_commit_is_a_noop() {
        let s = Store::in_memory();
        s.commit(WriteBatch::new()).unwrap();
        assert_eq!(s.stats().commits, 0);
    }

    #[test]
    fn checkpoint_on_in_memory_store_is_rejected() {
        let s = Store::in_memory();
        assert!(matches!(s.checkpoint(), Err(StoreError::NotDurable)));
    }

    #[test]
    fn concurrent_readers_with_writer() {
        let s = Arc::new(Store::in_memory());
        let writer = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for i in 0..1000u32 {
                    s.put(T1, i.to_be_bytes().to_vec(), vec![1]).unwrap();
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let mut last = 0;
                    for _ in 0..200 {
                        let n = s.count(T1);
                        assert!(n >= last, "count must be monotone under puts");
                        last = n;
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(s.count(T1), 1000);
    }

    #[test]
    fn frame_payload_matches_serbin_wal_entry() {
        // commit() splices `varint(lsn) ++ serbin(ops)` together outside
        // the lock; recovery decodes a full `WalEntry`. The two layouts
        // must stay byte-identical.
        for lsn in [0u64, 1, 127, 128, u32::MAX as u64 + 7] {
            let ops = vec![
                Op::Put {
                    table: T1,
                    key: vec![1, 2],
                    value: vec![3; 20],
                },
                Op::Delete {
                    table: T2,
                    key: vec![9],
                },
            ];
            let spliced = frame_payload(lsn, &serbin::to_bytes(&ops).unwrap());
            let direct = serbin::to_bytes(&WalEntry {
                lsn,
                ops: ops.clone(),
            })
            .unwrap();
            assert_eq!(spliced, direct, "lsn={lsn}");
            let back: WalEntry = serbin::from_bytes(&spliced).unwrap();
            assert_eq!(back.lsn, lsn);
            assert_eq!(back.ops, ops);
        }
    }

    #[test]
    fn sharded_store_reads_back_every_key() {
        for shards in [1usize, 2, 3, 16] {
            let s = Store::in_memory_sharded(shards);
            assert_eq!(s.shard_count(), shards);
            for i in 0..200u32 {
                s.put(T1, i.to_be_bytes().to_vec(), i.to_le_bytes().to_vec())
                    .unwrap();
            }
            for i in 0..200u32 {
                assert_eq!(
                    s.get(T1, &i.to_be_bytes()).unwrap().unwrap().as_ref(),
                    i.to_le_bytes()
                );
            }
            let all = s.scan_all(T1);
            assert_eq!(all.len(), 200);
            assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "scan stays sorted");
            assert_eq!(s.count(T1), 200);
            assert_eq!(
                s.last_key(T1).unwrap().as_ref(),
                199u32.to_be_bytes().as_slice()
            );
        }
    }

    #[test]
    fn count_and_last_key_lock_only_presence_shards() {
        // Regression for the lock_all → presence-mask change: single-table
        // queries must stay correct for sparse tables (one shard), dense
        // tables (all shards), unknown tables (no shards), and across
        // deletes that empty a shard (presence is conservative).
        for shards in [1usize, 2, 8, 16] {
            let s = Store::in_memory_sharded(shards);
            assert_eq!(s.count(T1), 0);
            assert!(s.last_key(T1).is_none());

            // One key: exactly one shard can hold T1.
            s.put(T1, b"solo".to_vec(), vec![1]).unwrap();
            assert_eq!(s.count(T1), 1);
            assert_eq!(s.last_key(T1).unwrap().as_ref(), b"solo");

            // Dense: every shard ends up holding some T1 key.
            for i in 0..200u32 {
                s.put(T1, i.to_be_bytes().to_vec(), vec![0]).unwrap();
                s.put(T2, i.to_be_bytes().to_vec(), vec![0]).unwrap();
            }
            assert_eq!(s.count(T1), 201);
            assert_eq!(s.count(T2), 200);
            assert_eq!(s.last_key(T1).unwrap().as_ref(), b"solo");
            assert_eq!(
                s.last_key(T2).unwrap().as_ref(),
                199u32.to_be_bytes().as_slice()
            );

            // Deletes keep answers correct even though presence never
            // shrinks.
            for i in 0..200u32 {
                s.delete(T1, i.to_be_bytes().to_vec()).unwrap();
            }
            assert_eq!(s.count(T1), 1);
            assert_eq!(s.last_key(T1).unwrap().as_ref(), b"solo");
            s.delete(T1, b"solo".to_vec()).unwrap();
            assert_eq!(s.count(T1), 0);
            assert!(s.last_key(T1).is_none());
            assert_eq!(s.count(T2), 200, "T2 untouched by T1 deletes");
        }
    }

    #[test]
    fn presence_survives_recovery_and_reshard() {
        let dir = TestDir::new("db-presence");
        {
            let s = Store::open(
                dir.path(),
                StoreOptions {
                    shards: 4,
                    ..StoreOptions::default()
                },
            )
            .unwrap();
            for i in 0..50u8 {
                s.put(T1, vec![i], vec![i]).unwrap();
            }
            s.sync().unwrap();
        }
        let s = Store::open(
            dir.path(),
            StoreOptions {
                shards: 8,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        assert_eq!(s.count(T1), 50);
        assert_eq!(s.last_key(T1).unwrap().as_ref(), &[49u8]);
        assert_eq!(s.scan_all(T1).len(), 50);
    }

    #[test]
    fn content_checksum_is_shard_count_invariant() {
        let mut digests = Vec::new();
        for shards in [1usize, 2, 16] {
            let s = Store::in_memory_sharded(shards);
            for i in 0..100u32 {
                s.put(T1, i.to_be_bytes().to_vec(), vec![i as u8; 3])
                    .unwrap();
                s.put(T2, vec![i as u8], vec![1]).unwrap();
            }
            s.delete(T2, vec![7]).unwrap();
            digests.push(s.content_checksum());
        }
        assert_eq!(digests[0], digests[1]);
        assert_eq!(digests[1], digests[2]);
        assert_eq!(
            Store::in_memory_sharded(4).table_ids(),
            Vec::<TableId>::new()
        );
    }

    #[test]
    fn reopen_with_a_different_shard_count_keeps_data() {
        let dir = TestDir::new("db-reshard");
        {
            let s = Store::open(
                dir.path(),
                StoreOptions {
                    shards: 4,
                    ..StoreOptions::default()
                },
            )
            .unwrap();
            for i in 0..50u8 {
                s.put(T1, vec![i], vec![i]).unwrap();
            }
            s.checkpoint().unwrap();
            s.put(T1, vec![200], vec![200]).unwrap();
            s.sync().unwrap();
        }
        let s = Store::open(
            dir.path(),
            StoreOptions {
                shards: 2,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        assert_eq!(s.count(T1), 51);
        assert_eq!(s.stats().shards, 2);
    }

    #[test]
    fn group_commit_absorbs_concurrent_writers() {
        let dir = TestDir::new("db-group");
        let s = Arc::new(
            Store::open(
                dir.path(),
                StoreOptions {
                    durability: Durability::Buffered,
                    ..StoreOptions::default()
                },
            )
            .unwrap(),
        );
        let threads: Vec<_> = (0..8u8)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..50u8 {
                        let mut b = WriteBatch::new();
                        b.put(T1, vec![t, i], vec![i]);
                        b.put(T2, vec![t, i], vec![t]);
                        s.commit(b).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let stats = s.stats();
        assert_eq!(stats.commits, 400);
        assert_eq!(stats.ops_applied, 800);
        assert!(
            stats.group_commits <= stats.commits,
            "groups never exceed commits"
        );
        assert_eq!(s.count(T1), 400);
        s.sync().unwrap();
        drop(s);
        let s = Store::open(dir.path(), StoreOptions::default()).unwrap();
        assert_eq!(s.count(T1), 400);
        assert_eq!(s.count(T2), 400);
    }

    #[test]
    fn scans_never_observe_half_a_batch() {
        // Each batch writes a *pair* of keys to the same table; a scan
        // (which locks every presence shard at once) must always see an
        // even count, or it observed half a batch.
        let s = Arc::new(Store::in_memory_sharded(4));
        let writer = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for i in 0..500u32 {
                    let mut b = WriteBatch::new();
                    b.put(T1, [i.to_be_bytes().as_slice(), &[0]].concat(), vec![1]);
                    b.put(T1, [i.to_be_bytes().as_slice(), &[1]].concat(), vec![1]);
                    s.commit(b).unwrap();
                }
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        let n = s.scan_all(T1).len();
                        assert_eq!(n % 2, 0, "scan observed a torn batch ({n} keys)");
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
    }

    #[test]
    fn every_sync_policy_commits_and_recovers() {
        for (name, policy) in [
            ("always", SyncPolicy::Always),
            ("every0", SyncPolicy::EveryN(0)),
            ("every3", SyncPolicy::EveryN(3)),
            ("batched", SyncPolicy::Batched),
        ] {
            let dir = TestDir::new(&format!("db-sync-{name}"));
            {
                let s = Store::open(
                    dir.path(),
                    StoreOptions {
                        durability: Durability::Sync,
                        sync_policy: policy,
                        ..StoreOptions::default()
                    },
                )
                .unwrap();
                for i in 0..10u8 {
                    s.put(T1, vec![i], vec![i]).unwrap();
                }
            }
            let s = Store::open(dir.path(), StoreOptions::default()).unwrap();
            assert_eq!(s.count(T1), 10, "policy {name} lost commits");
            assert_eq!(s.stats().recovered_entries, 10);
        }
    }

    #[test]
    fn batched_policy_syncs_when_the_queue_drains() {
        // Single-writer: every group sees an empty queue, so Batched must
        // fsync like Always — i.e. the data survives a reopen without an
        // explicit sync() and without relying on Drop-order luck.
        let dir = TestDir::new("db-batched-drain");
        let s = Store::open(
            dir.path(),
            StoreOptions {
                durability: Durability::Sync,
                sync_policy: SyncPolicy::Batched,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        s.put(T1, b"k".to_vec(), b"v".to_vec()).unwrap();
        // No sync() here on purpose.
        drop(s);
        let s = Store::open(dir.path(), StoreOptions::default()).unwrap();
        assert!(s.contains(T1, b"k"));
    }

    #[test]
    fn batched_policy_fsyncs_every_uncontended_group() {
        // Regression for the queue-depth hint: with a single writer the
        // queue is empty at every group's decision point, so Batched must
        // fsync each group — a leader may only skip the fsync for frames
        // it just appended when real followers are queued to carry it.
        let dir = TestDir::new("db-batched-every-group");
        let s = Store::open(
            dir.path(),
            StoreOptions {
                durability: Durability::Sync,
                sync_policy: SyncPolicy::Batched,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        for i in 0..20u8 {
            s.put(T1, vec![i], vec![i]).unwrap();
        }
        let stats = s.stats();
        assert_eq!(
            stats.wal_syncs, stats.group_commits,
            "every uncontended Batched group must fsync"
        );
        assert_eq!(stats.wal_unsynced_commits, 0);
    }

    #[test]
    fn batched_policy_leaves_no_unsynced_tail_after_a_burst() {
        // The Batched contract: once every commit has returned and the
        // queue is empty, the WAL is fully fsynced. The fix derives the
        // leader's defer/fsync decision from the queue it actually sees
        // under the commit mutex, so the last group of any burst always
        // fsyncs — this must hold for every interleaving of the burst.
        let dir = TestDir::new("db-batched-burst");
        let s = Arc::new(
            Store::open(
                dir.path(),
                StoreOptions {
                    durability: Durability::Sync,
                    sync_policy: SyncPolicy::Batched,
                    ..StoreOptions::default()
                },
            )
            .unwrap(),
        );
        let threads: Vec<_> = (0..8u8)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..50u8 {
                        let mut b = WriteBatch::new();
                        b.put(T1, vec![t, i], vec![i]);
                        s.commit(b).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let stats = s.stats();
        assert_eq!(stats.commits, 400);
        assert_eq!(
            stats.wal_unsynced_commits, 0,
            "a quiescent Batched store must be fully fsynced"
        );
        assert!(stats.wal_syncs >= 1);
        // And the data really is durable without any explicit sync().
        drop(s);
        let s = Store::open(dir.path(), StoreOptions::default()).unwrap();
        assert_eq!(s.count(T1), 400);
    }

    #[test]
    fn presence_answers_stay_correct_when_a_batch_empties_a_table() {
        // Regression for the presence-mask fast paths: a table whose only
        // rows were deleted keeps its mask raised forever, so `count`,
        // `last_key` and the scans must answer from the (empty) shard
        // contents, never from the mask — including when the put and the
        // delete ride in the *same* batch.
        for shards in [1usize, 4, 16] {
            let s = Store::in_memory_sharded(shards);

            // Same-batch put + delete: the batch raises presence bits but
            // commits an empty table.
            let mut b = WriteBatch::new();
            b.put(T1, b"a".to_vec(), vec![1]);
            b.put(T1, b"b".to_vec(), vec![2]);
            b.delete(T1, b"a".to_vec());
            b.delete(T1, b"b".to_vec());
            s.commit(b).unwrap();
            assert_eq!(s.count(T1), 0, "shards={shards}");
            assert!(s.last_key(T1).is_none(), "shards={shards}");
            assert!(s.scan_all(T1).is_empty());
            assert!(!s.contains(T1, b"a"));

            // Rows spread over every shard, then emptied by one batch.
            for i in 0..64u32 {
                s.put(T1, i.to_be_bytes().to_vec(), vec![0]).unwrap();
            }
            let mut b = WriteBatch::new();
            for i in 0..64u32 {
                b.delete(T1, i.to_be_bytes().to_vec());
            }
            s.commit(b).unwrap();
            assert_eq!(s.count(T1), 0);
            assert!(s.last_key(T1).is_none());
            assert!(s.scan_range(T1, &[], None).is_empty());
            let mut streamed = 0;
            s.for_each_range(T1, &[], None, |_, _| {
                streamed += 1;
                true
            });
            assert_eq!(streamed, 0);

            // Delete + re-insert in one batch: answers must reflect the
            // batch's net effect, in op order.
            s.put(T1, b"x".to_vec(), vec![1]).unwrap();
            let mut b = WriteBatch::new();
            b.delete(T1, b"x".to_vec());
            b.put(T1, b"y".to_vec(), vec![2]);
            s.commit(b).unwrap();
            assert_eq!(s.count(T1), 1);
            assert_eq!(s.last_key(T1).unwrap().as_ref(), b"y");

            // The emptied-then-reused table keeps working.
            s.delete(T1, b"y".to_vec()).unwrap();
            assert!(s.last_key(T1).is_none());
            s.put(T1, b"z".to_vec(), vec![3]).unwrap();
            assert_eq!(s.count(T1), 1);
            assert_eq!(s.last_key(T1).unwrap().as_ref(), b"z");
        }
    }

    #[test]
    fn cache_write_through_and_invalidation() {
        // The CI matrix re-runs the whole suite with the cache force-
        // disabled; this test *is about* cache behaviour, so it only runs
        // when the cache can be on (`ITAG_NO_CACHE=0` keeps it on — the
        // gate shares `assemble`'s parser rather than keying on mere
        // presence). `cache_can_be_disabled_by_option` covers the
        // disabled contract.
        if env_disables_cache() {
            return;
        }
        let s = Store::in_memory();
        assert!(s.entity_cache_enabled());

        // Read-through: first lookup misses, install, second hits.
        s.put(T1, b"k".to_vec(), b"v1".to_vec()).unwrap();
        let bytes = s.get(T1, b"k").unwrap().unwrap();
        assert!(s.cache_lookup(T1, b"k", &bytes).is_none());
        s.cache_store(T1, b"k", bytes.clone(), Arc::new(41u32));
        let hit = s.cache_lookup(T1, b"k", &bytes).unwrap();
        assert_eq!(*hit.downcast::<u32>().unwrap(), 41);

        // An unhinted overwrite invalidates.
        s.put(T1, b"k".to_vec(), b"v2".to_vec()).unwrap();
        let bytes2 = s.get(T1, b"k").unwrap().unwrap();
        assert!(s.cache_lookup(T1, b"k", &bytes2).is_none());

        // A write-through put is immediately visible as a hit.
        let mut b = WriteBatch::new();
        b.put_cached(T1, b"k".to_vec(), b"v3".to_vec(), Arc::new(43u32));
        s.commit(b).unwrap();
        let bytes3 = s.get(T1, b"k").unwrap().unwrap();
        let hit = s.cache_lookup(T1, b"k", &bytes3).unwrap();
        assert_eq!(*hit.downcast::<u32>().unwrap(), 43);

        // Deletes invalidate too.
        s.delete(T1, b"k".to_vec()).unwrap();
        assert!(s.get(T1, b"k").unwrap().is_none());

        let stats = s.stats();
        assert!(stats.cache_hits >= 2);
        assert!(stats.cache_misses >= 2);
    }

    #[test]
    fn cache_can_be_disabled_by_option() {
        let s = Store::in_memory_with(StoreOptions {
            entity_cache: false,
            ..StoreOptions::default()
        });
        assert!(!s.entity_cache_enabled());
        s.put(T1, b"k".to_vec(), b"v".to_vec()).unwrap();
        let bytes = s.get(T1, b"k").unwrap().unwrap();
        s.cache_store(T1, b"k", bytes.clone(), Arc::new(1u8));
        assert!(s.cache_lookup(T1, b"k", &bytes).is_none());
        let stats = s.stats();
        assert_eq!((stats.cache_hits, stats.cache_misses), (0, 0));
    }

    #[test]
    fn cache_eviction_keeps_answers_correct() {
        let s = Store::in_memory_with(StoreOptions {
            entity_cache_capacity: 4,
            ..StoreOptions::default()
        });
        for i in 0..64u32 {
            let mut b = WriteBatch::new();
            b.put_cached(T1, i.to_be_bytes().to_vec(), vec![i as u8], Arc::new(i));
            s.commit(b).unwrap();
        }
        for i in 0..64u32 {
            let key = i.to_be_bytes();
            let bytes = s.get(T1, &key).unwrap().unwrap();
            assert_eq!(bytes.as_ref(), &[i as u8]);
            if let Some(hit) = s.cache_lookup(T1, &key, &bytes) {
                assert_eq!(*hit.downcast::<u32>().unwrap(), i);
            }
        }
    }
}
