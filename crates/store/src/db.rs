//! The [`Store`]: sharded ordered key/value tables + group-commit WAL +
//! snapshots.
//!
//! Concurrency model: the memtable set is **hash-partitioned into N
//! shards**, each behind its own `parking_lot::RwLock`, so readers on
//! different shards never contend. Durability is a **single group-commit
//! WAL**: concurrent `commit` calls enqueue their batches under a small
//! mutex, one caller becomes the group leader, appends every queued frame
//! with one flush/fsync, applies the group to the shards in LSN order, and
//! wakes the followers. With one writer the path degenerates to the classic
//! per-commit WAL append; under contention the fsync cost is amortised
//! across the whole group.
//!
//! Consistency: a committed batch is applied while holding the write locks
//! of every shard it touches, so point reads and full scans (which lock all
//! shards at once) never observe half a batch. Reads return
//! [`bytes::Bytes`] so monitors copy nothing.

use crate::codec::FxHasher;
use crate::error::{Result, StoreError};
use crate::txn::{Op, WalEntry, WriteBatch};
use crate::{serbin, snapshot, wal, TableId};
use bytes::Bytes;
use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::hash::Hasher;
use std::ops::Bound;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

/// How hard the store tries to make each commit durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// Pure in-memory operation; no files at all. Used by simulations and
    /// benches where the dataset is regenerated per run.
    InMemory,
    /// WAL appends are flushed to the OS per commit group but not fsynced;
    /// a process crash loses nothing, a power failure may lose the tail.
    Buffered,
    /// WAL appends are fsynced per commit group.
    Sync,
}

/// Default number of hash partitions (see [`StoreOptions::shards`]).
pub const DEFAULT_SHARDS: usize = 8;

/// Tuning knobs for [`Store::open`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    pub durability: Durability,
    /// Auto-checkpoint after this many committed batches (0 = manual only).
    pub checkpoint_every: u64,
    /// Number of hash-partitioned memtable shards (min 1). The on-disk
    /// format is shard-agnostic: a database written with one shard count
    /// reopens fine under another.
    pub shards: usize,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            durability: Durability::Buffered,
            checkpoint_every: 0,
            shards: DEFAULT_SHARDS,
        }
    }
}

/// Monotonic operation counters (cheap, lock-free reads).
#[derive(Debug, Default)]
struct Counters {
    gets: AtomicU64,
    scans: AtomicU64,
    commits: AtomicU64,
    ops_applied: AtomicU64,
    checkpoints: AtomicU64,
    group_commits: AtomicU64,
}

/// A point-in-time view of store activity and size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreStats {
    pub gets: u64,
    pub scans: u64,
    pub commits: u64,
    pub ops_applied: u64,
    pub checkpoints: u64,
    /// WAL write groups formed (== commits when writers never contend).
    pub group_commits: u64,
    pub tables: usize,
    pub keys: usize,
    /// Number of memtable shards.
    pub shards: usize,
    /// Entries replayed from the WAL during the last open.
    pub recovered_entries: u64,
    /// True if the last open had to drop a torn WAL tail.
    pub recovered_torn_tail: bool,
}

/// One table set partition: `table → (key → value)`.
type Memtable = BTreeMap<TableId, BTreeMap<Vec<u8>, Bytes>>;

/// A batch waiting in the group-commit queue.
struct Pending {
    lsn: u64,
    ops: Vec<Op>,
    /// Pre-serialized WAL frame (durable stores only).
    payload: Option<Vec<u8>>,
}

/// Shared commit ordering state, guarded by `Store::commit_mu`.
struct CommitState {
    next_lsn: u64,
    /// Every entry with `lsn <= applied_lsn` is in the memtables (and, on a
    /// durable store, flushed per the durability level).
    applied_lsn: u64,
    queue: VecDeque<Pending>,
    leader_active: bool,
    /// A manual checkpoint is quiescing: new batches hold off enqueueing so
    /// the in-flight work can drain (bounds the checkpoint's wait).
    checkpoint_waiting: bool,
    /// Set on an unrecoverable WAL I/O failure; all later commits fail.
    broken: Option<String>,
}

/// WAL + recovery bookkeeping, guarded by `Store::log_mu`. Only the group
/// leader (or a quiesced checkpoint) holds this lock.
struct LogState {
    wal: Option<wal::Wal>,
    dir: Option<PathBuf>,
    commits_since_checkpoint: u64,
    recovered_entries: u64,
    recovered_torn_tail: bool,
}

/// The storage engine. See module docs.
pub struct Store {
    shards: Vec<RwLock<Memtable>>,
    commit_mu: Mutex<CommitState>,
    commit_cv: Condvar,
    log_mu: Mutex<LogState>,
    opts: StoreOptions,
    counters: Counters,
}

fn wal_path(dir: &Path) -> PathBuf {
    dir.join("db.wal")
}

fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join("db.snp")
}

/// Stable shard router: FxHash of `(table, key)` mod shard count. Must not
/// change across versions or recovery would repartition differently than
/// the writes that produced the WAL (harmless, but checksums over shard
/// contents would shift).
fn route(shards: usize, table: TableId, key: &[u8]) -> usize {
    if shards == 1 {
        return 0;
    }
    let mut h = FxHasher::default();
    h.write_u16(table.0);
    h.write(key);
    (h.finish() % shards as u64) as usize
}

/// std mutexes poison on panic; the store treats a poisoned guard as still
/// usable (matching `parking_lot` semantics used elsewhere in the crate).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn wait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(g).unwrap_or_else(|p| p.into_inner())
}

/// Builds a WAL frame payload from a pre-serialized op list. `WalEntry`
/// is `{ lsn, ops }` and serbin encodes structs as plain field
/// concatenation (see the `serbin` module docs), so `varint(lsn) ++
/// serbin(ops)` is byte-identical to `serbin(WalEntry { lsn, ops })` —
/// which lets committers serialize their ops *outside* the commit mutex
/// and splice the LSN in under it.
fn frame_payload(lsn: u64, ops_bytes: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(10 + ops_bytes.len());
    crate::codec::write_uvarint(&mut payload, lsn);
    payload.extend_from_slice(ops_bytes);
    payload
}

/// What the group leader reports back: the WAL-append + memtable-apply
/// verdict (a failure here poisons the store — log and memory can no
/// longer be trusted to agree) and, separately, the auto-checkpoint
/// verdict (a failure here is transient and surfaced only to the leader;
/// the group itself is durable and applied).
struct LeadOutcome {
    wal_apply: Result<()>,
    checkpoint: Result<()>,
}

/// Union of table ids across a full set of shard guards, ascending.
fn tables_union(guards: &[RwLockReadGuard<'_, Memtable>]) -> BTreeSet<TableId> {
    let mut ids = BTreeSet::new();
    for g in guards {
        ids.extend(g.keys().copied());
    }
    ids
}

/// One table's pairs gathered from every shard, merged into key order.
fn merged_pairs<'g>(
    guards: &'g [RwLockReadGuard<'_, Memtable>],
    table: TableId,
) -> Vec<(&'g Vec<u8>, &'g Bytes)> {
    let mut pairs: Vec<(&Vec<u8>, &Bytes)> = guards
        .iter()
        .filter_map(|g| g.get(&table))
        .flat_map(|t| t.iter())
        .collect();
    pairs.sort_unstable_by(|a, b| a.0.cmp(b.0));
    pairs
}

impl Store {
    /// An ephemeral store with no durability (no files are touched).
    pub fn in_memory() -> Self {
        Store::in_memory_sharded(DEFAULT_SHARDS)
    }

    /// An ephemeral store with an explicit shard count (tests and benches
    /// that sweep partitioning).
    pub fn in_memory_sharded(shards: usize) -> Self {
        Store::assemble(
            StoreOptions {
                durability: Durability::InMemory,
                checkpoint_every: 0,
                shards,
            },
            Memtable::new(),
            None,
            None,
            0,
            0,
            false,
        )
    }

    /// Opens (or creates) a durable store in `dir`, running recovery:
    /// load the snapshot if present, then replay WAL entries past it.
    pub fn open(dir: &Path, opts: StoreOptions) -> Result<Self> {
        if opts.durability == Durability::InMemory {
            return Ok(Store::in_memory_sharded(opts.shards));
        }
        std::fs::create_dir_all(dir)?;

        let mut tables = Memtable::new();
        let mut last_lsn = 0u64;
        if let Some(snap) = snapshot::read(&snapshot_path(dir))? {
            last_lsn = snap.last_lsn;
            for dump in snap.tables {
                let table = tables.entry(dump.table).or_default();
                for (k, v) in dump.entries {
                    table.insert(k, Bytes::from(v));
                }
            }
        }

        let scan = wal::scan(&wal_path(dir))?;
        let mut recovered = 0u64;
        for frame in &scan.frames {
            let entry: WalEntry = serbin::from_bytes(frame)
                .map_err(|e| StoreError::Corrupt(format!("undecodable WAL entry: {e}")))?;
            if entry.lsn <= last_lsn {
                continue; // already folded into the snapshot
            }
            last_lsn = entry.lsn;
            apply_ops(&mut tables, &entry.ops);
            recovered += 1;
        }

        let wal = wal::Wal::open_for_append(&wal_path(dir), scan.valid_len).or_else(|_| {
            // No WAL yet (fresh dir): create one.
            wal::Wal::create(&wal_path(dir))
        })?;

        Ok(Store::assemble(
            opts,
            tables,
            Some(wal),
            Some(dir.to_path_buf()),
            last_lsn,
            recovered,
            scan.truncated_tail,
        ))
    }

    fn assemble(
        opts: StoreOptions,
        initial: Memtable,
        wal: Option<wal::Wal>,
        dir: Option<PathBuf>,
        last_lsn: u64,
        recovered_entries: u64,
        recovered_torn_tail: bool,
    ) -> Self {
        let n = opts.shards.max(1);
        let mut parts: Vec<Memtable> = (0..n).map(|_| Memtable::new()).collect();
        for (table, entries) in initial {
            for (k, v) in entries {
                parts[route(n, table, &k)]
                    .entry(table)
                    .or_default()
                    .insert(k, v);
            }
        }
        Store {
            shards: parts.into_iter().map(RwLock::new).collect(),
            commit_mu: Mutex::new(CommitState {
                next_lsn: last_lsn + 1,
                applied_lsn: last_lsn,
                queue: VecDeque::new(),
                leader_active: false,
                checkpoint_waiting: false,
                broken: None,
            }),
            commit_cv: Condvar::new(),
            log_mu: Mutex::new(LogState {
                wal,
                dir,
                commits_since_checkpoint: 0,
                recovered_entries,
                recovered_torn_tail,
            }),
            opts,
            counters: Counters::default(),
        }
    }

    fn shard_of(&self, table: TableId, key: &[u8]) -> usize {
        route(self.shards.len(), table, key)
    }

    /// Read-locks every shard at once (index order), giving scans a
    /// batch-atomic view: the group leader applies each batch while holding
    /// the write locks of all shards that batch touches.
    fn lock_all(&self) -> Vec<RwLockReadGuard<'_, Memtable>> {
        self.shards.iter().map(|s| s.read()).collect()
    }

    /// Commits a batch atomically: one WAL frame, then apply to memtables.
    ///
    /// Concurrent callers are batched: one becomes the group leader and
    /// writes every queued frame with a single flush/fsync.
    pub fn commit(&self, batch: WriteBatch) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        // Serialize the ops before taking the commit mutex — only the
        // tiny LSN prefix is built under the lock (see `frame_payload`).
        let ops_bytes = if self.opts.durability != Durability::InMemory {
            Some(serbin::to_bytes(&batch.ops)?)
        } else {
            None
        };

        let mut state = lock(&self.commit_mu);
        // Hold off while a manual checkpoint is quiescing so its wait is
        // bounded; queued work keeps draining below regardless.
        while state.checkpoint_waiting {
            state = wait(&self.commit_cv, state);
        }
        if let Some(msg) = &state.broken {
            return Err(StoreError::Corrupt(msg.clone()));
        }
        let lsn = state.next_lsn;
        state.next_lsn += 1;
        state.queue.push_back(Pending {
            lsn,
            ops: batch.ops,
            payload: ops_bytes.map(|b| frame_payload(lsn, &b)),
        });

        loop {
            // `applied_lsn` is checked before `broken`: a batch that made
            // it into an earlier, successful group really is durable and
            // applied, even if a *later* group has since broken the store.
            if state.applied_lsn >= lsn {
                return Ok(());
            }
            if let Some(msg) = &state.broken {
                return Err(StoreError::Corrupt(msg.clone()));
            }
            if state.leader_active {
                state = wait(&self.commit_cv, state);
                continue;
            }
            // Become the group leader: drain the queue, do the I/O and the
            // memtable applies without holding the commit mutex, then report
            // back and wake the followers.
            state.leader_active = true;
            let group: Vec<Pending> = state.queue.drain(..).collect();
            drop(state);

            let outcome = self.lead_group(&group);

            state = lock(&self.commit_mu);
            state.leader_active = false;
            match &outcome.wal_apply {
                Ok(()) => {
                    if let Some(last) = group.last() {
                        state.applied_lsn = state.applied_lsn.max(last.lsn);
                    }
                }
                Err(e) => {
                    // A WAL write failed mid-group; the log can no longer
                    // be trusted to match the memtables, so fail this
                    // group (applied_lsn is NOT advanced past it) and
                    // every later commit loudly instead of diverging
                    // silently.
                    state.broken = Some(format!("group commit failed: {e}"));
                }
            }
            self.commit_cv.notify_all();
            // The group is durable and applied even if the piggybacked
            // auto-checkpoint failed; surface such a failure to the leader
            // alone (matching the pre-sharding behaviour, where the commit
            // that tripped the threshold reported the error) and let the
            // next qualifying group retry it.
            outcome.checkpoint?;
        }
    }

    /// Group-leader work: append + flush all frames, apply in LSN order,
    /// bump counters, maybe auto-checkpoint.
    fn lead_group(&self, group: &[Pending]) -> LeadOutcome {
        let mut log = lock(&self.log_mu);
        let wal_apply = (|| -> Result<()> {
            if let Some(w) = log.wal.as_mut() {
                for p in group {
                    w.append(
                        p.payload
                            .as_ref()
                            .expect("durable stores serialize on enqueue"),
                    )?;
                }
                match self.opts.durability {
                    Durability::Sync => w.sync()?,
                    Durability::Buffered => w.flush()?,
                    Durability::InMemory => unreachable!("in-memory store has no WAL"),
                }
            }
            Ok(())
        })();
        if wal_apply.is_err() {
            return LeadOutcome {
                wal_apply,
                checkpoint: Ok(()),
            };
        }
        let mut ops_total = 0u64;
        for p in group {
            self.apply_batch(&p.ops);
            ops_total += p.ops.len() as u64;
        }
        self.counters
            .commits
            .fetch_add(group.len() as u64, Ordering::Relaxed);
        self.counters
            .ops_applied
            .fetch_add(ops_total, Ordering::Relaxed);
        self.counters.group_commits.fetch_add(1, Ordering::Relaxed);

        let mut checkpoint = Ok(());
        if log.wal.is_some() && self.opts.checkpoint_every > 0 {
            log.commits_since_checkpoint += group.len() as u64;
            if log.commits_since_checkpoint >= self.opts.checkpoint_every {
                let last = group.last().map(|p| p.lsn).unwrap_or(0);
                checkpoint = self.checkpoint_locked(&mut log, last);
            }
        }
        LeadOutcome {
            wal_apply,
            checkpoint,
        }
    }

    /// Applies one batch while holding the write locks of every shard it
    /// touches, so concurrent readers see all of the batch or none of it.
    fn apply_batch(&self, ops: &[Op]) {
        let n = self.shards.len();
        if n == 1 {
            apply_ops(&mut self.shards[0].write(), ops);
            return;
        }
        let mut touched: Vec<usize> = ops
            .iter()
            .map(|op| match op {
                Op::Put { table, key, .. } | Op::Delete { table, key } => route(n, *table, key),
            })
            .collect();
        touched.sort_unstable();
        touched.dedup();
        let mut guards: Vec<Option<RwLockWriteGuard<'_, Memtable>>> =
            (0..n).map(|_| None).collect();
        for &s in &touched {
            guards[s] = Some(self.shards[s].write());
        }
        for op in ops {
            match op {
                Op::Put { table, key, value } => {
                    guards[route(n, *table, key)]
                        .as_mut()
                        .expect("touched shard is locked")
                        .entry(*table)
                        .or_default()
                        .insert(key.clone(), Bytes::from(value.clone()));
                }
                Op::Delete { table, key } => {
                    if let Some(t) = guards[route(n, *table, key)]
                        .as_mut()
                        .expect("touched shard is locked")
                        .get_mut(table)
                    {
                        t.remove(key);
                    }
                }
            }
        }
    }

    /// Single-key put (a one-op batch).
    pub fn put(&self, table: TableId, key: Vec<u8>, value: Vec<u8>) -> Result<()> {
        let mut b = WriteBatch::with_capacity(1);
        b.put(table, key, value);
        self.commit(b)
    }

    /// Single-key delete (a one-op batch).
    pub fn delete(&self, table: TableId, key: Vec<u8>) -> Result<()> {
        let mut b = WriteBatch::with_capacity(1);
        b.delete(table, key);
        self.commit(b)
    }

    /// Point lookup. The returned [`Bytes`] is a zero-copy handle.
    pub fn get(&self, table: TableId, key: &[u8]) -> Result<Option<Bytes>> {
        self.counters.gets.fetch_add(1, Ordering::Relaxed);
        let shard = self.shards[self.shard_of(table, key)].read();
        Ok(shard.get(&table).and_then(|t| t.get(key)).cloned())
    }

    /// True if `key` exists in `table`.
    pub fn contains(&self, table: TableId, key: &[u8]) -> bool {
        let shard = self.shards[self.shard_of(table, key)].read();
        shard
            .get(&table)
            .map(|t| t.contains_key(key))
            .unwrap_or(false)
    }

    /// All pairs whose key starts with `prefix`, in key order.
    pub fn scan_prefix(&self, table: TableId, prefix: &[u8]) -> Vec<(Vec<u8>, Bytes)> {
        self.counters.scans.fetch_add(1, Ordering::Relaxed);
        let guards = self.lock_all();
        let mut out = Vec::new();
        for g in &guards {
            let Some(t) = g.get(&table) else { continue };
            out.extend(
                t.range::<[u8], _>((Bound::Included(prefix), Bound::Unbounded))
                    .take_while(|(k, _)| k.starts_with(prefix))
                    .map(|(k, v)| (k.clone(), v.clone())),
            );
        }
        out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Pairs in `[from, to)` (`to = None` means unbounded), in key order.
    pub fn scan_range(
        &self,
        table: TableId,
        from: &[u8],
        to: Option<&[u8]>,
    ) -> Vec<(Vec<u8>, Bytes)> {
        self.counters.scans.fetch_add(1, Ordering::Relaxed);
        let guards = self.lock_all();
        let upper = match to {
            Some(end) => Bound::Excluded(end),
            None => Bound::Unbounded,
        };
        let mut out = Vec::new();
        for g in &guards {
            let Some(t) = g.get(&table) else { continue };
            out.extend(
                t.range::<[u8], _>((Bound::Included(from), upper))
                    .map(|(k, v)| (k.clone(), v.clone())),
            );
        }
        out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Every pair in `table`, in key order.
    pub fn scan_all(&self, table: TableId) -> Vec<(Vec<u8>, Bytes)> {
        self.scan_range(table, &[], None)
    }

    /// Number of keys in `table`.
    pub fn count(&self, table: TableId) -> usize {
        let guards = self.lock_all();
        guards
            .iter()
            .filter_map(|g| g.get(&table))
            .map(|t| t.len())
            .sum()
    }

    /// The largest key in `table` (used to resume id counters on reopen).
    pub fn last_key(&self, table: TableId) -> Option<Vec<u8>> {
        let guards = self.lock_all();
        guards
            .iter()
            .filter_map(|g| g.get(&table))
            .filter_map(|t| t.keys().next_back())
            .max()
            .cloned()
    }

    /// Ids of every table that has ever been written, ascending.
    pub fn table_ids(&self) -> Vec<TableId> {
        let guards = self.lock_all();
        tables_union(&guards).into_iter().collect()
    }

    /// Order-independent digest of the full logical contents (every table,
    /// every pair, in key order). Shard-count invariant; used by the
    /// determinism tests to compare stores byte-for-byte.
    pub fn content_checksum(&self) -> u64 {
        let guards = self.lock_all();
        let mut h = FxHasher::default();
        for table in tables_union(&guards) {
            h.write_u16(table.0);
            for (k, v) in merged_pairs(&guards, table) {
                h.write_usize(k.len());
                h.write(k);
                h.write_usize(v.len());
                h.write(v);
            }
        }
        h.finish()
    }

    /// Writes a snapshot of every table and starts a fresh WAL.
    pub fn checkpoint(&self) -> Result<()> {
        if self.opts.durability == Durability::InMemory {
            return Err(StoreError::NotDurable);
        }
        // Quiesce: raise the checkpoint flag so new batches hold off
        // enqueueing (bounding this wait even under sustained traffic),
        // then wait for the in-flight work to drain. Holding the commit
        // mutex afterwards keeps enqueues blocked for the duration of the
        // checkpoint, so the snapshot is a clean LSN cut.
        let mut state = lock(&self.commit_mu);
        while state.checkpoint_waiting {
            state = wait(&self.commit_cv, state); // serialize checkpointers
        }
        state.checkpoint_waiting = true;
        while state.leader_active || !state.queue.is_empty() {
            state = wait(&self.commit_cv, state);
        }
        let last = state.applied_lsn;
        let result = {
            let mut log = lock(&self.log_mu);
            self.checkpoint_locked(&mut log, last)
        };
        state.checkpoint_waiting = false;
        self.commit_cv.notify_all();
        result
    }

    fn checkpoint_locked(&self, log: &mut LogState, last_lsn: u64) -> Result<()> {
        let dir = log.dir.clone().ok_or(StoreError::NotDurable)?;
        // Make sure every WAL frame covered by the snapshot is on disk
        // before the snapshot replaces them.
        if let Some(w) = log.wal.as_mut() {
            w.sync()?;
        }
        let snap = {
            let guards = self.lock_all();
            snapshot::Snapshot {
                last_lsn,
                tables: tables_union(&guards)
                    .into_iter()
                    .map(|id| snapshot::TableDump {
                        table: id,
                        entries: merged_pairs(&guards, id)
                            .into_iter()
                            .map(|(k, v)| (k.clone(), v.to_vec()))
                            .collect(),
                    })
                    .collect(),
            }
        };
        snapshot::write(&snapshot_path(&dir), &snap)?;
        log.wal = Some(wal::Wal::create(&wal_path(&dir))?);
        log.commits_since_checkpoint = 0;
        self.counters.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Flushes and fsyncs the WAL regardless of the durability level.
    pub fn sync(&self) -> Result<()> {
        let mut log = lock(&self.log_mu);
        if let Some(w) = log.wal.as_mut() {
            w.sync()?;
        }
        Ok(())
    }

    /// Activity and size counters.
    pub fn stats(&self) -> StoreStats {
        let (tables, keys) = {
            let guards = self.lock_all();
            let keys = guards
                .iter()
                .map(|g| g.values().map(|t| t.len()).sum::<usize>())
                .sum();
            (tables_union(&guards).len(), keys)
        };
        let (recovered_entries, recovered_torn_tail) = {
            let log = lock(&self.log_mu);
            (log.recovered_entries, log.recovered_torn_tail)
        };
        StoreStats {
            gets: self.counters.gets.load(Ordering::Relaxed),
            scans: self.counters.scans.load(Ordering::Relaxed),
            commits: self.counters.commits.load(Ordering::Relaxed),
            ops_applied: self.counters.ops_applied.load(Ordering::Relaxed),
            checkpoints: self.counters.checkpoints.load(Ordering::Relaxed),
            group_commits: self.counters.group_commits.load(Ordering::Relaxed),
            tables,
            keys,
            shards: self.shards.len(),
            recovered_entries,
            recovered_torn_tail,
        }
    }

    /// True when the store persists to disk.
    pub fn is_durable(&self) -> bool {
        self.opts.durability != Durability::InMemory
    }

    /// Number of memtable shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

fn apply_ops(tables: &mut Memtable, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Put { table, key, value } => {
                tables
                    .entry(*table)
                    .or_default()
                    .insert(key.clone(), Bytes::from(value.clone()));
            }
            Op::Delete { table, key } => {
                if let Some(t) = tables.get_mut(table) {
                    t.remove(key);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TestDir;

    const T1: TableId = TableId(1);
    const T2: TableId = TableId(2);

    #[test]
    fn in_memory_crud() {
        let s = Store::in_memory();
        s.put(T1, b"a".to_vec(), b"1".to_vec()).unwrap();
        s.put(T1, b"b".to_vec(), b"2".to_vec()).unwrap();
        assert_eq!(s.get(T1, b"a").unwrap().unwrap().as_ref(), b"1");
        assert!(s.get(T2, b"a").unwrap().is_none());
        s.put(T1, b"a".to_vec(), b"9".to_vec()).unwrap();
        assert_eq!(s.get(T1, b"a").unwrap().unwrap().as_ref(), b"9");
        s.delete(T1, b"a".to_vec()).unwrap();
        assert!(s.get(T1, b"a").unwrap().is_none());
        assert_eq!(s.count(T1), 1);
    }

    #[test]
    fn scans_are_ordered_and_bounded() {
        let s = Store::in_memory();
        for i in [5u8, 1, 9, 3, 7] {
            s.put(T1, vec![i], vec![i * 10]).unwrap();
        }
        let all = s.scan_all(T1);
        let keys: Vec<u8> = all.iter().map(|(k, _)| k[0]).collect();
        assert_eq!(keys, vec![1, 3, 5, 7, 9]);

        let mid = s.scan_range(T1, &[3], Some(&[8]));
        let keys: Vec<u8> = mid.iter().map(|(k, _)| k[0]).collect();
        assert_eq!(keys, vec![3, 5, 7]);
    }

    #[test]
    fn prefix_scan_stops_at_prefix_end() {
        let s = Store::in_memory();
        s.put(T1, b"ab1".to_vec(), vec![]).unwrap();
        s.put(T1, b"ab2".to_vec(), vec![]).unwrap();
        s.put(T1, b"ac0".to_vec(), vec![]).unwrap();
        let hits = s.scan_prefix(T1, b"ab");
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn batch_commit_is_atomic_across_tables() {
        let s = Store::in_memory();
        let mut b = WriteBatch::new();
        b.put(T1, b"k".to_vec(), b"v".to_vec());
        b.put(T2, b"idx".to_vec(), b"k".to_vec());
        s.commit(b).unwrap();
        assert!(s.contains(T1, b"k"));
        assert!(s.contains(T2, b"idx"));
        assert_eq!(s.stats().commits, 1);
        assert_eq!(s.stats().ops_applied, 2);
    }

    #[test]
    fn durable_store_recovers_from_wal() {
        let dir = TestDir::new("db-recover");
        {
            let s = Store::open(dir.path(), StoreOptions::default()).unwrap();
            s.put(T1, b"x".to_vec(), b"1".to_vec()).unwrap();
            s.put(T1, b"y".to_vec(), b"2".to_vec()).unwrap();
            s.delete(T1, b"x".to_vec()).unwrap();
            s.sync().unwrap();
        }
        let s = Store::open(dir.path(), StoreOptions::default()).unwrap();
        assert!(s.get(T1, b"x").unwrap().is_none());
        assert_eq!(s.get(T1, b"y").unwrap().unwrap().as_ref(), b"2");
        assert_eq!(s.stats().recovered_entries, 3);
    }

    #[test]
    fn checkpoint_then_recover_uses_snapshot_plus_tail() {
        let dir = TestDir::new("db-ckpt");
        {
            let s = Store::open(dir.path(), StoreOptions::default()).unwrap();
            for i in 0..10u8 {
                s.put(T1, vec![i], vec![i]).unwrap();
            }
            s.checkpoint().unwrap();
            // Post-checkpoint writes land in the fresh WAL.
            s.put(T1, vec![100], vec![100]).unwrap();
            s.sync().unwrap();
        }
        let s = Store::open(dir.path(), StoreOptions::default()).unwrap();
        assert_eq!(s.count(T1), 11);
        // Only the post-checkpoint entry should have been replayed.
        assert_eq!(s.stats().recovered_entries, 1);
    }

    #[test]
    fn torn_wal_tail_loses_only_the_torn_batch() {
        let dir = TestDir::new("db-torn");
        {
            let s = Store::open(
                dir.path(),
                StoreOptions {
                    durability: Durability::Sync,
                    ..StoreOptions::default()
                },
            )
            .unwrap();
            s.put(T1, b"keep".to_vec(), b"1".to_vec()).unwrap();
            s.put(T1, b"lost".to_vec(), b"2".to_vec()).unwrap();
        }
        // Tear the last frame.
        let wal = dir.path().join("db.wal");
        let data = std::fs::read(&wal).unwrap();
        std::fs::write(&wal, &data[..data.len() - 2]).unwrap();

        let s = Store::open(dir.path(), StoreOptions::default()).unwrap();
        assert!(s.contains(T1, b"keep"));
        assert!(!s.contains(T1, b"lost"));
        assert!(s.stats().recovered_torn_tail);

        // The store keeps working after tail truncation.
        s.put(T1, b"new".to_vec(), b"3".to_vec()).unwrap();
        s.sync().unwrap();
        let s2 = Store::open(dir.path(), StoreOptions::default()).unwrap();
        assert!(s2.contains(T1, b"new"));
    }

    #[test]
    fn auto_checkpoint_triggers() {
        let dir = TestDir::new("db-auto");
        let s = Store::open(
            dir.path(),
            StoreOptions {
                durability: Durability::Buffered,
                checkpoint_every: 5,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        for i in 0..12u8 {
            s.put(T1, vec![i], vec![i]).unwrap();
        }
        assert_eq!(s.stats().checkpoints, 2);
        drop(s);
        let s = Store::open(dir.path(), StoreOptions::default()).unwrap();
        assert_eq!(s.count(T1), 12);
    }

    #[test]
    fn empty_batch_commit_is_a_noop() {
        let s = Store::in_memory();
        s.commit(WriteBatch::new()).unwrap();
        assert_eq!(s.stats().commits, 0);
    }

    #[test]
    fn checkpoint_on_in_memory_store_is_rejected() {
        let s = Store::in_memory();
        assert!(matches!(s.checkpoint(), Err(StoreError::NotDurable)));
    }

    #[test]
    fn concurrent_readers_with_writer() {
        use std::sync::Arc;
        let s = Arc::new(Store::in_memory());
        let writer = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for i in 0..1000u32 {
                    s.put(T1, i.to_be_bytes().to_vec(), vec![1]).unwrap();
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let mut last = 0;
                    for _ in 0..200 {
                        let n = s.count(T1);
                        assert!(n >= last, "count must be monotone under puts");
                        last = n;
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(s.count(T1), 1000);
    }

    #[test]
    fn frame_payload_matches_serbin_wal_entry() {
        // commit() splices `varint(lsn) ++ serbin(ops)` together outside
        // the lock; recovery decodes a full `WalEntry`. The two layouts
        // must stay byte-identical.
        for lsn in [0u64, 1, 127, 128, u32::MAX as u64 + 7] {
            let ops = vec![
                Op::Put {
                    table: T1,
                    key: vec![1, 2],
                    value: vec![3; 20],
                },
                Op::Delete {
                    table: T2,
                    key: vec![9],
                },
            ];
            let spliced = frame_payload(lsn, &serbin::to_bytes(&ops).unwrap());
            let direct = serbin::to_bytes(&WalEntry {
                lsn,
                ops: ops.clone(),
            })
            .unwrap();
            assert_eq!(spliced, direct, "lsn={lsn}");
            let back: WalEntry = serbin::from_bytes(&spliced).unwrap();
            assert_eq!(back.lsn, lsn);
            assert_eq!(back.ops, ops);
        }
    }

    #[test]
    fn sharded_store_reads_back_every_key() {
        for shards in [1usize, 2, 3, 16] {
            let s = Store::in_memory_sharded(shards);
            assert_eq!(s.shard_count(), shards);
            for i in 0..200u32 {
                s.put(T1, i.to_be_bytes().to_vec(), i.to_le_bytes().to_vec())
                    .unwrap();
            }
            for i in 0..200u32 {
                assert_eq!(
                    s.get(T1, &i.to_be_bytes()).unwrap().unwrap().as_ref(),
                    i.to_le_bytes()
                );
            }
            let all = s.scan_all(T1);
            assert_eq!(all.len(), 200);
            assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "scan stays sorted");
            assert_eq!(s.count(T1), 200);
            assert_eq!(s.last_key(T1).unwrap(), 199u32.to_be_bytes().to_vec());
        }
    }

    #[test]
    fn content_checksum_is_shard_count_invariant() {
        let mut digests = Vec::new();
        for shards in [1usize, 2, 16] {
            let s = Store::in_memory_sharded(shards);
            for i in 0..100u32 {
                s.put(T1, i.to_be_bytes().to_vec(), vec![i as u8; 3])
                    .unwrap();
                s.put(T2, vec![i as u8], vec![1]).unwrap();
            }
            s.delete(T2, vec![7]).unwrap();
            digests.push(s.content_checksum());
        }
        assert_eq!(digests[0], digests[1]);
        assert_eq!(digests[1], digests[2]);
        assert_eq!(
            Store::in_memory_sharded(4).table_ids(),
            Vec::<TableId>::new()
        );
    }

    #[test]
    fn reopen_with_a_different_shard_count_keeps_data() {
        let dir = TestDir::new("db-reshard");
        {
            let s = Store::open(
                dir.path(),
                StoreOptions {
                    shards: 4,
                    ..StoreOptions::default()
                },
            )
            .unwrap();
            for i in 0..50u8 {
                s.put(T1, vec![i], vec![i]).unwrap();
            }
            s.checkpoint().unwrap();
            s.put(T1, vec![200], vec![200]).unwrap();
            s.sync().unwrap();
        }
        let s = Store::open(
            dir.path(),
            StoreOptions {
                shards: 2,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        assert_eq!(s.count(T1), 51);
        assert_eq!(s.stats().shards, 2);
    }

    #[test]
    fn group_commit_absorbs_concurrent_writers() {
        use std::sync::Arc;
        let dir = TestDir::new("db-group");
        let s = Arc::new(
            Store::open(
                dir.path(),
                StoreOptions {
                    durability: Durability::Buffered,
                    ..StoreOptions::default()
                },
            )
            .unwrap(),
        );
        let threads: Vec<_> = (0..8u8)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..50u8 {
                        let mut b = WriteBatch::new();
                        b.put(T1, vec![t, i], vec![i]);
                        b.put(T2, vec![t, i], vec![t]);
                        s.commit(b).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let stats = s.stats();
        assert_eq!(stats.commits, 400);
        assert_eq!(stats.ops_applied, 800);
        assert!(
            stats.group_commits <= stats.commits,
            "groups never exceed commits"
        );
        assert_eq!(s.count(T1), 400);
        s.sync().unwrap();
        drop(s);
        let s = Store::open(dir.path(), StoreOptions::default()).unwrap();
        assert_eq!(s.count(T1), 400);
        assert_eq!(s.count(T2), 400);
    }

    #[test]
    fn scans_never_observe_half_a_batch() {
        use std::sync::Arc;
        // Each batch writes a *pair* of keys to the same table; a scan
        // (which locks every shard at once) must always see an even count,
        // or it observed half a batch.
        let s = Arc::new(Store::in_memory_sharded(4));
        let writer = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for i in 0..500u32 {
                    let mut b = WriteBatch::new();
                    b.put(T1, [i.to_be_bytes().as_slice(), &[0]].concat(), vec![1]);
                    b.put(T1, [i.to_be_bytes().as_slice(), &[1]].concat(), vec![1]);
                    s.commit(b).unwrap();
                }
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        let n = s.scan_all(T1).len();
                        assert_eq!(n % 2, 0, "scan observed a torn batch ({n} keys)");
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
    }
}
