//! MVCC read snapshots: immutable point-in-time views of the store.
//!
//! [`crate::Store::read_snapshot`] briefly read-locks every shard, clones
//! each shard's table directory (per-table [`Arc`]s — never the pairs),
//! reads the epoch, and drops the locks. The resulting [`StoreSnapshot`]
//! is a frozen copy-on-write view:
//!
//! * **Consistency** — the epoch is published by the group leader while
//!   it still holds the write locks of the shards its batch touched, and
//!   the capture holds *all* shard read locks, so the captured `(epoch,
//!   contents)` pair is exactly "every batch with `lsn <= epoch`, none
//!   after" — byte-identical to a quiesced store at that LSN (pinned by
//!   the snapshot-equivalence proptest).
//! * **Writer freedom** — after capture the snapshot holds no lock.
//!   Writers that touch a captured table pay one clone of that table
//!   ([`Arc::make_mut`]) and proceed; writers elsewhere pay nothing. The
//!   `crowd::model` snapshot-capture model checks the protocol under
//!   exhaustive schedules.
//! * **Cheap sharing** — [`StoreSnapshot`] is itself an [`Arc`] handle:
//!   cloning one (e.g. the server fanning a dashboard epoch out to N
//!   sessions) is one refcount bump.
//!
//! Raw reads mirror [`crate::Store`]'s signatures (`get`, `scan_*`,
//! `for_each_range`, `count`, `last_key`, `table_ids`,
//! `content_checksum`) and share the store's k-way merge machinery, so
//! the two paths cannot drift. Typed reads go through [`SnapshotTable`],
//! the read-only analogue of [`crate::table::TypedTable`] (always a
//! plain decode — the entity cache tracks the *live* memtables and is
//! deliberately not consulted).

use crate::db::{self, Memtable};
use crate::error::Result;
use crate::table::{Entity, KeyCodec};
use crate::{serbin, TableId};
use bytes::Bytes;
use std::marker::PhantomData;
use std::sync::Arc;

/// An immutable point-in-time view of every table (see module docs).
/// Cloning is one refcount bump; drop order against the store is free.
#[derive(Clone)]
pub struct StoreSnapshot {
    inner: Arc<SnapshotInner>,
}

struct SnapshotInner {
    epoch: u64,
    /// The captured shard partitions, routed exactly like the live store
    /// (same hash, same shard count), so per-key reads touch one part.
    shards: Vec<Memtable>,
}

impl std::fmt::Debug for StoreSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreSnapshot")
            .field("epoch", &self.inner.epoch)
            .field("shards", &self.inner.shards.len())
            .finish()
    }
}

impl StoreSnapshot {
    pub(crate) fn assemble(epoch: u64, shards: Vec<Memtable>) -> Self {
        StoreSnapshot {
            inner: Arc::new(SnapshotInner { epoch, shards }),
        }
    }

    /// LSN of the last batch this view contains. Two snapshots with equal
    /// epochs of the same store hold byte-identical contents.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch
    }

    fn parts(&self) -> impl Iterator<Item = &Memtable> {
        self.inner.shards.iter()
    }

    /// Point lookup. The returned [`Bytes`] is a zero-copy handle onto
    /// the captured buffer.
    pub fn get(&self, table: TableId, key: &[u8]) -> Option<Bytes> {
        let s = db::route(self.inner.shards.len(), table, key);
        self.inner.shards[s]
            .get(&table)
            .and_then(|t| t.get(key))
            .cloned()
    }

    /// True if `key` exists in `table`.
    pub fn contains(&self, table: TableId, key: &[u8]) -> bool {
        let s = db::route(self.inner.shards.len(), table, key);
        self.inner.shards[s]
            .get(&table)
            .is_some_and(|t| t.contains_key(key))
    }

    /// All pairs whose key starts with `prefix`, in key order.
    pub fn scan_prefix(&self, table: TableId, prefix: &[u8]) -> Vec<(Bytes, Bytes)> {
        db::merged_parts(self.parts(), table, prefix, None)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Pairs in `[from, to)` (`to = None` means unbounded), in key order.
    pub fn scan_range(
        &self,
        table: TableId,
        from: &[u8],
        to: Option<&[u8]>,
    ) -> Vec<(Bytes, Bytes)> {
        db::merged_parts(self.parts(), table, from, to)
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Every pair in `table`, in key order.
    pub fn scan_all(&self, table: TableId) -> Vec<(Bytes, Bytes)> {
        self.scan_range(table, &[], None)
    }

    /// Streams the pairs of `table` in `[from, to)` through `f` in key
    /// order. `f` returns whether to keep going. Unlike the live store's
    /// variant no lock is held, so callbacks may take as long as they
    /// like.
    pub fn for_each_range<F>(&self, table: TableId, from: &[u8], to: Option<&[u8]>, mut f: F)
    where
        F: FnMut(&Bytes, &Bytes) -> bool,
    {
        for (k, v) in db::merged_parts(self.parts(), table, from, to) {
            if !f(k, v) {
                break;
            }
        }
    }

    /// Number of keys in `table`.
    pub fn count(&self, table: TableId) -> usize {
        self.parts()
            .filter_map(|p| p.get(&table))
            .map(|t| t.len())
            .sum()
    }

    /// The largest key in `table`.
    pub fn last_key(&self, table: TableId) -> Option<Bytes> {
        self.parts()
            .filter_map(|p| p.get(&table))
            .filter_map(|t| t.keys().next_back())
            .max()
            .cloned()
    }

    /// Ids of every table present in the view, ascending.
    pub fn table_ids(&self) -> Vec<TableId> {
        db::tables_union_of(self.parts()).into_iter().collect()
    }

    /// Order-independent digest of the full logical contents — the same
    /// function as [`crate::Store::content_checksum`], so a snapshot at
    /// epoch `e` digests equal to a quiesced store at LSN `e`.
    pub fn content_checksum(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = crate::codec::FxHasher::default();
        for table in db::tables_union_of(self.parts()) {
            h.write_u16(table.0);
            for (k, v) in db::merged_parts(self.parts(), table, &[], None) {
                h.write_usize(k.len());
                h.write(k);
                h.write_usize(v.len());
                h.write(v);
            }
        }
        h.finish()
    }

    /// Typed read view of one entity table inside this snapshot.
    pub fn table<E: Entity>(&self) -> SnapshotTable<'_, E> {
        SnapshotTable {
            snap: self,
            _marker: PhantomData,
        }
    }
}

/// Read-only typed view of one entity table inside a [`StoreSnapshot`] —
/// the snapshot analogue of [`crate::table::TypedTable`]. Every read is
/// a plain decode of the captured bytes (no entity cache), which is
/// bit-identical to the cache-off live path by the cache-equivalence
/// contract.
pub struct SnapshotTable<'s, E: Entity> {
    snap: &'s StoreSnapshot,
    _marker: PhantomData<fn() -> E>,
}

impl<E: Entity> SnapshotTable<'_, E> {
    /// Point lookup.
    pub fn get(&self, key: &E::Key) -> Result<Option<E>> {
        match self.snap.get(E::TABLE, &key.encoded()) {
            Some(bytes) => Ok(Some(serbin::from_bytes(&bytes)?)),
            None => Ok(None),
        }
    }

    /// Every entity, in key order.
    pub fn scan_all(&self) -> Result<Vec<E>> {
        self.snap
            .scan_all(E::TABLE)
            .into_iter()
            .map(|(_, v)| serbin::from_bytes(&v).map_err(Into::into))
            .collect()
    }

    /// Entities with keys in `[from, to)` (`None` = unbounded), key order.
    pub fn scan_range(&self, from: &E::Key, to: Option<&E::Key>) -> Result<Vec<E>> {
        let to_enc = to.map(|k| k.encoded());
        self.snap
            .scan_range(E::TABLE, &from.encoded(), to_enc.as_deref())
            .into_iter()
            .map(|(_, v)| serbin::from_bytes(&v).map_err(Into::into))
            .collect()
    }

    /// Streams entities with keys in `[from, to)` through `f` in key
    /// order. `f` returns whether to keep going.
    pub fn for_each_range<F: FnMut(E) -> bool>(
        &self,
        from: &E::Key,
        to: Option<&E::Key>,
        mut f: F,
    ) -> Result<()> {
        let to_enc = to.map(|k| k.encoded());
        let mut decode_err = None;
        self.snap
            .for_each_range(E::TABLE, &from.encoded(), to_enc.as_deref(), |_, v| {
                match serbin::from_bytes(v) {
                    Ok(entity) => f(entity),
                    Err(e) => {
                        decode_err = Some(e);
                        false
                    }
                }
            });
        match decode_err {
            Some(e) => Err(e.into()),
            None => Ok(()),
        }
    }

    /// Number of stored entities.
    pub fn count(&self) -> usize {
        self.snap.count(E::TABLE)
    }
}

#[cfg(test)]
mod tests {
    use crate::db::Store;
    use crate::TableId;

    const T1: TableId = TableId(1);
    const T2: TableId = TableId(2);

    #[test]
    fn snapshot_is_immutable_while_the_store_moves_on() {
        let s = Store::in_memory_sharded(4);
        for i in 0..20u8 {
            s.put(T1, vec![i], vec![i]).unwrap();
        }
        let snap = s.read_snapshot();
        let epoch = snap.epoch();
        assert_eq!(epoch, 20);

        // Overwrite, insert, and delete after the capture.
        s.put(T1, vec![3], vec![99]).unwrap();
        s.put(T1, vec![200], vec![1]).unwrap();
        s.delete(T1, vec![7]).unwrap();
        s.put(T2, b"new-table".to_vec(), vec![1]).unwrap();

        assert_eq!(snap.epoch(), epoch);
        assert_eq!(snap.get(T1, &[3]).unwrap().as_ref(), &[3]);
        assert!(snap.get(T1, &[200]).is_none());
        assert!(snap.contains(T1, &[7]));
        assert_eq!(snap.count(T1), 20);
        assert_eq!(snap.table_ids(), vec![T1]);
        assert_eq!(snap.last_key(T1).unwrap().as_ref(), &[19]);

        // The live store sees all the new writes.
        assert_eq!(s.get(T1, &[3]).unwrap().unwrap().as_ref(), &[99]);
        assert_eq!(s.epoch(), epoch + 4);
    }

    #[test]
    fn snapshot_reads_match_live_reads_when_quiesced() {
        let s = Store::in_memory_sharded(8);
        for i in 0..64u8 {
            s.put(T1, vec![i / 8, i % 8], vec![i, i]).unwrap();
        }
        s.delete(T1, vec![2, 3]).unwrap();
        let snap = s.read_snapshot();
        assert_eq!(snap.content_checksum(), s.content_checksum());
        assert_eq!(snap.scan_all(T1), s.scan_all(T1));
        assert_eq!(snap.scan_prefix(T1, &[4]), s.scan_prefix(T1, &[4]));
        assert_eq!(
            snap.scan_range(T1, &[1, 0], Some(&[3, 0])),
            s.scan_range(T1, &[1, 0], Some(&[3, 0]))
        );
        let mut streamed = Vec::new();
        snap.for_each_range(T1, &[], None, |k, v| {
            streamed.push((k.clone(), v.clone()));
            true
        });
        assert_eq!(streamed, s.scan_all(T1));
        assert_eq!(snap.count(T1), s.count(T1));
        assert_eq!(snap.last_key(T1), s.last_key(T1));
        assert_eq!(snap.table_ids(), s.table_ids());
    }

    #[test]
    fn snapshot_of_empty_store_is_empty() {
        let s = Store::in_memory();
        let snap = s.read_snapshot();
        assert_eq!(snap.epoch(), 0);
        assert!(snap.scan_all(T1).is_empty());
        assert_eq!(snap.count(T1), 0);
        assert!(snap.get(T1, b"x").is_none());
        assert!(snap.table_ids().is_empty());
    }

    #[test]
    fn capture_counter_and_epoch_surface_in_stats() {
        let s = Store::in_memory();
        s.put(T1, vec![1], vec![1]).unwrap();
        let _a = s.read_snapshot();
        let _b = s.read_snapshot();
        let st = s.stats();
        assert_eq!(st.snapshot_captures, 2);
        assert_eq!(st.epoch, 1);
    }
}
