//! `serbin` — a compact, non-self-describing serde binary format.
//!
//! The sanctioned dependency set includes `serde` but no serde *format*
//! crate, so the engine carries its own: a bincode-style encoding used for
//! WAL records, snapshots and dataset exports.
//!
//! Encoding rules:
//!
//! * `u8` → 1 raw byte; `u16`/`u32`/`u64`/`usize` → unsigned LEB128 varint;
//! * signed integers → zig-zag + varint; `u128`/`i128` → 16 bytes LE;
//! * `f32`/`f64` → IEEE-754 bits, little-endian, fixed width;
//! * `bool` → 1 byte (0/1); `char` → varint of the scalar value;
//! * strings and byte slices → varint length + raw bytes;
//! * `Option` → 1-byte tag (0 = `None`, 1 = `Some`) + value;
//! * sequences and maps → varint length + elements (length must be known);
//! * tuples and structs → fields in order, no framing;
//! * enums → varint variant index + variant payload.
//!
//! The format is not self-describing: decoding requires the same type that
//! produced the bytes. That is exactly the WAL/snapshot use case, and it
//! keeps records small and encoding branch-free.

use crate::codec::{read_uvarint, write_uvarint, zigzag_decode, zigzag_encode};
use serde::de::{self, DeserializeOwned, IntoDeserializer, Visitor};
use serde::ser::{self, Serialize};

/// Error raised while encoding or decoding `serbin` bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serbin: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

impl ser::Error for CodecError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        CodecError(msg.to_string())
    }
}

impl de::Error for CodecError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        CodecError(msg.to_string())
    }
}

type Result<T> = std::result::Result<T, CodecError>;

/// Serializes `value` into a fresh byte vector.
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(64);
    to_writer(&mut out, value)?;
    Ok(out)
}

/// Serializes `value`, appending to an existing buffer (lets callers reuse
/// a workhorse allocation across many records).
pub fn to_writer<T: Serialize + ?Sized>(out: &mut Vec<u8>, value: &T) -> Result<()> {
    let mut ser = BinSerializer { out };
    value.serialize(&mut ser)
}

/// Decodes a value of type `T`, requiring that all input bytes are consumed.
pub fn from_bytes<T: DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let mut de = BinDeserializer { input: bytes };
    let value = T::deserialize(&mut de)?;
    if !de.input.is_empty() {
        return Err(CodecError(format!(
            "{} trailing bytes after value",
            de.input.len()
        )));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Serializer
// ---------------------------------------------------------------------------

struct BinSerializer<'w> {
    out: &'w mut Vec<u8>,
}

struct Compound<'a, 'w> {
    ser: &'a mut BinSerializer<'w>,
}

impl<'a, 'w> ser::Serializer for &'a mut BinSerializer<'w> {
    type Ok = ();
    type Error = CodecError;
    type SerializeSeq = Compound<'a, 'w>;
    type SerializeTuple = Compound<'a, 'w>;
    type SerializeTupleStruct = Compound<'a, 'w>;
    type SerializeTupleVariant = Compound<'a, 'w>;
    type SerializeMap = Compound<'a, 'w>;
    type SerializeStruct = Compound<'a, 'w>;
    type SerializeStructVariant = Compound<'a, 'w>;

    fn serialize_bool(self, v: bool) -> Result<()> {
        self.out.push(v as u8);
        Ok(())
    }

    fn serialize_i8(self, v: i8) -> Result<()> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i16(self, v: i16) -> Result<()> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i32(self, v: i32) -> Result<()> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i64(self, v: i64) -> Result<()> {
        write_uvarint(self.out, zigzag_encode(v));
        Ok(())
    }
    fn serialize_i128(self, v: i128) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_u8(self, v: u8) -> Result<()> {
        self.out.push(v);
        Ok(())
    }
    fn serialize_u16(self, v: u16) -> Result<()> {
        write_uvarint(self.out, v as u64);
        Ok(())
    }
    fn serialize_u32(self, v: u32) -> Result<()> {
        write_uvarint(self.out, v as u64);
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<()> {
        write_uvarint(self.out, v);
        Ok(())
    }
    fn serialize_u128(self, v: u128) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_f32(self, v: f32) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<()> {
        write_uvarint(self.out, v as u64);
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<()> {
        self.serialize_bytes(v.as_bytes())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<()> {
        write_uvarint(self.out, v.len() as u64);
        self.out.extend_from_slice(v);
        Ok(())
    }

    fn serialize_none(self) -> Result<()> {
        self.out.push(0);
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<()> {
        self.out.push(1);
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<()> {
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<()> {
        Ok(())
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<()> {
        write_uvarint(self.out, variant_index as u64);
        Ok(())
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<()> {
        write_uvarint(self.out, variant_index as u64);
        value.serialize(self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq> {
        let len = len.ok_or_else(|| CodecError("sequences must have a known length".into()))?;
        write_uvarint(self.out, len as u64);
        Ok(Compound { ser: self })
    }

    fn serialize_tuple(self, _len: usize) -> Result<Self::SerializeTuple> {
        Ok(Compound { ser: self })
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleStruct> {
        Ok(Compound { ser: self })
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleVariant> {
        write_uvarint(self.out, variant_index as u64);
        Ok(Compound { ser: self })
    }

    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap> {
        let len = len.ok_or_else(|| CodecError("maps must have a known length".into()))?;
        write_uvarint(self.out, len as u64);
        Ok(Compound { ser: self })
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self::SerializeStruct> {
        Ok(Compound { ser: self })
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStructVariant> {
        write_uvarint(self.out, variant_index as u64);
        Ok(Compound { ser: self })
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

macro_rules! impl_compound {
    ($trait:ident, $method:ident) => {
        impl ser::$trait for Compound<'_, '_> {
            type Ok = ();
            type Error = CodecError;

            fn $method<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
                value.serialize(&mut *self.ser)
            }

            fn end(self) -> Result<()> {
                Ok(())
            }
        }
    };
}

impl_compound!(SerializeSeq, serialize_element);
impl_compound!(SerializeTuple, serialize_element);
impl_compound!(SerializeTupleStruct, serialize_field);
impl_compound!(SerializeTupleVariant, serialize_field);

impl ser::SerializeMap for Compound<'_, '_> {
    type Ok = ();
    type Error = CodecError;

    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<()> {
        key.serialize(&mut *self.ser)
    }

    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeStruct for Compound<'_, '_> {
    type Ok = ();
    type Error = CodecError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for Compound<'_, '_> {
    type Ok = ();
    type Error = CodecError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Deserializer
// ---------------------------------------------------------------------------

struct BinDeserializer<'de> {
    input: &'de [u8],
}

impl<'de> BinDeserializer<'de> {
    fn take(&mut self, n: usize) -> Result<&'de [u8]> {
        if self.input.len() < n {
            return Err(CodecError(format!(
                "unexpected end of input: need {n} bytes, have {}",
                self.input.len()
            )));
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }

    fn read_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn read_uvarint(&mut self) -> Result<u64> {
        let (v, rest) = read_uvarint(self.input).ok_or_else(|| CodecError("bad varint".into()))?;
        self.input = rest;
        Ok(v)
    }

    fn read_ivarint(&mut self) -> Result<i64> {
        Ok(zigzag_decode(self.read_uvarint()?))
    }

    fn read_len(&mut self) -> Result<usize> {
        let v = self.read_uvarint()?;
        // A length can never exceed the remaining input; reject early so a
        // corrupt length cannot trigger a huge allocation.
        if v > self.input.len() as u64 {
            return Err(CodecError(format!(
                "declared length {v} exceeds remaining input {}",
                self.input.len()
            )));
        }
        Ok(v as usize)
    }

    fn read_bytes(&mut self) -> Result<&'de [u8]> {
        let len = self.read_len()?;
        self.take(len)
    }
}

macro_rules! de_signed {
    ($fn:ident, $visit:ident, $ty:ty) => {
        fn $fn<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
            let v = self.read_ivarint()?;
            let narrowed = <$ty>::try_from(v).map_err(|_| {
                CodecError(format!("value {v} out of range for {}", stringify!($ty)))
            })?;
            visitor.$visit(narrowed)
        }
    };
}

macro_rules! de_unsigned {
    ($fn:ident, $visit:ident, $ty:ty) => {
        fn $fn<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
            let v = self.read_uvarint()?;
            let narrowed = <$ty>::try_from(v).map_err(|_| {
                CodecError(format!("value {v} out of range for {}", stringify!($ty)))
            })?;
            visitor.$visit(narrowed)
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut BinDeserializer<'de> {
    type Error = CodecError;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(CodecError("serbin is not self-describing".into()))
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self.read_u8()? {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            other => Err(CodecError(format!("invalid bool byte {other}"))),
        }
    }

    de_signed!(deserialize_i8, visit_i8, i8);
    de_signed!(deserialize_i16, visit_i16, i16);
    de_signed!(deserialize_i32, visit_i32, i32);

    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let v = self.read_ivarint()?;
        visitor.visit_i64(v)
    }

    fn deserialize_i128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let bytes = self.take(16)?;
        let mut buf = [0u8; 16];
        buf.copy_from_slice(bytes);
        visitor.visit_i128(i128::from_le_bytes(buf))
    }

    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let v = self.read_u8()?;
        visitor.visit_u8(v)
    }

    de_unsigned!(deserialize_u16, visit_u16, u16);
    de_unsigned!(deserialize_u32, visit_u32, u32);

    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let v = self.read_uvarint()?;
        visitor.visit_u64(v)
    }

    fn deserialize_u128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let bytes = self.take(16)?;
        let mut buf = [0u8; 16];
        buf.copy_from_slice(bytes);
        visitor.visit_u128(u128::from_le_bytes(buf))
    }

    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let bytes = self.take(4)?;
        let mut buf = [0u8; 4];
        buf.copy_from_slice(bytes);
        visitor.visit_f32(f32::from_le_bytes(buf))
    }

    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let bytes = self.take(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(bytes);
        visitor.visit_f64(f64::from_le_bytes(buf))
    }

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let v = self.read_uvarint()?;
        let c = u32::try_from(v)
            .ok()
            .and_then(char::from_u32)
            .ok_or_else(|| CodecError(format!("invalid char scalar {v}")))?;
        visitor.visit_char(c)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let bytes = self.read_bytes()?;
        let s = std::str::from_utf8(bytes).map_err(|e| CodecError(format!("bad utf8: {e}")))?;
        visitor.visit_borrowed_str(s)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let bytes = self.read_bytes()?;
        visitor.visit_borrowed_bytes(bytes)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self.read_u8()? {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            other => Err(CodecError(format!("invalid option tag {other}"))),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.read_len()?;
        visitor.visit_seq(BinSeqAccess {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_tuple<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value> {
        visitor.visit_seq(BinSeqAccess {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.read_len()?;
        visitor.visit_map(BinMapAccess {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_enum(BinEnumAccess { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(CodecError("serbin does not encode identifiers".into()))
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(CodecError(
            "cannot skip values in a non-self-describing format".into(),
        ))
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct BinSeqAccess<'a, 'de> {
    de: &'a mut BinDeserializer<'de>,
    remaining: usize,
}

impl<'de> de::SeqAccess<'de> for BinSeqAccess<'_, 'de> {
    type Error = CodecError;

    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct BinMapAccess<'a, 'de> {
    de: &'a mut BinDeserializer<'de>,
    remaining: usize,
}

impl<'de> de::MapAccess<'de> for BinMapAccess<'_, 'de> {
    type Error = CodecError;

    fn next_key_seed<K: de::DeserializeSeed<'de>>(&mut self, seed: K) -> Result<Option<K::Value>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn next_value_seed<V: de::DeserializeSeed<'de>>(&mut self, seed: V) -> Result<V::Value> {
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct BinEnumAccess<'a, 'de> {
    de: &'a mut BinDeserializer<'de>,
}

impl<'de, 'a> de::EnumAccess<'de> for BinEnumAccess<'a, 'de> {
    type Error = CodecError;
    type Variant = BinVariantAccess<'a, 'de>;

    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant)> {
        let index = self.de.read_uvarint()?;
        let value = seed.deserialize(index.into_deserializer())?;
        Ok((value, BinVariantAccess { de: self.de }))
    }
}

struct BinVariantAccess<'a, 'de> {
    de: &'a mut BinDeserializer<'de>,
}

impl<'de> de::VariantAccess<'de> for BinVariantAccess<'_, 'de> {
    type Error = CodecError;

    fn unit_variant(self) -> Result<()> {
        Ok(())
    }

    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(self, seed: T) -> Result<T::Value> {
        seed.deserialize(&mut *self.de)
    }

    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value> {
        visitor.visit_seq(BinSeqAccess {
            de: self.de,
            remaining: len,
        })
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_seq(BinSeqAccess {
            de: self.de,
            remaining: fields.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Nested {
        id: u32,
        label: String,
        weights: Vec<f64>,
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    enum Shape {
        Unit,
        NewType(u64),
        Tuple(i32, String),
        Struct { a: bool, b: Option<Nested> },
    }

    fn roundtrip<T: Serialize + DeserializeOwned + PartialEq + std::fmt::Debug>(value: &T) {
        let bytes = to_bytes(value).expect("encode");
        let back: T = from_bytes(&bytes).expect("decode");
        assert_eq!(&back, value);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(&true);
        roundtrip(&false);
        roundtrip(&0u8);
        roundtrip(&255u8);
        roundtrip(&u16::MAX);
        roundtrip(&u32::MAX);
        roundtrip(&u64::MAX);
        roundtrip(&i8::MIN);
        roundtrip(&i64::MIN);
        roundtrip(&i64::MAX);
        roundtrip(&0.0f64);
        roundtrip(&-1.5f32);
        roundtrip(&f64::MAX);
        roundtrip(&'字');
        roundtrip(&"hello iTag".to_string());
        roundtrip(&u128::MAX);
        roundtrip(&i128::MIN);
    }

    #[test]
    fn nan_roundtrips_bitwise() {
        let bytes = to_bytes(&f64::NAN).unwrap();
        let back: f64 = from_bytes(&bytes).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(&vec![1u32, 2, 3]);
        roundtrip(&Vec::<String>::new());
        roundtrip(&Some("x".to_string()));
        roundtrip(&Option::<u64>::None);
        roundtrip(&(1u8, "two".to_string(), 3.0f64));
        let mut m = BTreeMap::new();
        m.insert("alpha".to_string(), vec![1u64, 2]);
        m.insert("beta".to_string(), vec![]);
        roundtrip(&m);
    }

    #[test]
    fn structs_and_enums_roundtrip() {
        let nested = Nested {
            id: 42,
            label: "resource".into(),
            weights: vec![0.25, 0.75],
        };
        roundtrip(&nested);
        roundtrip(&Shape::Unit);
        roundtrip(&Shape::NewType(9));
        roundtrip(&Shape::Tuple(-7, "t".into()));
        roundtrip(&Shape::Struct {
            a: true,
            b: Some(nested),
        });
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&7u32).unwrap();
        bytes.push(0);
        assert!(from_bytes::<u32>(&bytes).is_err());
    }

    #[test]
    fn truncated_input_rejected() {
        let bytes = to_bytes(&"some string".to_string()).unwrap();
        for cut in 0..bytes.len() {
            assert!(
                from_bytes::<String>(&bytes[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn corrupt_length_does_not_allocate() {
        // Declared length far beyond the input must be rejected up front.
        let mut bytes = Vec::new();
        crate::codec::write_uvarint(&mut bytes, u64::MAX / 2);
        assert!(from_bytes::<Vec<u8>>(&bytes).is_err());
    }

    #[test]
    fn invalid_bool_and_option_tags_rejected() {
        assert!(from_bytes::<bool>(&[2]).is_err());
        assert!(from_bytes::<Option<u8>>(&[9, 0]).is_err());
    }

    #[test]
    fn varint_encoding_is_compact() {
        assert_eq!(to_bytes(&1u64).unwrap().len(), 1);
        assert_eq!(to_bytes(&300u64).unwrap().len(), 2);
        // Struct fields carry no per-field framing.
        let n = Nested {
            id: 1,
            label: String::new(),
            weights: vec![],
        };
        assert_eq!(to_bytes(&n).unwrap().len(), 3); // varint id + len 0 + len 0
    }

    proptest! {
        #[test]
        fn arbitrary_nested_roundtrip(
            id in any::<u32>(),
            label in ".{0,40}",
            weights in proptest::collection::vec(any::<f64>().prop_filter("no NaN", |f| !f.is_nan()), 0..16),
        ) {
            roundtrip(&Nested { id, label, weights });
        }

        #[test]
        fn arbitrary_map_roundtrip(
            entries in proptest::collection::btree_map(any::<u64>(), any::<i64>(), 0..32)
        ) {
            roundtrip(&entries);
        }

        #[test]
        fn decode_of_random_bytes_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            // Must return Ok or Err, never panic or over-allocate.
            let _ = from_bytes::<Shape>(&data);
            let _ = from_bytes::<Nested>(&data);
            let _ = from_bytes::<Vec<String>>(&data);
        }
    }
}
